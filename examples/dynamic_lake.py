"""Dynamic data lakes: ingest tables at runtime and explain results.

The semantic data lake of the paper is designed so new datasets can be
added with *no* manual curation (Sections 2.3, 3.2): entity linking is
automatic and partial.  This example shows the production workflow:

1. start from a populated lake with a warm search system (including a
   built LSH index);
2. ingest a brand-new table at runtime — it gets linked, indexed, and
   becomes immediately searchable;
3. ask the system to *explain* why the new table won;
4. retire a table and watch it vanish from the results.

Run with:  python examples/dynamic_lake.py
"""

from repro import Query, Table, Thetis
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.lsh import RECOMMENDED_CONFIG


def main() -> None:
    print("Generating a semantic data lake ...")
    bench = build_benchmark(
        WT2015_PROFILE, num_tables=400, num_query_pairs=1, seed=99
    )
    thetis = Thetis(bench.lake, bench.graph, bench.mapping)
    # Build the LSEI up front, as a deployed system would.
    thetis.prefilter("types", RECOMMENDED_CONFIG)

    # Pick a baseball player/team pair from the world as our interest.
    world = bench.world
    player = world.entities_for_role("baseball", "player")[0]
    team = world.forward[("baseball", "player", "team")][player][0]
    query = Query.single(player, team)
    labels = [bench.graph.get(uri).label for uri in (player, team)]
    print(f"Standing query: {labels}\n")

    before = thetis.search(query, k=3, use_lsh=True)
    print("Results before ingestion:")
    for scored in before:
        print(f"  {scored.table_id:<20} {scored.score:.3f}")

    # --- Ingest a fresh table mentioning exactly our entities --------
    new_table = Table(
        "ingested-scouting-report",
        ["Player", "Team", "Grade"],
        [[labels[0], labels[1], 94.5],
         [labels[0], labels[1], 88.0]],
        metadata={"caption": "Scouting report", "domain": "baseball"},
    )
    links = thetis.add_table(new_table)
    print(f"\nIngested {new_table.table_id!r}: {links} cells "
          "auto-linked, LSH index updated incrementally")

    after = thetis.search(query, k=3, use_lsh=True)
    print("Results after ingestion:")
    for scored in after:
        print(f"  {scored.table_id:<20} {scored.score:.3f}")
    assert after.table_ids()[0] == "ingested-scouting-report"

    # --- Explain the winner ------------------------------------------
    print("\nWhy did it win?")
    explanation = thetis.explain(query, after.table_ids()[0])
    print(explanation.render(bench.graph))

    # --- Retire the table ---------------------------------------------
    thetis.remove_table("ingested-scouting-report")
    final = thetis.search(query, k=3, use_lsh=True)
    print("\nResults after retiring the table:")
    for scored in final:
        print(f"  {scored.table_id:<20} {scored.score:.3f}")
    assert "ingested-scouting-report" not in final.table_ids()
    print("\nThe lake mutated three times; no index rebuilds were needed.")


if __name__ == "__main__":
    main()

"""Robustness to poor entity linking (Section 7.5).

Thetis only requires *partial* links between tables and the KG.  This
example degrades the gold entity links two ways and measures how search
quality responds:

* capping per-table link coverage at decreasing levels (Figure 6);
* replacing the gold links with a simulated low-F1 automatic linker
  (the EMBLOOKUP experiment).

Run with:  python examples/robust_linking.py
"""

from repro import Thetis
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.eval import ndcg_at_k, summarize
from repro.linking import NoisyLinker, reduce_coverage


def evaluate(bench, mapping, label):
    """Mean NDCG@10 of type-based search under a given mapping."""
    thetis = Thetis(bench.lake, bench.graph, mapping)
    scores = []
    for qid, query in bench.queries.one_tuple.items():
        truth = bench.ground_truth(qid)
        results = thetis.search(query, k=10)
        scores.append(ndcg_at_k(results.table_ids(10), truth.gains, 10))
    mean = summarize(scores)["mean"]
    print(f"  {label:<28} NDCG@10 mean = {mean:.3f}")
    return mean


def main() -> None:
    print("Generating benchmark corpus ...")
    bench = build_benchmark(
        WT2015_PROFILE, num_tables=500, num_query_pairs=8, seed=13
    )
    cell_counts = {t.table_id: t.num_cells for t in bench.lake}

    print("\nEffect of entity-link coverage (global caps):")
    full = evaluate(bench, bench.mapping, "gold links (full coverage)")
    for cap in (0.20, 0.10, 0.05, 0.02):
        reduced = reduce_coverage(bench.mapping, cap, cell_counts, seed=1)
        evaluate(bench, reduced, f"coverage capped at {cap:.0%}")
    print("  (Quality is remarkably stable - a few links per table "
          "suffice to type it;\n   capping even prunes misleading "
          "noise-row links.  The per-table decline of the\n   paper's "
          "Figure 6 is reproduced in benchmarks/bench_fig6_coverage.py.)")

    print("\nEffect of a noisy automatic entity linker:")
    linker = NoisyLinker(bench.graph, recall=0.6, precision=0.35, seed=2)
    noisy = linker.corrupt(bench.mapping)
    f1 = linker.f1(bench.mapping, noisy)
    noisy_score = evaluate(bench, noisy, f"noisy linker (F1 = {f1:.2f})")

    print(f"\nEven at F1 = {f1:.2f} the search retains "
          f"{noisy_score / full:.0%} of the gold-link NDCG - Thetis "
          "degrades gracefully with linking quality (Section 7.5).")


if __name__ == "__main__":
    main()

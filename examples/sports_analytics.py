"""The paper's motivating scenario: cross-referencing baseball data.

A betting company wants every table related to a set of baseball
players and their teams (Section 1, Figure 1).  This example generates
a realistic multi-domain data lake, then shows how:

* keyword search (BM25) only surfaces tables with exact text matches;
* semantic search also surfaces *related* baseball tables with no
  keyword overlap;
* LSH prefiltering accelerates the search without hurting the top
  results.

Run with:  python examples/sports_analytics.py
"""

import time

from repro import Query, Thetis
from repro.baselines import BM25TableSearch, text_query_from_labels
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.lsh import RECOMMENDED_CONFIG


def main() -> None:
    print("Generating a multi-domain semantic data lake ...")
    bench = build_benchmark(
        WT2015_PROFILE, num_tables=800, num_query_pairs=1, seed=42
    )
    print(bench.statistics().format_row(bench.name))

    world = bench.world
    thetis = Thetis(bench.lake, bench.graph, bench.mapping)

    # Query: two baseball players with their teams (entity tuples).
    players = world.entities_for_role("baseball", "player")[:2]
    teams_of = world.forward[("baseball", "player", "team")]
    query = Query(
        [(player, teams_of[player][0]) for player in players]
    )
    print("\nQuery tuples:")
    for entity_tuple in query:
        labels = [bench.graph.get(uri).label for uri in entity_tuple]
        print(f"  {labels}")

    # --- Keyword search ------------------------------------------------
    bm25 = BM25TableSearch(bench.lake)
    keywords = text_query_from_labels(query, bench.graph)
    keyword_results = bm25.search(keywords, k=10)
    print("\nBM25 keyword search (exact matches only):")
    for scored in keyword_results:
        domain = bench.lake.get(scored.table_id).metadata["domain"]
        print(f"  {scored.table_id:<18} [{domain:<10}] {scored.score:7.2f}")

    # --- Semantic search ------------------------------------------------
    start = time.perf_counter()
    semantic_results = thetis.search(query, k=10)
    brute_seconds = time.perf_counter() - start
    print(f"\nSemantic table search (types, {brute_seconds:.2f}s):")
    for scored in semantic_results:
        domain = bench.lake.get(scored.table_id).metadata["domain"]
        print(f"  {scored.table_id:<18} [{domain:<10}] {scored.score:7.3f}")

    new_tables = semantic_results.difference(keyword_results, k=10)
    print(f"\nTables semantic search found that BM25 missed: "
          f"{len(new_tables)} of 10")

    # --- LSH acceleration -------------------------------------------
    prefilter = thetis.prefilter("types", RECOMMENDED_CONFIG)
    candidates = prefilter.candidate_tables(query, votes=1)
    reduction = prefilter.reduction(len(bench.lake), candidates)
    start = time.perf_counter()
    lsh_results = thetis.search(query, k=10, use_lsh=True,
                                lsh_config=RECOMMENDED_CONFIG)
    lsh_seconds = time.perf_counter() - start
    agree = len(set(lsh_results.table_ids(10))
                & set(semantic_results.table_ids(10)))
    print(f"\nWith LSH prefiltering {RECOMMENDED_CONFIG}:")
    print(f"  search space reduced by {reduction:.0%} "
          f"({len(candidates)} of {len(bench.lake)} tables scored)")
    print(f"  runtime {lsh_seconds:.2f}s vs {brute_seconds:.2f}s brute force")
    print(f"  top-10 agreement with exact search: {agree}/10")


if __name__ == "__main__":
    main()

"""Data discovery: complementing keyword search with semantic search.

Section 7.2 of the paper shows that BM25 and Thetis retrieve largely
*disjoint* sets of relevant tables, and that merging the two rankings
(STSTC / STSEC) substantially improves recall.  This example reproduces
that workflow end to end on a generated benchmark, reporting
recall@100 for BM25, STST, STSE, and both complemented variants.

Run with:  python examples/data_discovery.py
"""

from repro import Thetis
from repro.baselines import BM25TableSearch, text_query_from_labels
from repro.benchgen import WT2015_PROFILE, build_benchmark
from repro.eval import recall_at_k, summarize


def main() -> None:
    print("Generating benchmark corpus ...")
    # Scale matters for this experiment: with more tables, keyword
    # matching becomes a needle-in-haystack search while semantic
    # relevance keeps finding the related tables (Section 7.2).
    bench = build_benchmark(
        WT2015_PROFILE, num_tables=1500, num_query_pairs=8, seed=7
    )
    thetis = Thetis(bench.lake, bench.graph, bench.mapping)
    thetis.train_embeddings(dimensions=24, epochs=3, walks_per_entity=8,
                            seed=0)
    bm25 = BM25TableSearch(bench.lake)
    k = 100

    recalls = {name: [] for name in
               ("BM25", "STST", "STSE", "STSTC", "STSEC")}
    for qid, query in bench.queries.five_tuple.items():
        truth = bench.ground_truth(qid)
        keyword = bm25.search(
            text_query_from_labels(query, bench.graph), k=k
        )
        types = thetis.search(query, k=k, method="types")
        embeds = thetis.search(query, k=k, method="embeddings")
        merged_types = types.complement(keyword, k=k)
        merged_embeds = embeds.complement(keyword, k=k)
        for name, results in [
            ("BM25", keyword), ("STST", types), ("STSE", embeds),
            ("STSTC", merged_types), ("STSEC", merged_embeds),
        ]:
            recalls[name].append(
                recall_at_k(results.table_ids(k), truth.gains, k)
            )

    print(f"\nRecall@{k} over {len(bench.queries.five_tuple)} "
          f"5-tuple queries:")
    baseline = summarize(recalls["BM25"])["mean"]
    for name, values in recalls.items():
        summary = summarize(values)
        gain = ((summary["mean"] / baseline - 1.0) * 100
                if baseline > 0 else float("inf"))
        marker = f" ({gain:+.1f}% vs BM25)" if name != "BM25" else ""
        print(f"  {name:<6} mean={summary['mean']:.3f} "
              f"median={summary['median']:.3f}{marker}")

    print("\nComplementing exact keyword matching with semantic "
          "relevance combines the best of both worlds (Section 7.2).")


if __name__ == "__main__":
    main()

"""Quickstart: build a tiny semantic data lake and search it.

Walks through the full Thetis pipeline on hand-written data:

1. define a knowledge graph (taxonomy, entities, relations);
2. define a data lake of tables;
3. link table cells to KG entities (automatic, label-based);
4. search by entity tuples using type-based similarity;
5. train RDF2Vec embeddings and search again.

Run with:  python examples/quickstart.py
"""

from repro import DataLake, Entity, KnowledgeGraph, Query, Table, Thetis
from repro.kg import TypeTaxonomy
from repro.linking import LabelLinker


def build_graph() -> KnowledgeGraph:
    """A miniature DBpedia: baseball players/teams plus one actor."""
    taxonomy = TypeTaxonomy()
    for name, parent in [
        ("Thing", None), ("Agent", "Thing"), ("Person", "Agent"),
        ("Athlete", "Person"), ("BaseballPlayer", "Athlete"),
        ("Artist", "Person"), ("Actor", "Artist"),
        ("Organisation", "Agent"), ("SportsTeam", "Organisation"),
        ("BaseballTeam", "SportsTeam"), ("Place", "Thing"),
        ("City", "Place"),
    ]:
        taxonomy.add_type(name, parent)

    graph = KnowledgeGraph(taxonomy)

    def add(uri, label, type_name):
        graph.add_entity(
            Entity(uri, label, frozenset(taxonomy.ancestors(type_name)))
        )

    add("kg:santo", "Ron Santo", "BaseballPlayer")
    add("kg:stetter", "Mitch Stetter", "BaseballPlayer")
    add("kg:giarratano", "Tony Giarratano", "BaseballPlayer")
    add("kg:cubs", "Chicago Cubs", "BaseballTeam")
    add("kg:brewers", "Milwaukee Brewers", "BaseballTeam")
    add("kg:tigers", "Detroit Tigers", "BaseballTeam")
    add("kg:streep", "Meryl Streep", "Actor")
    add("kg:chicago", "Chicago", "City")
    add("kg:milwaukee", "Milwaukee", "City")

    graph.add_edge("kg:santo", "playsFor", "kg:cubs")
    graph.add_edge("kg:stetter", "playsFor", "kg:brewers")
    graph.add_edge("kg:giarratano", "playsFor", "kg:tigers")
    graph.add_edge("kg:cubs", "basedIn", "kg:chicago")
    graph.add_edge("kg:brewers", "basedIn", "kg:milwaukee")
    return graph


def build_lake() -> DataLake:
    """Tables in the style of Figure 1b: rosters, transfers, off-topic."""
    return DataLake(
        [
            Table("rosters", ["Player", "Team", "Season"],
                  [["Ron Santo", "Chicago Cubs", 1970],
                   ["Mitch Stetter", "Milwaukee Brewers", 2009]]),
            Table("transfers", ["Player", "From", "To"],
                  [["Tony Giarratano", "Detroit Tigers", "Chicago Cubs"]]),
            Table("films", ["Actor", "City"],
                  [["Meryl Streep", "Chicago"]]),
            Table("unrelated", ["Code", "Value"],
                  [["A1", 3.14], ["B2", 2.71]]),
        ]
    )


def main() -> None:
    graph = build_graph()
    lake = build_lake()

    # Entity linking: the only integration a semantic data lake needs.
    mapping = LabelLinker(graph).link_lake(lake)
    print(f"Linked {len(mapping)} cells to KG entities\n")

    thetis = Thetis(lake, graph, mapping)

    # An entity-tuple query: "baseball players and their teams".
    query = Query.single("kg:santo", "kg:cubs")

    print("Type-based semantic search (STST):")
    for scored in thetis.search(query, k=4):
        print(f"  {scored.table_id:<12} SemRel = {scored.score:.3f}")

    # The transfers table contains related players/teams and outranks
    # the films table even though neither contains 'Ron Santo'.

    print("\nEmbedding-based semantic search (STSE):")
    thetis.train_embeddings(dimensions=16, epochs=5, walks_per_entity=20,
                            seed=0)
    for scored in thetis.search(query, k=4, method="embeddings"):
        print(f"  {scored.table_id:<12} SemRel = {scored.score:.3f}")


if __name__ == "__main__":
    main()

"""Early-terminating top-k search with score upper bounds.

Problem 2.2 only needs the top-k tables, yet Algorithm 1 scores every
candidate fully.  This module adds a threshold-algorithm style
optimization on top of the exact engine:

1. for each candidate table, compute a cheap *upper bound* on its
   SemRel score — per query entity, the best similarity any entity in
   the table could provide, ignoring column assignment and injectivity
   (both can only lower the real score);
2. process tables in descending bound order, scoring them exactly;
3. stop as soon as the k-th best exact score reaches the next bound —
   no remaining table can enter the top-k.

The result is *identical* to the brute-force ranking (property-tested),
only cheaper: hopeless tables never pay the Hungarian mapping or the
row scan.  All similarity evaluations go through the engine's
persistent :class:`~repro.core.cache.SimilarityCache`, so bound
computation shares work with past and future searches.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.core.search import TableSearchEngine
from repro.core.semrel import semrel_tuple_score
from repro.datalake.table import Table


class TopKEntry:
    """Min-heap entry ordered by the engine's documented ranking.

    :class:`~repro.core.result.ResultSet` ranks by ``(-score,
    table_id)`` — higher score first, then *ascending* id among ties.
    Inverting that order for a min-heap means the heap root is the
    worst-ranked member of the current top-k: the lowest score, and
    among equal scores the *lexicographically largest* id (which the
    engine ranks last).  ``a < b`` therefore reads "a is ranked worse
    than b".
    """

    __slots__ = ("score", "table_id")

    def __init__(self, score: float, table_id: str):
        self.score = score
        self.table_id = table_id

    def __lt__(self, other: "TopKEntry") -> bool:
        if self.score != other.score:
            return self.score < other.score
        return self.table_id > other.table_id

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TopKEntry)
            and self.score == other.score
            and self.table_id == other.table_id
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TopKEntry({self.score!r}, {self.table_id!r})"


def table_score_upper_bound(
    engine: TableSearchEngine,
    query: Query,
    table: Table,
    memo: Optional[Dict[Tuple[str, str], float]] = None,
) -> float:
    """A sound, cheap upper bound on ``SemRel(query, table)``.

    Every coordinate of every query tuple is bounded by the best
    similarity between that query entity and *any* entity mentioned in
    the table; dropping the distinct-column and injectivity constraints
    only raises the bound.  The bound needs one similarity evaluation
    per (query entity, distinct table entity) pair — no Hungarian
    solve, no row scan.

    ``memo`` is deprecated and ignored: similarities are served by the
    engine's persistent cache, which outlives any per-call dict.
    """
    del memo  # kept for backward signature compatibility only
    table_entities = engine.mapping.entities_in_table(table.table_id)
    if not table_entities:
        return 0.0
    entity_list = sorted(table_entities)
    best_for: Dict[str, float] = {}
    tuple_bounds: List[float] = []
    for query_tuple in query:
        coordinates: List[float] = []
        for query_entity in query_tuple:
            best = best_for.get(query_entity)
            if best is None:
                best = 0.0
                for target in entity_list:
                    similarity = engine.similarity(query_entity, target)
                    if similarity > best:
                        best = similarity
                        if best >= 1.0:
                            break
                best_for[query_entity] = best
            coordinates.append(best)
        tuple_bounds.append(
            semrel_tuple_score(
                list(query_tuple), coordinates, engine.informativeness
            )
        )
    return engine.query_aggregation.aggregate(tuple_bounds)


def topk_search(
    engine: TableSearchEngine,
    query: Query,
    k: int,
    candidates: Optional[Iterable[str]] = None,
    stats=None,
) -> ResultSet:
    """Return the exact top-``k`` ranking with early termination.

    Parameters
    ----------
    engine:
        A configured exact search engine.
    query:
        The entity-tuple query.
    k:
        Result count (must be >= 1).
    candidates:
        Optional table-id restriction (e.g. from an LSH prefilter);
        defaults to the whole lake.
    stats:
        Optional :class:`~repro.core.kernel.prefilter.PrefilterStats`
        (or anything with its ``record_scoring`` method) receiving the
        shortlist size, the number of tables scored exactly, and
        whether the scan terminated early.

    Returns
    -------
    ResultSet:
        Identical to ``engine.search(query, k=k, candidates=...)``.
    """
    if k < 1:
        if stats is not None:
            stats.record_scoring(0, 0, False)
        return ResultSet([])
    if candidates is None:
        tables: List[Table] = list(engine.lake)
    else:
        tables = [
            engine.lake.get(tid)
            for tid in dict.fromkeys(candidates)
            if tid in engine.lake
        ]
    # Phase 1: bounds for every candidate (cheap).
    bounded: List[Tuple[float, str, Table]] = []
    for table in tables:
        if engine.drop_irrelevant and not engine.mapping.entities_in_table(
            table.table_id
        ):
            continue
        bound = table_score_upper_bound(engine, query, table)
        if bound > 0.0:
            bounded.append((bound, table.table_id, table))
    # Phase 2: exact scoring in descending bound order with cut-off.
    # The min-heap holds the current top-k under the engine's ranking
    # (see TopKEntry), so heap[0] is the current k-th ranked table and
    # heap[0].score the cut-off threshold.
    bounded.sort(key=lambda item: (-item[0], item[1]))
    heap: List[TopKEntry] = []
    results: List[ScoredTable] = []
    scored = 0
    terminated = False
    for bound, _table_id, table in bounded:
        # Strict comparison keeps tie-breaking exact: any table whose
        # bound equals the k-th score might still enter via the id
        # tie-break, so it gets scored.
        if len(heap) == k and bound < heap[0].score:
            terminated = True
            break  # nothing below can displace the current top-k
        outcome = engine.score_table(query, table)
        scored += 1
        if not outcome.relevant or outcome.score <= 0.0:
            continue
        results.append(ScoredTable(outcome.score, outcome.table_id))
        entry = TopKEntry(outcome.score, outcome.table_id)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif heap[0] < entry:
            # The newcomer outranks the current k-th entry — including
            # the equal-score case the engine breaks by ascending id.
            heapq.heapreplace(heap, entry)
    if stats is not None:
        stats.record_scoring(len(bounded), scored, terminated)
    return ResultSet(results).top(k)

"""Human-readable explanations of SemRel scores.

Search results are easier to trust when the system can show *why* a
table ranked where it did: which table column each query entity was
mapped to, which rows carried the strongest evidence, how the
informativeness weights skewed the distance, and what each query tuple
contributed.  This module re-runs Algorithm 1 for a single table while
recording every intermediate quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.query import Query
from repro.core.search import TableSearchEngine
from repro.core.semrel import semrel_tuple_score, weighted_distance
from repro.datalake.table import Table


@dataclass(frozen=True)
class EntityExplanation:
    """How one query entity fared against the table."""

    entity: str
    column: int                 # -1 when no column was assigned
    column_name: Optional[str]
    coordinate: float           # aggregated similarity (Algorithm 1 l.13)
    weight: float               # informativeness I(e)
    best_row: int               # row with the highest similarity (-1: none)
    best_row_entity: Optional[str]
    best_row_similarity: float


@dataclass(frozen=True)
class TupleExplanation:
    """How one query tuple scored against the table (lines 5-14)."""

    query_tuple: Tuple[str, ...]
    entities: List[EntityExplanation]
    distance: float             # weighted Euclidean distance (Eq. 2)
    score: float                # SemRel of the tuple (Eq. 3)


@dataclass(frozen=True)
class TableExplanation:
    """Full per-table explanation: every tuple's breakdown plus Eq. 1."""

    table_id: str
    score: float
    tuples: List[TupleExplanation] = field(default_factory=list)

    def render(self, graph=None) -> str:
        """Render a compact text report.

        Pass the knowledge graph to print entity labels instead of URIs.
        """

        def label(uri: Optional[str]) -> str:
            if uri is None:
                return "-"
            if graph is not None:
                entity = graph.find(uri)
                if entity is not None and entity.label:
                    return entity.label
            return uri

        lines = [f"Table {self.table_id!r}: SemRel = {self.score:.4f}"]
        for index, tup in enumerate(self.tuples):
            lines.append(
                f"  tuple {index}: score={tup.score:.4f} "
                f"(distance {tup.distance:.4f})"
            )
            for ent in tup.entities:
                column = (
                    f"column {ent.column} ({ent.column_name})"
                    if ent.column >= 0 else "no column"
                )
                lines.append(
                    f"    {label(ent.entity):<24} -> {column:<24} "
                    f"coord={ent.coordinate:.3f} weight={ent.weight:.3f} "
                    f"best row={ent.best_row} "
                    f"({label(ent.best_row_entity)}, "
                    f"{ent.best_row_similarity:.3f})"
                )
        return "\n".join(lines)


def explain_table(
    engine: TableSearchEngine, query: Query, table: Table
) -> TableExplanation:
    """Score ``table`` against ``query`` recording every intermediate.

    Produces exactly the same final score as
    :meth:`TableSearchEngine.score_table` (asserted in the test suite)
    while exposing the full decision trail.
    """
    grid = engine._entity_grid(table)
    tuple_explanations: List[TupleExplanation] = []
    for query_tuple in query:
        assignment = engine.column_mapping(query_tuple, table)
        entities: List[EntityExplanation] = []
        coordinates: List[float] = []
        for position, query_entity in enumerate(query_tuple):
            column = assignment[position]
            per_row: List[float] = []
            best_row, best_uri, best_sim = -1, None, 0.0
            for row_index, row in enumerate(grid):
                target = row[column] if column >= 0 else None
                if target is None:
                    per_row.append(0.0)
                    continue
                similarity = engine.similarity(query_entity, target)
                per_row.append(similarity)
                if similarity > best_sim:
                    best_row, best_uri, best_sim = (
                        row_index, target, similarity
                    )
            coordinate = engine.row_aggregation.aggregate(per_row)
            coordinates.append(coordinate)
            entities.append(
                EntityExplanation(
                    entity=query_entity,
                    column=column,
                    column_name=(
                        table.attributes[column] if column >= 0 else None
                    ),
                    coordinate=coordinate,
                    weight=engine.informativeness(query_entity),
                    best_row=best_row,
                    best_row_entity=best_uri,
                    best_row_similarity=best_sim,
                )
            )
        if not coordinates:
            coordinates = [0.0] * len(query_tuple)
        distance = weighted_distance(
            query_tuple, coordinates, engine.informativeness
        )
        score = semrel_tuple_score(
            query_tuple, coordinates, engine.informativeness
        )
        tuple_explanations.append(
            TupleExplanation(
                query_tuple=tuple(query_tuple),
                entities=entities,
                distance=distance,
                score=score,
            )
        )
    final = engine.query_aggregation.aggregate(
        [t.score for t in tuple_explanations]
    )
    return TableExplanation(
        table_id=table.table_id, score=final, tuples=tuple_explanations
    )

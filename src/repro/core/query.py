"""The query model of Problem 2.2: a set of entity tuples.

A query ``Q = {t_1, ..., t_k}`` holds entity tuples; each tuple is an
ordered list of KG entity URIs.  Tuples may have different widths — the
paper notes that each query tuple is mapped to table columns
independently.  Entities not present in the reference KG are dropped at
construction time ("query entities not in the KG are ignored",
Section 2.4).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import EmptyQueryError
from repro.kg.graph import KnowledgeGraph

EntityTuple = Tuple[str, ...]


class Query:
    """An immutable set of entity tuples used as search input."""

    __slots__ = ("tuples",)

    def __init__(self, tuples: Iterable[Sequence[str]]):
        materialized: List[EntityTuple] = []
        for entity_tuple in tuples:
            cleaned = tuple(uri for uri in entity_tuple if uri)
            if cleaned:
                materialized.append(cleaned)
        if not materialized:
            raise EmptyQueryError("query must contain at least one non-empty tuple")
        self.tuples: Tuple[EntityTuple, ...] = tuple(materialized)

    @classmethod
    def single(cls, *uris: str) -> "Query":
        """Build a 1-tuple query: ``Query.single("e1", "e2")``."""
        return cls([uris])

    @classmethod
    def from_graph(
        cls, tuples: Iterable[Sequence[str]], graph: KnowledgeGraph
    ) -> "Query":
        """Build a query, silently dropping entities absent from ``graph``.

        Raises :class:`EmptyQueryError` when nothing survives filtering,
        signalling the caller that the query cannot be answered
        semantically at all.
        """
        filtered = [
            [uri for uri in entity_tuple if uri in graph] for entity_tuple in tuples
        ]
        return cls([t for t in filtered if t])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[EntityTuple]:
        return iter(self.tuples)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Query):
            return self.tuples == other.tuples
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.tuples)

    def __repr__(self) -> str:
        return f"Query({len(self.tuples)} tuples, width {self.max_width()})"

    # ------------------------------------------------------------------
    def entities(self) -> Set[str]:
        """Return the distinct entities across all tuples."""
        return {uri for entity_tuple in self.tuples for uri in entity_tuple}

    def max_width(self) -> int:
        """Return the widest tuple's entity count."""
        return max(len(t) for t in self.tuples)

    def flattened(self) -> "Query":
        """Collapse all tuples into one (the column-aggregated query form).

        Section 6.2 optimizes multi-tuple queries by treating them as a
        single 1-tuple query over the union of their entities; duplicate
        entities are removed, first occurrence order preserved.
        """
        seen: List[str] = []
        known: Set[str] = set()
        for entity_tuple in self.tuples:
            for uri in entity_tuple:
                if uri not in known:
                    known.add(uri)
                    seen.append(uri)
        return Query([seen])

    def restrict_to(self, allowed: Set[str]) -> Optional["Query"]:
        """Return the query with tuples filtered to ``allowed`` entities.

        Returns ``None`` when no entity survives (unanswerable query).
        """
        filtered = [
            [uri for uri in entity_tuple if uri in allowed]
            for entity_tuple in self.tuples
        ]
        filtered = [t for t in filtered if t]
        if not filtered:
            return None
        return Query(filtered)

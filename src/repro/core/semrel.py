"""The SemRel relevance score: Equations 2 and 3 of Section 5.2.

A target tuple is mapped to a point in the unit hypercube ``R^m`` (one
axis per query entity, coordinate = achieved similarity); its relevance
is the informativeness-weighted Euclidean distance from the ideal point
``(1, ..., 1)``, converted to a similarity in ``(0, 1]``::

    D_I(p_Q, p_T) = sqrt( sum_i I(e_i) * (1 - x_i)^2 )     (Eq. 2)
    SemRel(t_Q, t_T) = 1 / (D_I + 1)                        (Eq. 3)
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.exceptions import SearchError

WeightFunction = Callable[[str], float]


def weighted_distance(
    query_entities: Sequence[str],
    coordinates: Sequence[float],
    informativeness: WeightFunction,
) -> float:
    """Equation 2: weighted Euclidean distance from the perfect match.

    ``coordinates[i]`` is the aggregated similarity achieved for query
    entity ``i`` (0 when the entity has no relevant mapping in the
    target).
    """
    if len(query_entities) != len(coordinates):
        raise SearchError(
            f"{len(query_entities)} query entities but "
            f"{len(coordinates)} coordinates"
        )
    total = 0.0
    for uri, x in zip(query_entities, coordinates):
        if not 0.0 <= x <= 1.0 + 1e-9:
            raise SearchError(f"coordinate out of [0, 1]: {x!r} for {uri!r}")
        weight = informativeness(uri)
        residual = 1.0 - min(x, 1.0)
        total += weight * residual * residual
    return math.sqrt(total)


def distance_to_similarity(distance: float) -> float:
    """Equation 3: convert a distance to a score in ``(0, 1]``."""
    if distance < 0.0:
        raise SearchError(f"distance must be non-negative, got {distance!r}")
    return 1.0 / (distance + 1.0)


def semrel_tuple_score(
    query_entities: Sequence[str],
    coordinates: Sequence[float],
    informativeness: WeightFunction,
) -> float:
    """SemRel of one query tuple against aggregated target coordinates.

    This is line 14 of Algorithm 1: the per-entity aggregated row scores
    become coordinates, and the weighted distance from the ideal point is
    converted to a similarity.
    """
    distance = weighted_distance(query_entities, coordinates, informativeness)
    return distance_to_similarity(distance)

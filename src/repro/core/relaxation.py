"""Query relaxation for over-specialized queries.

Section 7.2 observes that 5-tuple queries "become easily
over-specialized" — their recall falls below the contained 1-tuple
queries despite carrying more information — and the conclusion plans
"alternative similarity metrics to improve the results for the case of
over-specialized queries".  This module implements the retrieval-side
remedy: detect when a query is over-specialized (the result head is
weak) and progressively relax it, either by

* *tuple splitting* — run each entity tuple as its own query and fuse
  the rankings (an over-specialized conjunction becomes a
  disjunction); or
* *entity dropping* — remove the least informative entity per tuple
  (the weakly discriminating team/city, keeping the player), shrinking
  the perfect-match requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.fusion import reciprocal_rank_fusion
from repro.core.query import Query
from repro.core.result import ResultSet
from repro.core.search import TableSearchEngine
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RelaxationOutcome:
    """What the relaxing searcher did for one query."""

    results: ResultSet
    relaxed: bool
    strategy: Optional[str]  # "split" | "drop" | None
    head_score: float        # mean top-k score of the original query


def drop_least_informative(query: Query, informativeness) -> Optional[Query]:
    """Remove the lowest-weight entity from every tuple wider than 1.

    Returns ``None`` when nothing can be dropped (all tuples width 1).
    """
    relaxed: List[List[str]] = []
    changed = False
    for entity_tuple in query:
        if len(entity_tuple) <= 1:
            relaxed.append(list(entity_tuple))
            continue
        weakest = min(entity_tuple, key=lambda uri: (informativeness(uri), uri))
        kept = [uri for uri in entity_tuple if uri != weakest]
        # Drop only one occurrence in the pathological duplicate case.
        if len(kept) < len(entity_tuple) - 1:
            kept = list(entity_tuple)
            kept.remove(weakest)
        relaxed.append(kept)
        changed = True
    if not changed:
        return None
    return Query(relaxed)


def split_tuples(query: Query) -> List[Query]:
    """One single-tuple query per entity tuple of the original."""
    return [Query([entity_tuple]) for entity_tuple in query]


class RelaxingSearcher:
    """Search with automatic relaxation of over-specialized queries.

    Parameters
    ----------
    engine:
        The exact search engine to drive.
    threshold:
        Relaxation triggers when the mean top-``k`` SemRel of the
        original query falls below this value — weak heads mean no
        table satisfies the full conjunction well.
    strategy:
        ``"split"`` (default; fuse per-tuple rankings via RRF) or
        ``"drop"`` (drop the least informative entity per tuple).
    """

    def __init__(
        self,
        engine: TableSearchEngine,
        threshold: float = 0.7,
        strategy: str = "split",
    ):
        if strategy not in ("split", "drop"):
            raise ConfigurationError(f"unknown strategy {strategy!r}")
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must be within [0, 1]")
        self.engine = engine
        self.threshold = threshold
        self.strategy = strategy

    def _head_score(self, results: ResultSet, k: int) -> float:
        head = [st.score for st in results.top(k)]
        if not head:
            return 0.0
        return sum(head) / len(head)

    def search(self, query: Query, k: int = 10) -> RelaxationOutcome:
        """Search; relax and re-search when the head is weak."""
        original = self.engine.search(query, k=k)
        head = self._head_score(original, k)
        if head >= self.threshold:
            return RelaxationOutcome(original, False, None, head)
        if self.strategy == "split":
            if len(query) == 1 and query.max_width() == 1:
                return RelaxationOutcome(original, False, None, head)
            rankings = [
                self.engine.search(part, k=max(k * 2, 50))
                for part in split_tuples(query)
            ]
            fused = reciprocal_rank_fusion(rankings).top(k)
            return RelaxationOutcome(fused, True, "split", head)
        relaxed_query = drop_least_informative(
            query, self.engine.informativeness
        )
        if relaxed_query is None:
            return RelaxationOutcome(original, False, None, head)
        relaxed_results = self.engine.search(relaxed_query, k=k)
        return RelaxationOutcome(relaxed_results, True, "drop", head)

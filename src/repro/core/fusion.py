"""Rank fusion: principled ways to combine retrieval signals.

Section 7.2 merges BM25 and semantic rankings with a fixed top-50 %
interleave and notes that "there are many other methods to complement
the two approaches, such as using learning to rank, but we leave this
as future work".  This module implements that future work:

* :func:`reciprocal_rank_fusion` — the classic RRF of Cormack et al.;
* :func:`comb_sum` / :func:`comb_mnz` — score-based fusion with
  min-max normalization;
* :class:`LogisticFusion` — a from-scratch logistic-regression
  learning-to-rank model over per-system scores, trained on graded
  ground truth with plain gradient descent.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.result import ResultSet, ScoredTable
from repro.exceptions import ConfigurationError


def reciprocal_rank_fusion(
    rankings: Sequence[ResultSet], k: int = 60
) -> ResultSet:
    """Fuse rankings by summed reciprocal ranks ``1 / (k + rank)``.

    ``k`` dampens the head advantage (60 is the literature default).
    Tables absent from a ranking simply contribute nothing for it.
    """
    if not rankings:
        raise ConfigurationError("need at least one ranking to fuse")
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    scores: Dict[str, float] = {}
    for ranking in rankings:
        for rank, table_id in enumerate(ranking.table_ids(), start=1):
            scores[table_id] = scores.get(table_id, 0.0) + 1.0 / (k + rank)
    return ResultSet.from_scores(scores)


def _normalized_scores(ranking: ResultSet) -> Dict[str, float]:
    """Min-max normalize a ranking's scores into [0, 1]."""
    scores = ranking.scores()
    if not scores:
        return {}
    values = list(scores.values())
    lo, hi = min(values), max(values)
    if hi <= lo:
        return {tid: 1.0 for tid in scores}
    return {tid: (s - lo) / (hi - lo) for tid, s in scores.items()}


def comb_sum(rankings: Sequence[ResultSet]) -> ResultSet:
    """CombSUM: sum of min-max normalized scores across systems."""
    if not rankings:
        raise ConfigurationError("need at least one ranking to fuse")
    totals: Dict[str, float] = {}
    for ranking in rankings:
        for table_id, score in _normalized_scores(ranking).items():
            totals[table_id] = totals.get(table_id, 0.0) + score
    return ResultSet.from_scores(totals)


def comb_mnz(rankings: Sequence[ResultSet]) -> ResultSet:
    """CombMNZ: CombSUM weighted by the number of systems that found it."""
    if not rankings:
        raise ConfigurationError("need at least one ranking to fuse")
    totals: Dict[str, float] = {}
    hits: Dict[str, int] = {}
    for ranking in rankings:
        for table_id, score in _normalized_scores(ranking).items():
            totals[table_id] = totals.get(table_id, 0.0) + score
            hits[table_id] = hits.get(table_id, 0) + 1
    return ResultSet.from_scores(
        {tid: totals[tid] * hits[tid] for tid in totals}
    )


class LogisticFusion:
    """Pointwise learning-to-rank over per-system score features.

    Each candidate table is a feature vector of (normalized) scores
    from N retrieval systems plus a bias; the model learns logistic
    weights so that tables with positive ground-truth gain score high.
    Training is batch gradient descent — no external dependencies.

    Parameters
    ----------
    num_systems:
        Feature dimensionality (one score per fused system).
    learning_rate, epochs, l2:
        Plain-vanilla training knobs.
    """

    def __init__(
        self,
        num_systems: int,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-3,
        seed: int = 0,
    ):
        if num_systems < 1:
            raise ConfigurationError("num_systems must be >= 1")
        self.num_systems = num_systems
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        rng = np.random.default_rng(seed)
        self.weights = rng.normal(0.0, 0.01, num_systems)
        self.bias = 0.0
        self._trained = False

    # ------------------------------------------------------------------
    @staticmethod
    def features_for(
        rankings: Sequence[ResultSet],
    ) -> Tuple[List[str], np.ndarray]:
        """Assemble the candidate pool and its feature matrix.

        The pool is the union of all rankings' tables; feature ``j`` of
        a table is system ``j``'s min-max normalized score (0 when the
        system did not retrieve the table).
        """
        normalized = [_normalized_scores(r) for r in rankings]
        pool = sorted({tid for scores in normalized for tid in scores})
        matrix = np.zeros((len(pool), len(rankings)))
        for j, scores in enumerate(normalized):
            for i, table_id in enumerate(pool):
                matrix[i, j] = scores.get(table_id, 0.0)
        return pool, matrix

    def fit(
        self,
        training: Sequence[Tuple[Sequence[ResultSet], Mapping[str, float]]],
    ) -> "LogisticFusion":
        """Train on ``(per-system rankings, graded gains)`` pairs.

        Gains > 0 become positive labels.  Returns ``self``.
        """
        rows: List[np.ndarray] = []
        labels: List[float] = []
        for rankings, gains in training:
            if len(rankings) != self.num_systems:
                raise ConfigurationError(
                    f"expected {self.num_systems} rankings, "
                    f"got {len(rankings)}"
                )
            pool, matrix = self.features_for(rankings)
            for i, table_id in enumerate(pool):
                rows.append(matrix[i])
                labels.append(1.0 if gains.get(table_id, 0.0) > 0 else 0.0)
        if not rows:
            raise ConfigurationError("no training candidates produced")
        x = np.vstack(rows)
        y = np.asarray(labels)
        for _ in range(self.epochs):
            logits = x @ self.weights + self.bias
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            error = probs - y
            grad_w = x.T @ error / len(y) + self.l2 * self.weights
            grad_b = float(error.mean())
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
        self._trained = True
        return self

    def fuse(self, rankings: Sequence[ResultSet]) -> ResultSet:
        """Rank the candidate pool by the learned relevance probability."""
        if not self._trained:
            raise ConfigurationError("fuse() called before fit()")
        if len(rankings) != self.num_systems:
            raise ConfigurationError(
                f"expected {self.num_systems} rankings, got {len(rankings)}"
            )
        pool, matrix = self.features_for(rankings)
        logits = matrix @ self.weights + self.bias
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
        return ResultSet(
            ScoredTable(float(p), tid) for tid, p in zip(pool, probs)
        )

"""Sharded parallel semantic table search.

Algorithm 1 scores every candidate table independently, which makes the
scoring loop embarrassingly parallel: shard the candidate ids across a
worker pool, score each shard with the exact engine, and merge.  The
merged ranking is *bit-identical* to the sequential one
(property-tested) because per-table scores do not depend on sharding
and :class:`~repro.core.result.ResultSet` orders deterministically
(descending score, ascending id tie-break).

Two backends are available:

``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` sharing the
    engine — and, crucially, its persistent
    :class:`~repro.core.cache.SimilarityCache` — across workers.  Best
    when ``sigma`` releases the GIL (numpy-backed embedding batches) or
    when the cache is warm and queries are dominated by lookups.  The
    vectorized engine's compiled corpus index is likewise shared
    read-only across all thread shards, and its batched numpy passes
    release the GIL, so thread sharding composes with the kernel.

``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` with chunked
    dispatch.  Each worker receives a pickled copy of the engine once
    (pool initializer) and keeps its own caches warm across queries, so
    pure-Python similarity work scales with cores.  The parent's cache
    does not see worker hits; per-shard profiles still merge.  When the
    engine exposes ``spill_index`` (the vectorized kernel), the pool
    first spills the compiled segmented index to an on-disk snapshot and
    pickles the engine *without* its arrays; every worker then memmaps
    the same snapshot lazily, sharing one copy of the index through the
    page cache instead of deserializing a private copy per process.

Each shard accumulates into a private :class:`ScoringProfile`; the
shard profiles are merged into the wrapped engine's profile after every
search, so the Section 7.3 instrumentation keeps one consistent view.
"""

from __future__ import annotations

import math
import os
import pickle
import shutil
import sys
import tempfile
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.core.search import ScoringProfile, TableSearchEngine
from repro.exceptions import ConfigurationError, IndexStorageError

#: Supported worker-pool backends.
BACKENDS = ("thread", "process")

#: Dispatch granularity: shards per worker per search.  More shards
#: balance load between uneven tables; fewer shards cut dispatch
#: overhead.  Two per worker keeps stragglers from serializing a
#: search while staying cheap on small candidate sets.
SHARDS_PER_WORKER = 2

#: Interpreter thread-switch interval (seconds) applied while thread
#: shards run.  Scoring shards are CPU-bound Python, so the default
#: 5 ms preemption makes workers thrash the GIL; widening the interval
#: during dispatch lets each shard run in longer uninterrupted bursts
#: (measurably faster and far less variance on few-core machines).  The
#: previous value is always restored when the search returns.
THREAD_SWITCH_INTERVAL = 0.05

# Engine copy held by each process-pool worker (set by the initializer).
_WORKER_ENGINE: Optional[TableSearchEngine] = None

# The switch interval is process-global state; concurrent searches from
# multiple caller threads (the serving layer) must not trample each
# other's save/restore.  A depth counter widens it on the first entry
# and restores the original value only when the last search leaves.
_SWITCH_LOCK = threading.Lock()
_SWITCH_DEPTH = 0
_SWITCH_SAVED = 0.0


def _widen_switch_interval() -> None:
    global _SWITCH_DEPTH, _SWITCH_SAVED
    with _SWITCH_LOCK:
        if _SWITCH_DEPTH == 0:
            _SWITCH_SAVED = sys.getswitchinterval()
            sys.setswitchinterval(THREAD_SWITCH_INTERVAL)
        _SWITCH_DEPTH += 1


def _restore_switch_interval() -> None:
    global _SWITCH_DEPTH
    with _SWITCH_LOCK:
        _SWITCH_DEPTH -= 1
        if _SWITCH_DEPTH == 0:
            sys.setswitchinterval(_SWITCH_SAVED)


def _init_process_worker(engine_pickle: bytes) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = pickle.loads(engine_pickle)


def _score_shard(
    engine: TableSearchEngine, query: Query, table_ids: List[str]
) -> Tuple[List[Tuple[float, str]], ScoringProfile]:
    """Score one shard of tables; return (score, id) pairs + profile."""
    profile = ScoringProfile()
    scored: List[Tuple[float, str]] = []
    for table_id in table_ids:
        outcome = engine.score_table(query, engine.lake.get(table_id), profile)
        if outcome.relevant and outcome.score > 0.0:
            scored.append((outcome.score, outcome.table_id))
    return scored, profile


def _score_shard_in_process(
    query: Query, table_ids: List[str]
) -> Tuple[List[Tuple[float, str]], ScoringProfile]:
    assert _WORKER_ENGINE is not None, "process pool not initialized"
    return _score_shard(_WORKER_ENGINE, query, table_ids)


def _score_shard_batch(
    engine: TableSearchEngine,
    queries: List[Query],
    candidate_lists: List[List[str]],
    k: Optional[int],
) -> Tuple[List[List[Tuple[float, str]]], ScoringProfile]:
    """Score one shard against a whole micro-batch in one fused pass.

    Returns one ``(score, table_id)`` pair list per query (aligned with
    ``queries``) plus the shard's private profile.  Only dispatched for
    engines exposing ``search_batch`` (the vectorized kernel); each
    query's pairs are exactly what per-query :func:`_score_shard` over
    its shard-restricted candidates would produce, truncated to the
    per-shard top-k (safe: shards are disjoint, so per-shard top-k
    partials merge to the global top-k).
    """
    profile = ScoringProfile()
    rankings = engine.search_batch(  # type: ignore[attr-defined]
        queries, k=k, candidates=candidate_lists, profile=profile
    )
    pairs = [
        [(scored.score, scored.table_id) for scored in ranking]
        for ranking in rankings
    ]
    return pairs, profile


def _score_shard_batch_in_process(
    queries: List[Query],
    candidate_lists: List[List[str]],
    k: Optional[int],
) -> Tuple[List[List[Tuple[float, str]]], ScoringProfile]:
    assert _WORKER_ENGINE is not None, "process pool not initialized"
    return _score_shard_batch(_WORKER_ENGINE, queries, candidate_lists, k)


def merge_topk(
    partials: Iterable[Iterable[Tuple[float, str]]],
    k: Optional[int] = None,
) -> List[Tuple[float, str]]:
    """Merge per-shard ``(score, table_id)`` partials into one ranking.

    The shared merge of the sharded parallel engine and the cluster
    scatter-gather path (:mod:`repro.cluster`).  Its contract is pinned
    by tests because distributed correctness rests on it:

    - **Bit-identical order.**  Pairs are ranked by ``(-score,
      table_id)`` — exactly the :class:`~repro.core.result.ResultSet`
      order — so merging per-shard top-k partials of disjoint shards
      reproduces the single-process ranking bit for bit.
    - **Empty shards are neutral.**  Empty (or ``None``) partials
      contribute nothing; a merge of only empty partials is ``[]``.
    - **First-epoch-wins dedup.**  When the same table id appears in
      several partials (replicated shards, or a routing-epoch flip
      racing a hedged retry), the *first* partial mentioning it wins
      and later occurrences are dropped.  Under replication the scores
      are equal so any choice is correct; pinning first-wins keeps the
      merge deterministic for callers that order partials by epoch.

    ``k=None`` returns the full merged ranking; otherwise at most ``k``
    pairs.
    """
    best: Dict[str, float] = {}
    for partial in partials:
        if not partial:
            continue
        for score, table_id in partial:
            if table_id not in best:
                best[table_id] = float(score)
    ranked = sorted(best.items(), key=lambda item: (-item[1], item[0]))
    if k is not None:
        ranked = ranked[: max(0, k)]
    return [(score, table_id) for table_id, score in ranked]


class ParallelSearchEngine:
    """Shard candidate tables across a worker pool; merge exactly.

    Parameters
    ----------
    engine:
        The exact :class:`~repro.core.search.TableSearchEngine` whose
        scoring semantics (and caches, for the thread backend) are
        reused unchanged.
    workers:
        Pool size; defaults to the CPU count.  ``1`` still exercises
        the sharded code path, which is how the parity tests pin the
        merge logic against the sequential engine.
    backend:
        ``"thread"`` (default) or ``"process"`` — see the module
        docstring for the trade-off.
    chunk_size:
        Tables per dispatched shard; defaults to splitting the
        candidate list into ``workers * SHARDS_PER_WORKER`` shards.

    Notes
    -----
    Process-backend workers snapshot the engine when the pool starts;
    after mutating the lake or mapping call :meth:`reset_workers` so
    the next search forks fresh copies (``Thetis`` does this for you).
    """

    def __init__(
        self,
        engine: TableSearchEngine,
        workers: Optional[int] = None,
        backend: str = "thread",
        chunk_size: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}: use one of {BACKENDS}"
            )
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.engine = engine
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.backend = backend
        self.chunk_size = chunk_size
        self._pool: Optional[Executor] = None  # guarded-by: _lock
        self._spill_dir: Optional[str] = None  # guarded-by: _lock
        # Guards pool creation/teardown and the profile merge, so that
        # concurrent searches from multiple caller threads neither leak
        # a raced pool nor corrupt the shared profile accumulation.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def profile(self) -> ScoringProfile:
        """The wrapped engine's profile (shard profiles merge into it)."""
        return self.engine.profile

    def cache_stats(self):
        """Cache statistics of the wrapped engine (parent process only)."""
        return self.engine.cache_stats()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        with self._lock:
            if self._pool is None:
                if self.backend == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="thetis-search",
                    )
                else:
                    # Engines with a compiled substrate (the vectorized
                    # kernel's corpus index) build it once here, so every
                    # worker inherits the compiled substrate instead of
                    # recompiling per process.
                    prepare = getattr(self.engine, "prepare", None)
                    if prepare is not None:
                        prepare()
                    # Segment-aware engines spill the index to a shared
                    # on-disk snapshot: the pickled engine then omits the
                    # compiled arrays entirely and every worker memmaps
                    # the same file pages zero-copy on first use, rather
                    # than receiving a private deep copy over the pipe.
                    spill = getattr(self.engine, "spill_index", None)
                    if spill is not None and self._spill_dir is None:
                        spill_dir = tempfile.mkdtemp(prefix="thetis-index-")
                        try:
                            spill(spill_dir)
                        except (OSError, IndexStorageError):
                            # Fall back to plain pickling: slower pool
                            # start-up, identical results.
                            shutil.rmtree(spill_dir, ignore_errors=True)
                        else:
                            self._spill_dir = spill_dir
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_init_process_worker,
                        initargs=(pickle.dumps(self.engine),),
                    )
            return self._pool

    def reset_workers(self) -> None:
        """Tear down the pool; the next search builds a fresh one.

        Required after lake/mapping mutations on the process backend,
        whose workers hold an engine snapshot from pool start-up.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            spill_dir, self._spill_dir = self._spill_dir, None
        if pool is not None:
            pool.shutdown(wait=True)
        if spill_dir is not None:
            clear = getattr(self.engine, "clear_spill", None)
            if clear is not None:
                clear()
            shutil.rmtree(spill_dir, ignore_errors=True)

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self.reset_workers()

    def __enter__(self) -> "ParallelSearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _candidate_ids(self, candidates: Optional[Iterable[str]]) -> List[str]:
        """Mirror the sequential engine's candidate filtering exactly."""
        engine = self.engine
        if candidates is None:
            ids: Iterable[str] = engine.lake.table_ids()
        else:
            ids = (
                tid for tid in dict.fromkeys(candidates) if tid in engine.lake
            )
        if not engine.drop_irrelevant:
            return list(ids)
        return [
            tid for tid in ids if engine.mapping.entities_in_table(tid)
        ]

    def _shards(self, ids: List[str]) -> List[List[str]]:
        size = self.chunk_size
        if size is None:
            size = max(
                1, math.ceil(len(ids) / (self.workers * SHARDS_PER_WORKER))
            )
        return [ids[i:i + size] for i in range(0, len(ids), size)]

    def search(
        self,
        query: Query,
        k: Optional[int] = None,
        candidates: Optional[Iterable[str]] = None,
    ) -> ResultSet:
        """Rank (a subset of) the lake by SemRel — sequential-identical.

        Same contract as :meth:`TableSearchEngine.search`; the ranking,
        scores, and tie-breaks match the sequential engine bit for bit.
        """
        ids = self._candidate_ids(candidates)
        shards = self._shards(ids)
        if len(shards) <= 1:
            # One shard: score in-process, skip dispatch overhead.
            outcomes = [_score_shard(self.engine, query, ids)] if ids else []
        elif self.backend == "thread":
            pool = self._ensure_pool()
            _widen_switch_interval()
            try:
                futures = [
                    pool.submit(_score_shard, self.engine, query, shard)
                    for shard in shards
                ]
                outcomes = [future.result() for future in futures]
            finally:
                _restore_switch_interval()
        else:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_score_shard_in_process, query, shard)
                for shard in shards
            ]
            outcomes = [future.result() for future in futures]
        with self._lock:
            for _, shard_profile in outcomes:
                self.engine.profile.merge(shard_profile)
        merged = merge_topk(
            (shard_scored for shard_scored, _ in outcomes), k
        )
        return ResultSet(
            ScoredTable(score, table_id) for score, table_id in merged
        )

    def search_many(
        self,
        queries: Dict[str, Query],
        k: Optional[int] = None,
        candidates: Optional[Dict[str, Iterable[str]]] = None,
        batch_stats=None,
    ) -> Dict[str, ResultSet]:
        """Batch counterpart of :meth:`search` (same contract as the
        sequential :meth:`TableSearchEngine.search_many`).

        With a ``search_batch``-capable engine (the vectorized kernel)
        the whole micro-batch is sharded once: the shard basis is the
        ordered union of every query's candidate ids, each shard runs
        *one* fused multi-query pass, and per-query partials merge with
        :func:`merge_topk` — bit-identical to per-query :meth:`search`.
        Engines without ``search_batch`` keep the per-query loop.
        ``batch_stats`` (a :class:`~repro.core.kernel.batchstats.
        BatchStats`) is told which path ran.
        """
        query_ids = list(queries.keys())
        batch = getattr(self.engine, "search_batch", None)
        if batch is None or not query_ids:
            if batch_stats is not None and query_ids:
                batch_stats.record_looped(len(query_ids))
            results: Dict[str, ResultSet] = {}
            for query_id, query in queries.items():
                restriction = (
                    candidates.get(query_id)
                    if candidates is not None else None
                )
                results[query_id] = self.search(
                    query, k=k, candidates=restriction
                )
            return results
        query_list = [queries[query_id] for query_id in query_ids]
        id_lists: List[List[str]] = []
        for query_id in query_ids:
            restriction = (
                candidates.get(query_id) if candidates is not None else None
            )
            id_lists.append(self._candidate_ids(restriction))
        id_sets = [set(ids) for ids in id_lists]
        # Shard basis: ordered union of every query's candidate ids, so
        # each shard is scored once for the whole batch; per-query
        # shard restrictions partition each query's own candidate list.
        basis = list(
            dict.fromkeys(tid for ids in id_lists for tid in ids)
        )
        shards = self._shards(basis)
        if batch_stats is not None:
            unique = len({
                (query.tuples, frozenset(id_set))
                for query, id_set in zip(query_list, id_sets)
            })
            batch_stats.record_batched(len(query_list), unique)

        def shard_candidates(shard: List[str]) -> List[List[str]]:
            return [
                [tid for tid in shard if tid in id_set]
                for id_set in id_sets
            ]

        if len(shards) <= 1:
            # One shard: one in-process fused pass, no dispatch.
            outcomes = (
                [_score_shard_batch(
                    self.engine, query_list, shard_candidates(basis), k
                )]
                if basis else []
            )
        elif self.backend == "thread":
            pool = self._ensure_pool()
            _widen_switch_interval()
            try:
                futures = [
                    pool.submit(
                        _score_shard_batch, self.engine, query_list,
                        shard_candidates(shard), k,
                    )
                    for shard in shards
                ]
                outcomes = [future.result() for future in futures]
            finally:
                _restore_switch_interval()
        else:
            pool = self._ensure_pool()
            futures = [
                pool.submit(
                    _score_shard_batch_in_process, query_list,
                    shard_candidates(shard), k,
                )
                for shard in shards
            ]
            outcomes = [future.result() for future in futures]
        with self._lock:
            for _, shard_profile in outcomes:
                self.engine.profile.merge(shard_profile)
        results = {}
        for position, query_id in enumerate(query_ids):
            merged = merge_topk(
                (pairs[position] for pairs, _ in outcomes), k
            )
            results[query_id] = ResultSet(
                ScoredTable(score, table_id) for score, table_id in merged
            )
        return results

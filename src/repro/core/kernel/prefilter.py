"""Serve-side accounting for the LSH candidate-generation stage.

:class:`PrefilterStats` is the single mutable object shared by the
facade, the serve loop, and ``/metrics``: the prefilter records how much
of the lake each query's candidate set kept, the fused scorer records
shortlist sizes and early terminations, and the recall guardrail records
its sampled cross-checks against the exact engine.  Snapshot swaps hand
the same instance to the replacement generation (see
``Thetis.seed_engines_from``), so the serving counters survive
copy-and-swap mutations instead of resetting every swap.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class PrefilterStats:
    """Thread-safe counters for prefiltered search.

    Three record points, one per pipeline stage:

    * :meth:`record_query` — candidate generation (lake size vs.
      surviving candidate count);
    * :meth:`record_scoring` — fused rescoring (shortlist size, tables
      actually scored, whether the bound cut-off fired);
    * :meth:`record_guardrail` — sampled recall@k of the prefiltered
      ranking against the exact one.

    All readers go through :meth:`as_dict`, which derives the rates the
    ``/metrics`` endpoint publishes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queries = 0
        self._total_tables = 0
        self._total_candidates = 0
        self._scoring_calls = 0
        self._shortlisted = 0
        self._scored = 0
        self._early_terminations = 0
        self._guardrail_checks = 0
        self._guardrail_recall_sum = 0.0
        self._guardrail_min_recall: Optional[float] = None

    # ------------------------------------------------------------------
    def record_query(self, total_tables: int, num_candidates: int) -> None:
        """One candidate-generation pass: lake size vs. survivors."""
        with self._lock:
            self._queries += 1
            self._total_tables += max(0, int(total_tables))
            self._total_candidates += max(0, int(num_candidates))

    def record_scoring(
        self, shortlisted: int, scored: int, early_terminated: bool
    ) -> None:
        """One rescoring pass over a candidate shortlist."""
        with self._lock:
            self._scoring_calls += 1
            self._shortlisted += max(0, int(shortlisted))
            self._scored += max(0, int(scored))
            if early_terminated:
                self._early_terminations += 1

    def record_guardrail(self, recall: float) -> None:
        """One sampled recall@k cross-check against the exact engine."""
        value = float(recall)
        with self._lock:
            self._guardrail_checks += 1
            self._guardrail_recall_sum += value
            if (
                self._guardrail_min_recall is None
                or value < self._guardrail_min_recall
            ):
                self._guardrail_min_recall = value

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Derived rates for ``/metrics`` (JSON-serializable)."""
        with self._lock:
            queries = self._queries
            payload: Dict[str, object] = {
                "queries": queries,
                "mean_candidates": (
                    self._total_candidates / queries if queries else 0.0
                ),
                "candidate_reduction": (
                    1.0 - self._total_candidates / self._total_tables
                    if self._total_tables
                    else 0.0
                ),
                "scoring_calls": self._scoring_calls,
                "mean_shortlist": (
                    self._shortlisted / self._scoring_calls
                    if self._scoring_calls
                    else 0.0
                ),
                "scored_fraction": (
                    self._scored / self._shortlisted
                    if self._shortlisted
                    else 0.0
                ),
                "early_termination_rate": (
                    self._early_terminations / self._scoring_calls
                    if self._scoring_calls
                    else 0.0
                ),
                "guardrail": {
                    "checks": self._guardrail_checks,
                    "mean_recall": (
                        self._guardrail_recall_sum / self._guardrail_checks
                        if self._guardrail_checks
                        else None
                    ),
                    "min_recall": self._guardrail_min_recall,
                },
            }
        return payload


__all__ = ["PrefilterStats"]

"""The compiled, read-only corpus index behind the vectorized engine.

Section 7.3 shows scoring cost scales with rows x columns x query size,
and every one of those cells pays a Python-level ``sigma(a, b)`` call in
the scalar engine.  The :class:`CorpusIndex` compiles the corpus once
into flat numpy arrays so a whole query-entity-vs-corpus similarity row
is one batched kernel pass instead of thousands of scalar calls:

* every entity URI linked anywhere in the lake is interned to a dense
  ``int32`` id (sorted-URI order, so ids are deterministic);
* every table becomes a columnar view: an ``(rows, columns)`` id grid
  with ``-1`` marking unlinked/null cells, plus a flattened per-column
  entity-multiset (``nnz`` triples of column / entity id / count) that
  turns the Section 5.1 column-relevance matrix into one ``bincount``
  reduction per query entity;
* the similarity ``sigma`` is compiled into a :class:`SimilarityKernel`
  that evaluates one query entity against *all* corpus entities at
  once — type sets packed into ``uint64`` bitmap rows answer the
  adjusted Jaccard of Equation 4 with bitwise AND + popcount, and unit
  embeddings stacked into one matrix answer clamped cosine with a
  single matrix-vector product;
* computed similarity rows are memoized in a bounded
  :class:`~repro.core.cache.LRUCache` (the batched analogue of the
  scalar engine's :class:`~repro.core.cache.SimilarityCache`).

The index is immutable once compiled.  It is the *segment* unit of the
incremental :class:`~repro.core.kernel.segments.SegmentedCorpusIndex`:
dynamic lakes append small segments and tombstone old ones instead of
recompiling, parallel shard workers share instances read-only, and
:mod:`repro.core.kernel.storage` persists the compiled arrays in an
``np.memmap``-loadable on-disk format (see :meth:`CorpusIndex.from_arrays`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional

import numpy as np

from repro.core.cache import CacheStats, LRUCache
from repro.datalake.table import Table
from repro.linking.mapping import EntityMapping
from repro.similarity.base import (
    EntitySimilarity,
    ExactMatchSimilarity,
    WeightedCombination,
)
from repro.similarity.embedding import EmbeddingCosineSimilarity
from repro.similarity.types import (
    MappingTypeSimilarity,
    TypeJaccardSimilarity,
)

#: Bound of the per-query-entity similarity-row memo.  Each entry is one
#: float64 per corpus entity, so the default keeps even large corpora
#: within tens of megabytes.
DEFAULT_ROW_CACHE_SIZE = 4096

if hasattr(np, "bitwise_count"):
    def _popcount(words: np.ndarray) -> np.ndarray:
        """Per-element population count of a uint64 array."""
        return np.bitwise_count(words)
else:  # pragma: no cover - numpy < 2.0 fallback
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount(words: np.ndarray) -> np.ndarray:
        shape = words.shape
        bytes_view = np.ascontiguousarray(words).view(np.uint8)
        return (
            _POP8[bytes_view]
            .reshape(shape + (8,))
            .sum(axis=-1, dtype=np.uint64)
        )


@dataclass(frozen=True)
class TableView:
    """One table compiled to columnar arrays (all read-only).

    ``ids[r, c]`` is the interned entity id of the linked cell (``-1``
    where the cell is null/unlinked).  The ``nnz_*`` triples flatten the
    per-column entity multiset: entry ``t`` says column ``nnz_columns[t]``
    contains entity ``nnz_ids[t]`` exactly ``nnz_counts[t]`` times.  The
    triples preserve the scalar engine's counter insertion order per
    column, so batched reductions accumulate in the same IEEE order as
    the scalar sums they replace.
    """

    table_id: str
    num_rows: int
    num_columns: int
    ids: np.ndarray          # (rows, columns) int32
    nnz_columns: np.ndarray  # (nnz,) int64
    nnz_ids: np.ndarray      # (nnz,) int32
    nnz_counts: np.ndarray   # (nnz,) float64


class SimilarityKernel:
    """Batched form of one ``sigma``: query entity vs all corpus entities.

    :meth:`row` returns ``sigma(uri, e)`` for every interned corpus
    entity ``e`` as one float64 array.  Subclasses must reproduce the
    scalar similarity exactly wherever the arithmetic allows (type
    Jaccard is bit-exact; cosine differs only by BLAS summation order,
    well inside the engine's 1e-9 parity budget).
    """

    def __init__(self, uris: List[str], id_of: Dict[str, int]):
        self._uris = uris
        self._id_of = id_of

    def row(self, uri: str) -> np.ndarray:
        raise NotImplementedError

    def _apply_identity(self, uri: str, sims: np.ndarray) -> np.ndarray:
        """Pin ``sigma(e, e) = 1`` exactly, as every scalar sigma does."""
        index = self._id_of.get(uri)
        if index is not None:
            sims[index] = 1.0
        return sims


class ExactMatchKernel(SimilarityKernel):
    """Batched :class:`~repro.similarity.base.ExactMatchSimilarity`."""

    def row(self, uri: str) -> np.ndarray:
        return self._apply_identity(uri, np.zeros(len(self._uris), dtype=np.float64))


class TypeBitmapKernel(SimilarityKernel):
    """Adjusted Jaccard (Equation 4) over packed type-set bitmaps.

    Every distinct type across the corpus entities claims one bit; each
    entity's type set becomes a row of ``uint64`` words.  A query row is
    then ``popcount(bitmaps & query_bits)`` for the intersection sizes
    and ``|types(q)| + |types(e)| - intersection`` for the unions — two
    integer array ops replacing one Python set intersection per pair.
    Integer division reproduces the scalar Jaccard bit for bit.
    """

    def __init__(
        self,
        uris: List[str],
        id_of: Dict[str, int],
        types_of: Callable[[str], FrozenSet[str]],
        cap: float,
    ):
        super().__init__(uris, id_of)
        self._types_of = types_of
        self._cap = float(cap)
        bit_of: Dict[str, int] = {}
        type_sets = []
        for uri in uris:
            types = types_of(uri)
            type_sets.append(types)
            for name in types:
                if name not in bit_of:
                    bit_of[name] = len(bit_of)
        self._bit_of = bit_of
        self._words = max(1, (len(bit_of) + 63) // 64)
        bitmaps = np.zeros((len(uris), self._words), dtype=np.uint64)
        sizes = np.zeros(len(uris), dtype=np.int64)
        for row_index, types in enumerate(type_sets):
            sizes[row_index] = len(types)
            for name in types:
                bit = bit_of[name]
                bitmaps[row_index, bit >> 6] |= np.uint64(1 << (bit & 63))
        self._bitmaps = bitmaps
        self._sizes = sizes

    @classmethod
    def from_arrays(
        cls,
        uris: List[str],
        id_of: Dict[str, int],
        types_of: Callable[[str], FrozenSet[str]],
        cap: float,
        bit_names: List[str],
        bitmaps: np.ndarray,
        sizes: np.ndarray,
    ) -> "TypeBitmapKernel":
        """Rebuild a compiled bitmap kernel from persisted arrays.

        ``bit_names`` lists the type name claiming each bit in bit
        order; ``bitmaps``/``sizes`` may be read-only memmap views.  The
        per-entity type-set compilation loop is skipped entirely.
        """
        kernel = cls.__new__(cls)
        SimilarityKernel.__init__(kernel, uris, id_of)
        kernel._types_of = types_of
        kernel._cap = float(cap)
        kernel._bit_of = {name: bit for bit, name in enumerate(bit_names)}
        kernel._words = int(bitmaps.shape[1]) if bitmaps.ndim == 2 else 1
        kernel._bitmaps = bitmaps
        kernel._sizes = sizes
        return kernel

    def row(self, uri: str) -> np.ndarray:
        sims = np.zeros(len(self._uris), dtype=np.float64)
        types = self._types_of(uri)
        if types:
            query_bits = np.zeros(self._words, dtype=np.uint64)
            for name in types:
                bit = self._bit_of.get(name)
                if bit is not None:
                    query_bits[bit >> 6] |= np.uint64(1 << (bit & 63))
            intersection = (
                _popcount(self._bitmaps & query_bits)
                .sum(axis=1)
                .astype(np.int64)
            )
            union = len(types) + self._sizes - intersection
            overlapping = intersection > 0
            np.divide(
                intersection, union, out=sims,
                where=overlapping, casting="unsafe",
            )
            np.minimum(sims, self._cap, out=sims)
        return self._apply_identity(uri, sims)


class EmbeddingMatmulKernel(SimilarityKernel):
    """Clamped cosine as one matrix-vector product over unit embeddings.

    Corpus entities without an embedding get an all-zero row, so their
    dot product is exactly the scalar engine's 0.
    """

    def __init__(self, uris: List[str], id_of: Dict[str, int], store):
        super().__init__(uris, id_of)
        self._store = store
        matrix = np.zeros((len(uris), store.dimensions), dtype=np.float64)
        for row_index, uri in enumerate(uris):
            if uri in store:
                matrix[row_index] = store.unit_vector(uri)
        self._matrix = np.ascontiguousarray(matrix)

    @classmethod
    def from_arrays(
        cls,
        uris: List[str],
        id_of: Dict[str, int],
        store,
        matrix: np.ndarray,
    ) -> "EmbeddingMatmulKernel":
        """Rebuild the matmul kernel around a persisted unit matrix."""
        kernel = cls.__new__(cls)
        SimilarityKernel.__init__(kernel, uris, id_of)
        kernel._store = store
        kernel._matrix = matrix
        return kernel

    def row(self, uri: str) -> np.ndarray:
        if uri not in self._store:
            return self._apply_identity(uri, np.zeros(len(self._uris), dtype=np.float64))
        sims = self._matrix @ self._store.unit_vector(uri)
        np.maximum(sims, 0.0, out=sims)
        return self._apply_identity(uri, sims)


class CombinationKernel(SimilarityKernel):
    """Convex combination of part kernels, mirroring
    :class:`~repro.similarity.base.WeightedCombination` term order."""

    def __init__(
        self,
        uris: List[str],
        id_of: Dict[str, int],
        parts: List[SimilarityKernel],
        weights: List[float],
    ):
        super().__init__(uris, id_of)
        self._parts = parts
        self._weights = list(weights)

    def row(self, uri: str) -> np.ndarray:
        sims = np.zeros(len(self._uris), dtype=np.float64)
        for part, weight in zip(self._parts, self._weights):
            sims += weight * part.row(uri)
        return self._apply_identity(uri, sims)


class ScalarLoopKernel(SimilarityKernel):
    """Correctness fallback for similarities with no batched form.

    One Python call per corpus entity — no faster than the scalar
    engine for a cold row, but rows are memoized, so repeated queries
    still amortize.  The sigma's own identity handling is preserved
    verbatim (no override), keeping parity with the scalar path even
    for contract-violating custom similarities.
    """

    def __init__(
        self, uris: List[str], id_of: Dict[str, int], sigma: EntitySimilarity
    ):
        super().__init__(uris, id_of)
        self._sigma = sigma

    def row(self, uri: str) -> np.ndarray:
        similarity = self._sigma.similarity
        return np.array(
            [similarity(uri, other) for other in self._uris], dtype=np.float64
        )


def compile_kernel(
    sigma: EntitySimilarity, uris: List[str], id_of: Dict[str, int]
) -> SimilarityKernel:
    """Compile ``sigma`` into its batched kernel form.

    Recognizes the built-in similarities (exact, type Jaccard over a
    graph or an explicit mapping, embedding cosine, and any weighted
    combination of those); everything else falls back to the memoized
    scalar loop, so the vectorized engine stays correct for custom
    sigmas while being fast for the paper's.  Dispatch is on the exact
    type, never ``isinstance``: a subclass may override ``similarity``
    arbitrarily, and a wrong kernel would be silently wrong while the
    scalar-loop fallback is merely slower.
    """
    if type(sigma) is ExactMatchSimilarity:
        return ExactMatchKernel(uris, id_of)
    if type(sigma) in (TypeJaccardSimilarity, MappingTypeSimilarity):
        return TypeBitmapKernel(uris, id_of, sigma.types_of, sigma.cap)
    if type(sigma) is EmbeddingCosineSimilarity:
        return EmbeddingMatmulKernel(uris, id_of, sigma.store)
    if type(sigma) is WeightedCombination:
        parts = [
            compile_kernel(part, uris, id_of) for part in sigma.parts
        ]
        return CombinationKernel(uris, id_of, parts, sigma.weights)
    return ScalarLoopKernel(uris, id_of, sigma)


class CorpusIndex:
    """Read-only columnar compilation of (tables, mapping, sigma).

    Build once, share freely: after construction the index is never
    mutated, so parallel thread shards read it without locks and
    process workers receive it pickled inside their engine copy.
    ``tables`` is any iterable of tables — a whole
    :class:`~repro.datalake.lake.DataLake` for a monolithic index, or a
    subset when the index serves as one *segment* of a
    :class:`~repro.core.kernel.segments.SegmentedCorpusIndex` (a
    single-table segment compiles in O(table), which is what makes lake
    mutations O(delta) instead of O(lake)).  Compiled arrays round-trip
    through :mod:`repro.core.kernel.storage` via :meth:`from_arrays`,
    whose inputs may be ``np.memmap`` views for zero-copy cold start.
    """

    def __init__(
        self,
        tables: Iterable[Table],
        mapping: EntityMapping,
        sigma: EntitySimilarity,
        row_cache_size: int = DEFAULT_ROW_CACHE_SIZE,
    ):
        grids = []
        uri_set = set()
        for table in tables:
            grid = [
                mapping.entity_row(table.table_id, row, table.num_columns)
                for row in range(table.num_rows)
            ]
            grids.append((table, grid))
            for row in grid:
                for uri in row:
                    if uri is not None:
                        uri_set.add(uri)
        self.uris: List[str] = sorted(uri_set)
        self.id_of: Dict[str, int] = {
            uri: index for index, uri in enumerate(self.uris)
        }
        self._views: Dict[str, TableView] = {}
        for table, grid in grids:
            self._views[table.table_id] = self._compile_table(table, grid)
        self.kernel = compile_kernel(sigma, self.uris, self.id_of)
        self._rows = LRUCache(row_cache_size)
        self._tuples = LRUCache(max(1, row_cache_size // 8))
        self._assignments = LRUCache(max(1, row_cache_size // 8))
        self._columns = LRUCache(max(1, row_cache_size // 8))
        self._compile_corpus([table for table, _ in grids])

    def _compile_corpus(self, tables) -> None:
        """Concatenate every view into corpus-wide arrays.

        These power the engine's whole-lake batched ``search`` path: one
        global column space (table ``t``'s column ``c`` is global column
        ``col_offset[t] + c``) lets a single ``bincount`` build the
        column-relevance matrices of *all* tables at once, and the
        column-major ``flat_ids``/``col_start`` pair lets one fancy
        index gather every assigned column of every table.  The global
        nnz triples keep each table's per-column order, so the fused
        reduction still accumulates in the scalar engine's IEEE order.
        """
        self.table_ids: List[str] = [table.table_id for table in tables]
        self._table_pos: Dict[str, int] = {
            table_id: position
            for position, table_id in enumerate(self.table_ids)
        }
        views = [self._views[table_id] for table_id in self.table_ids]
        self.table_rows = np.array(
            [view.num_rows for view in views], dtype=np.int64
        )
        self.table_columns = np.array(
            [view.num_columns for view in views], dtype=np.int64
        )
        self.col_offset = np.concatenate(
            ([0], np.cumsum(self.table_columns))
        ).astype(np.int64)
        self.row_offset = np.concatenate(
            ([0], np.cumsum(self.table_rows))
        ).astype(np.int64)
        self.total_columns = int(self.col_offset[-1])
        # Column-major cell ids: global column g's entity ids live in
        # flat_ids[col_start[g] : col_start[g] + rows(table of g)].
        column_blocks: List[np.ndarray] = []
        lengths: List[np.ndarray] = []
        for view in views:
            if view.num_rows:
                column_blocks.append(view.ids.ravel(order="F"))
            lengths.append(
                np.full(view.num_columns, view.num_rows, dtype=np.int64)
            )
        self.flat_ids = (
            np.concatenate(column_blocks) if column_blocks
            else np.zeros(0, dtype=np.int32)
        )
        self.col_start = np.concatenate(
            ([0], np.cumsum(np.concatenate(lengths)))
        ).astype(np.int64) if lengths else np.zeros(1, dtype=np.int64)
        self.nnz_gcolumns = np.concatenate(
            [view.nnz_columns + self.col_offset[index]
             for index, view in enumerate(views)]
        ).astype(np.int64) if views else np.zeros(0, dtype=np.int64)
        self.nnz_gids = np.concatenate(
            [view.nnz_ids for view in views]
        ).astype(np.int32) if views else np.zeros(0, dtype=np.int32)
        self.nnz_gcounts = np.concatenate(
            [view.nnz_counts for view in views]
        ) if views else np.zeros(0, dtype=np.float64)
        # Per-table nnz boundaries: table t's global nnz triples live in
        # [nnz_toffset[t], nnz_toffset[t + 1]).  The storage layer uses
        # this to rebuild per-table views from the global arrays alone.
        self.nnz_toffset = np.concatenate(
            ([0], np.cumsum(
                np.asarray([view.nnz_ids.size for view in views],
                           dtype=np.int64)
            ))
        ).astype(np.int64)
        for array in (
            self.table_rows, self.table_columns, self.col_offset,
            self.row_offset, self.flat_ids, self.col_start,
            self.nnz_gcolumns, self.nnz_gids, self.nnz_gcounts,
            self.nnz_toffset,
        ):
            array.setflags(write=False)

    def _compile_table(self, table, grid) -> TableView:
        ids = np.full(
            (table.num_rows, table.num_columns), -1, dtype=np.int32
        )
        # Counter insertion order must match the scalar engine's
        # _column_entity_counts (rows top-down, columns left-right) so
        # the bincount reduction adds terms in the same order as the
        # scalar sum and the column-relevance matrix stays bit-equal.
        counters: List[Dict[int, int]] = [
            {} for _ in range(table.num_columns)
        ]
        id_of = self.id_of
        for row_index, row in enumerate(grid):
            for column, uri in enumerate(row):
                if uri is None:
                    continue
                entity_id = id_of[uri]
                ids[row_index, column] = entity_id
                counter = counters[column]
                counter[entity_id] = counter.get(entity_id, 0) + 1
        nnz_columns: List[int] = []
        nnz_ids: List[int] = []
        nnz_counts: List[int] = []
        for column, counter in enumerate(counters):
            for entity_id, count in counter.items():
                nnz_columns.append(column)
                nnz_ids.append(entity_id)
                nnz_counts.append(count)
        return TableView(
            table_id=table.table_id,
            num_rows=table.num_rows,
            num_columns=table.num_columns,
            ids=ids,
            nnz_columns=np.asarray(nnz_columns, dtype=np.int64),
            nnz_ids=np.asarray(nnz_ids, dtype=np.int32),
            nnz_counts=np.asarray(nnz_counts, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    @property
    def num_entities(self) -> int:
        """Distinct linked entities across the corpus."""
        return len(self.uris)

    def __len__(self) -> int:
        return len(self.table_ids)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._table_pos

    def view(self, table_id: str) -> Optional[TableView]:
        """The compiled view of one table (``None`` when unknown).

        Compiled indexes hold every view eagerly; memmap-loaded ones
        (:meth:`from_arrays`) materialize views lazily from the global
        arrays, so a cold start touches only the pages it scores.  The
        unsynchronized memo insert is a benign race: materialization is
        deterministic and dict assignment is atomic.
        """
        view = self._views.get(table_id)
        if view is None:
            position = self._table_pos.get(table_id)
            if position is None:
                return None
            view = self._materialize_view(position)
            self._views[table_id] = view
        return view

    def _materialize_view(self, position: int) -> TableView:
        """Rebuild one :class:`TableView` from the corpus-wide arrays.

        The id grid is recovered as the transpose of the table's
        column-major ``flat_ids`` block (a zero-copy view even over a
        memmap), and the nnz triples as the ``nnz_toffset`` slice of the
        global triples with the column offset subtracted.
        """
        num_rows = int(self.table_rows[position])
        num_columns = int(self.table_columns[position])
        first_column = int(self.col_offset[position])
        start = int(self.col_start[first_column])
        ids = (
            self.flat_ids[start:start + num_rows * num_columns]
            .reshape(num_columns, num_rows)
            .T
        )
        low = int(self.nnz_toffset[position])
        high = int(self.nnz_toffset[position + 1])
        nnz_columns = np.subtract(
            self.nnz_gcolumns[low:high], np.int64(first_column),
            dtype=np.int64,
        )
        return TableView(
            table_id=self.table_ids[position],
            num_rows=num_rows,
            num_columns=num_columns,
            ids=ids,
            nnz_columns=nnz_columns,
            nnz_ids=self.nnz_gids[low:high],
            nnz_counts=self.nnz_gcounts[low:high],
        )

    @classmethod
    def from_arrays(
        cls,
        table_ids: List[str],
        uris: List[str],
        kernel: "SimilarityKernel",
        arrays: Mapping[str, np.ndarray],
        row_cache_size: int = DEFAULT_ROW_CACHE_SIZE,
    ) -> "CorpusIndex":
        """Reassemble an index from persisted arrays without compiling.

        ``arrays`` maps the corpus-wide array names written by
        :func:`repro.core.kernel.storage.save_index` to (typically
        ``np.memmap``-backed, read-only) ndarrays.  No table iteration,
        interning, or kernel compilation happens here — cold start cost
        is mmap + dict construction, independent of corpus size.
        """
        index = cls.__new__(cls)
        index.uris = list(uris)
        index.id_of = {uri: i for i, uri in enumerate(index.uris)}
        index.kernel = kernel
        index._rows = LRUCache(row_cache_size)
        index._tuples = LRUCache(max(1, row_cache_size // 8))
        index._assignments = LRUCache(max(1, row_cache_size // 8))
        index._columns = LRUCache(max(1, row_cache_size // 8))
        index.table_ids = list(table_ids)
        index._table_pos = {
            table_id: position
            for position, table_id in enumerate(index.table_ids)
        }
        index._views = {}
        index.table_rows = arrays["table_rows"]
        index.table_columns = arrays["table_columns"]
        index.col_offset = arrays["col_offset"]
        index.row_offset = arrays["row_offset"]
        index.total_columns = int(index.col_offset[-1])
        index.flat_ids = arrays["flat_ids"]
        index.col_start = arrays["col_start"]
        index.nnz_gcolumns = arrays["nnz_gcolumns"]
        index.nnz_gids = arrays["nnz_gids"]
        index.nnz_gcounts = arrays["nnz_gcounts"]
        index.nnz_toffset = arrays["nnz_toffset"]
        return index

    def tuple_rows(self, query_tuple, profile=None) -> np.ndarray:
        """Stacked similarity rows for a whole query tuple, memoized.

        Returns a read-only ``(len(query_tuple), num_entities)`` matrix
        whose row ``p`` is :meth:`sims_row` of the tuple's ``p``-th
        entity.  Queries repeat tuples across every candidate table, so
        memoizing the stacked (C-contiguous) matrix removes one row
        lookup + stack per table from the hot path.  Profile accounting
        matches :meth:`sims_row`: a memo hit counts one similarity call
        per corpus entity per tuple position.
        """
        matrix = self._tuples.get(query_tuple)
        if matrix is None:
            matrix = np.ascontiguousarray(
                np.stack([self.sims_row(uri, profile)
                          for uri in query_tuple])
            )
            matrix.setflags(write=False)
            self._tuples.put(query_tuple, matrix)
        elif profile is not None:
            profile.similarity_calls += len(self.uris) * len(query_tuple)
        return matrix

    def sims_row(self, uri: str, profile=None) -> np.ndarray:
        """``sigma(uri, e)`` for every corpus entity, memoized.

        When a :class:`~repro.core.search.ScoringProfile` is passed,
        each batched lookup counts as ``num_entities`` pairwise
        ``similarity_calls``, and materializing a row additionally as
        ``num_entities`` ``similarity_misses`` — the vectorized
        equivalent of the scalar cache's per-pair accounting, so
        ``--cache-stats`` and the Section 7.3 cost split stay
        meaningful under ``--engine vectorized``.
        """
        sims = self._rows.get(uri)
        if sims is None:
            sims = self.kernel.row(uri)
            sims.setflags(write=False)
            self._rows.put(uri, sims)
            if profile is not None:
                profile.similarity_calls += len(self.uris)
                profile.similarity_misses += len(self.uris)
        elif profile is not None:
            profile.similarity_calls += len(self.uris)
        return sims

    def cached_assignment(self, query_tuple) -> Optional[np.ndarray]:
        """Memoized whole-segment column assignment of one query tuple.

        The engine's Section 5.1 assignment of a tuple against every
        table of this (immutable) segment is a pure function of the
        tuple, so repeated tuples — replayed queries, overlapping
        micro-batches — skip the relevance bincount and the per-table
        assignment solve entirely.  Only unrestricted (whole-segment)
        assignments are stored or consulted: candidate-restricted
        passes confine their relevance (and hence their gather set) to
        the selection, which a whole-segment assignment would defeat.
        """
        return self._assignments.get(query_tuple)

    def store_assignment(self, query_tuple, assignment: np.ndarray) -> None:
        """Memoize a whole-segment assignment (see cached_assignment)."""
        assignment.setflags(write=False)
        self._assignments.put(query_tuple, assignment)

    def cached_tuple_column(self, query_tuple, token):
        """Memoized final ``(column, signal)`` of one tuple vs this segment.

        The engine's complete per-tuple scoring of this (immutable)
        segment — assignment, gather, residual tail — is deterministic
        given the tuple and the engine configuration, so repeated
        tuples skip the whole pass.  ``token`` captures that
        configuration: ``(informativeness, row_aggregation,
        tuple_semantics)``.  The informativeness object is replaced
        (never mutated) on refresh and is compared by identity, so a
        stale column can never be served after the weights change.
        Only unrestricted (whole-segment) columns live here; see
        :meth:`cached_assignment` for why restricted passes bypass it.
        """
        entry = self._columns.get(query_tuple)
        if entry is None:
            return None
        stored_token, column, signal = entry
        if stored_token[0] is not token[0] or stored_token[1:] != token[1:]:
            return None
        return column, signal

    def store_tuple_column(
        self, query_tuple, token,
        column: np.ndarray, signal: np.ndarray,
    ) -> None:
        """Memoize one tuple's column (see cached_tuple_column)."""
        column.setflags(write=False)
        signal.setflags(write=False)
        self._columns.put(query_tuple, (token, column, signal))

    def row_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the similarity-row memo."""
        return self._rows.stats()

    def tuple_cache_stats(self) -> CacheStats:
        """Hit/miss counters of the stacked tuple-matrix memo."""
        return self._tuples.stats()

"""Segmented corpus index: O(delta) mutations over immutable segments.

The monolithic :class:`~repro.core.kernel.index.CorpusIndex` compiles
the whole lake, so every ``add_table`` / ``remove_table`` used to pay a
full O(lake) recompile before the next query.  This module applies the
Lucene playbook instead: the corpus is a sequence of immutable compiled
*segments* (each one a small ``CorpusIndex`` over a subset of tables,
with its own URI interning, columnar grids, type bitmaps, and stacked
embeddings) plus per-segment *tombstone* sets:

* adding a table compiles a single-table segment — O(table);
* removing a table writes a tombstone — O(1), no array is touched;
* replacing a table tombstones the old copy and appends a fresh
  single-table segment;
* a size-tiered compaction policy merges accumulated small segments
  into bigger ones *off the request path* (the engine compacts during
  ``warm()``, which serving snapshots run before the swap), bounding
  both segment count and tombstone debt.

:class:`SegmentedCorpusIndex` is **functional**: every mutation returns
a new instance that shares the untouched segment objects by reference.
That is what makes serving snapshots O(delta) — a clone adopts the
previous generation's index, and the one mutated table costs one
single-table compile while every other segment (arrays, kernels, warm
similarity-row memos) is shared, not copied.  Readers therefore never
need a lock: an engine publishes a new index by swapping one reference.

Scoring parity with a monolithic recompile is exact: a table's score
depends only on its own columnar block and on ``sigma`` rows restricted
to entities appearing in that table, all of which live in the owning
segment, so per-segment evaluation reproduces the monolithic arithmetic
term for term (bit-exact for type Jaccard, BLAS-order noise within the
engine's 1e-9 budget for cosine).  ``tests/test_core_segments.py`` pins
this with a randomized add/remove/compact property test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.cache import CacheStats
from repro.exceptions import ConfigurationError
from repro.core.kernel.index import (
    DEFAULT_ROW_CACHE_SIZE,
    CorpusIndex,
    TableView,
)
from repro.datalake.table import Table
from repro.linking.mapping import EntityMapping
from repro.similarity.base import EntitySimilarity

#: A size tier holds segments with live-table counts in one power-of-4
#: band (1-3, 4-15, 16-63, ...).  When a tier accumulates this many
#: segments they merge into one — the classic size-tiered trade-off:
#: every table is recompiled O(log_4 lake) times over its lifetime, and
#: the steady-state segment count stays O(fanout * log_4 lake).
COMPACTION_FANOUT = 4

#: Hard backstop on segment count: beyond this, compaction merges
#: everything into one segment regardless of tiers.  With tiered merges
#: running on every ``warm()`` this is essentially unreachable; it
#: exists so a pathological mutation burst cannot degrade scoring into
#: thousands of tiny segment passes.
MAX_SEGMENTS = 32


def _tier_of(live_count: int) -> int:
    """The power-of-4 size tier of a segment with ``live_count`` tables."""
    return (max(int(live_count), 1).bit_length() - 1) // 2


def _merge_cache_stats(parts: Sequence[CacheStats]) -> CacheStats:
    """Aggregate per-segment cache counters into one corpus-wide view."""
    return CacheStats(
        hits=sum(p.hits for p in parts),
        misses=sum(p.misses for p in parts),
        evictions=sum(p.evictions for p in parts),
        size=sum(p.size for p in parts),
        maxsize=sum(p.maxsize for p in parts),
    )


@dataclass(frozen=True)
class SegmentedIndexStats:
    """Point-in-time health counters of a segmented index.

    ``tombstones`` counts dead table copies still occupying segment
    rows (compaction reclaims them); ``compactions`` counts merges
    performed over this index's whole mutation lineage.
    """

    segments: int
    live_tables: int
    tombstones: int
    entities: int
    compactions: int

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly form for the serving metrics endpoint."""
        return {
            "segments": self.segments,
            "live_tables": self.live_tables,
            "tombstones": self.tombstones,
            "entities": self.entities,
            "compactions": self.compactions,
        }


class SegmentedCorpusIndex:
    """An immutable sequence of compiled segments plus tombstones.

    Instances are cheap value objects around shared segment arrays;
    every mutator (:meth:`with_table`, :meth:`without_table`,
    :meth:`maybe_compacted`, :meth:`compacted`) returns a **new**
    instance and never touches the receiver, so a published index can
    be read lock-free while its successor is being prepared.

    The class invariant is that every live table id is owned by exactly
    one ``(segment, position)``: :meth:`with_table` tombstones any
    previous copy before appending, and compaction folds only live
    tables into merged segments.
    """

    def __init__(
        self,
        segments: Iterable[CorpusIndex],
        dead: Iterable[FrozenSet[str]],
        mapping: EntityMapping,
        sigma: EntitySimilarity,
        row_cache_size: int = DEFAULT_ROW_CACHE_SIZE,
        compactions: int = 0,
    ):
        self.segments: Tuple[CorpusIndex, ...] = tuple(segments)
        self.dead: Tuple[FrozenSet[str], ...] = tuple(
            frozenset(dead_set) for dead_set in dead
        )
        if len(self.segments) != len(self.dead):
            raise ConfigurationError(
                "segments and tombstone sets must align: "
                f"{len(self.segments)} != {len(self.dead)}"
            )
        self.mapping = mapping
        self.sigma = sigma
        self.row_cache_size = row_cache_size
        self.compactions = compactions
        owner: Dict[str, Tuple[int, int]] = {}
        for seg_index, (segment, dead_set) in enumerate(
            zip(self.segments, self.dead)
        ):
            for position, table_id in enumerate(segment.table_ids):
                if table_id not in dead_set:
                    owner[table_id] = (seg_index, position)
        self._owner = owner

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        tables: Iterable[Table],
        mapping: EntityMapping,
        sigma: EntitySimilarity,
        row_cache_size: int = DEFAULT_ROW_CACHE_SIZE,
        segment_tables: int = 0,
    ) -> "SegmentedCorpusIndex":
        """Compile tables from scratch into a fresh segmented index.

        ``segment_tables > 0`` pre-splits the corpus into micro-batch
        segments of that many tables (useful to exercise multi-segment
        behavior or bound per-segment compile cost); the default is one
        monolithic segment, which compaction maintains thereafter.
        """
        table_list = list(tables)
        if segment_tables > 0:
            chunks = [
                table_list[start:start + segment_tables]
                for start in range(0, len(table_list), segment_tables)
            ]
        else:
            chunks = [table_list] if table_list else []
        segments = [
            CorpusIndex(chunk, mapping, sigma, row_cache_size=row_cache_size)
            for chunk in chunks
        ]
        return cls(
            segments,
            [frozenset()] * len(segments),
            mapping,
            sigma,
            row_cache_size=row_cache_size,
        )

    def _replace(
        self,
        segments: Sequence[CorpusIndex],
        dead: Sequence[FrozenSet[str]],
        compactions: int,
    ) -> "SegmentedCorpusIndex":
        """Successor instance; drops segments with no live table left."""
        kept = [
            (segment, frozenset(dead_set))
            for segment, dead_set in zip(segments, dead)
            if len(dead_set) < len(segment.table_ids)
        ]
        return SegmentedCorpusIndex(
            [pair[0] for pair in kept],
            [pair[1] for pair in kept],
            self.mapping,
            self.sigma,
            row_cache_size=self.row_cache_size,
            compactions=compactions,
        )

    def rebound(
        self, mapping: EntityMapping, sigma: EntitySimilarity
    ) -> "SegmentedCorpusIndex":
        """The same segments bound to another (mapping, sigma) pair.

        A serving snapshot clone owns a *copied* mapping; adopting the
        previous generation's index must rebind it so that future
        incremental compiles read the clone's links, not the retired
        generation's.  Segment contents are shared untouched (the copy
        preserves link content, so they remain valid verbatim).
        """
        return SegmentedCorpusIndex(
            self.segments,
            self.dead,
            mapping,
            sigma,
            row_cache_size=self.row_cache_size,
            compactions=self.compactions,
        )

    # ------------------------------------------------------------------
    # O(delta) mutations
    # ------------------------------------------------------------------
    def with_table(self, table: Table) -> "SegmentedCorpusIndex":
        """Add (or replace) one table via a single-table segment.

        Cost is O(table) — one small compile — regardless of corpus
        size.  An existing copy of the id is tombstoned first, so the
        one-owner invariant holds.
        """
        table_id = table.table_id
        dead = list(self.dead)
        previous = self._owner.get(table_id)
        if previous is not None:
            dead[previous[0]] = dead[previous[0]] | {table_id}
        segment = CorpusIndex(
            [table], self.mapping, self.sigma,
            row_cache_size=self.row_cache_size,
        )
        return self._replace(
            list(self.segments) + [segment],
            dead + [frozenset()],
            self.compactions,
        )

    def without_table(self, table_id: str) -> "SegmentedCorpusIndex":
        """Tombstone one table — O(1), no array is recompiled."""
        previous = self._owner.get(table_id)
        if previous is None:
            return self
        dead = list(self.dead)
        dead[previous[0]] = dead[previous[0]] | {table_id}
        return self._replace(list(self.segments), dead, self.compactions)

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def maybe_compacted(
        self, resolve: Callable[[str], Optional[Table]]
    ) -> "SegmentedCorpusIndex":
        """Apply the size-tiered policy; returns ``self`` when idle.

        ``resolve`` maps a live table id back to its Table (the engine
        passes ``lake.get``); merges recompile from source tables, so a
        group whose table cannot be resolved is left unmerged rather
        than guessed at.  Intended for off-request-path call sites —
        the engine invokes it from ``warm()`` and after reconciliation,
        never per query.
        """
        if not self.segments:
            return self
        live_counts = [
            len(segment.table_ids) - len(dead_set)
            for segment, dead_set in zip(self.segments, self.dead)
        ]
        if len(self.segments) > MAX_SEGMENTS:
            groups = [list(range(len(self.segments)))]
        else:
            tiers: Dict[int, List[int]] = {}
            for seg_index, count in enumerate(live_counts):
                tiers.setdefault(_tier_of(count), []).append(seg_index)
            groups = [
                members
                for _, members in sorted(tiers.items())
                if len(members) >= COMPACTION_FANOUT
            ]
        if not groups:
            return self
        return self._merged(groups, resolve)

    def compacted(
        self, resolve: Callable[[str], Optional[Table]]
    ) -> "SegmentedCorpusIndex":
        """Force-merge everything into (at most) one segment."""
        if len(self.segments) <= 1 and not any(self.dead):
            return self
        return self._merged([list(range(len(self.segments)))], resolve)

    def _merged(
        self,
        groups: Sequence[Sequence[int]],
        resolve: Callable[[str], Optional[Table]],
    ) -> "SegmentedCorpusIndex":
        """Recompile each group's live tables into one merged segment.

        Merged segments take the slot of their group's first member, so
        segment order stays stable for unrelated segments.
        """
        replacements: Dict[int, Optional[CorpusIndex]] = {}
        consumed: Dict[int, int] = {}
        compactions = self.compactions
        for members in groups:
            tables: List[Table] = []
            resolved = True
            for seg_index in members:
                segment = self.segments[seg_index]
                dead_set = self.dead[seg_index]
                for table_id in segment.table_ids:
                    if table_id in dead_set:
                        continue
                    table = resolve(table_id)
                    if table is None or table.table_id != table_id:
                        resolved = False
                        break
                    tables.append(table)
                if not resolved:
                    break
            if not resolved:
                continue
            merged = (
                CorpusIndex(
                    tables, self.mapping, self.sigma,
                    row_cache_size=self.row_cache_size,
                )
                if tables else None
            )
            replacements[members[0]] = merged
            for seg_index in members:
                consumed[seg_index] = members[0]
            compactions += 1
        if not consumed:
            return self
        segments: List[CorpusIndex] = []
        dead: List[FrozenSet[str]] = []
        for seg_index, (segment, dead_set) in enumerate(
            zip(self.segments, self.dead)
        ):
            if seg_index in replacements:
                merged = replacements[seg_index]
                if merged is not None:
                    segments.append(merged)
                    dead.append(frozenset())
            elif seg_index in consumed:
                continue
            else:
                segments.append(segment)
                dead.append(dead_set)
        return self._replace(segments, dead, compactions)

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of *live* tables."""
        return len(self._owner)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._owner

    def live_table_ids(self) -> List[str]:
        """Live table ids in segment scan order."""
        return list(self._owner)

    def mirrors(self, lake_ids: Sequence[str]) -> bool:
        """Whether the live table set equals ``lake_ids`` exactly."""
        owner = self._owner
        return len(lake_ids) == len(owner) and all(
            table_id in owner for table_id in lake_ids
        )

    def locate_position(self, table_id: str) -> Tuple[int, int]:
        """The live ``(segment index, position)`` of a table id."""
        return self._owner[table_id]

    def locate(
        self, table_id: str
    ) -> Optional[Tuple[CorpusIndex, TableView]]:
        """The owning segment and compiled view (``None`` if not live)."""
        entry = self._owner.get(table_id)
        if entry is None:
            return None
        segment = self.segments[entry[0]]
        view = segment.view(table_id)
        if view is None:  # pragma: no cover - guarded by the invariant
            return None
        return segment, view

    @property
    def num_entities(self) -> int:
        """Interned entity entries across segments.

        An entity linked in several segments is counted once per
        segment (each segment interns its own URI delta); after full
        compaction this equals the monolithic distinct-entity count.
        """
        return sum(segment.num_entities for segment in self.segments)

    def stats(self) -> SegmentedIndexStats:
        return SegmentedIndexStats(
            segments=len(self.segments),
            live_tables=len(self._owner),
            tombstones=sum(len(dead_set) for dead_set in self.dead),
            entities=self.num_entities,
            compactions=self.compactions,
        )

    def row_cache_stats(self) -> CacheStats:
        """Aggregated similarity-row memo counters across segments."""
        return _merge_cache_stats(
            [segment.row_cache_stats() for segment in self.segments]
        )

    def tuple_cache_stats(self) -> CacheStats:
        """Aggregated tuple-matrix memo counters across segments."""
        return _merge_cache_stats(
            [segment.tuple_cache_stats() for segment in self.segments]
        )


__all__ = [
    "COMPACTION_FANOUT",
    "MAX_SEGMENTS",
    "SegmentedCorpusIndex",
    "SegmentedIndexStats",
]

"""The vectorized scoring engine: Algorithm 1 as array programs.

:class:`VectorizedTableSearchEngine` keeps the scalar engine's entire
contract — same constructor, same ``search`` / ``search_many`` /
``score_table`` semantics, same caches and profile — but replaces the
per-cell Python hot loop with batched numpy passes over a compiled
:class:`~repro.core.kernel.index.CorpusIndex`:

1. per query entity, one kernel pass yields its similarity against
   every corpus entity (matmul for embeddings, bitmap popcount for
   type Jaccard);
2. the Section 5.1 column-relevance matrix is one ``bincount``
   reduction per query entity over the table's flattened column
   multiset, then solved by the same Hungarian implementation;
3. per-row SemRel (Equations 2-3, both tuple semantics and both
   aggregations) is evaluated with numpy reductions over the table's
   id grid instead of nested Python loops.

Scores are parity-checked against the scalar engine to <= 1e-9 (bit
equal for type similarity, BLAS-summation-order noise for cosine); the
randomized suite in ``tests/test_core_kernel.py`` pins this across
tuple semantics, aggregation modes, nulls, unlinked cells, and
entities missing embeddings.

The compiled index is **segmented**
(:class:`~repro.core.kernel.segments.SegmentedCorpusIndex`): lake
mutations apply O(delta) — ``invalidate_table`` compiles one
single-table segment (add/replace) or writes a tombstone (remove)
instead of discarding the whole compilation, and size-tiered
compaction merges small segments during :meth:`warm` — off the request
path, where serving snapshots already run it before the swap.  Thread
shards of the parallel engine share the index read-only; process
workers either receive it pickled or, when the index is disk-backed
(``index_dir`` or a pool spill), re-open it zero-copy via
``np.memmap`` from :mod:`repro.core.kernel.storage`.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.aggregation import RowAggregation, TupleSemantics
from repro.core.assignment import max_assignment
from repro.core.cache import (
    DEFAULT_SIMILARITY_CACHE_SIZE,
    DEFAULT_VIEW_CACHE_SIZE,
    CacheStats,
    LRUCache,
)
from repro.core.kernel.index import DEFAULT_ROW_CACHE_SIZE, CorpusIndex
from repro.core.kernel.segments import (
    SegmentedCorpusIndex,
    SegmentedIndexStats,
)
from repro.core.aggregation import QueryAggregation
from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.core.search import ScoringProfile, TableScore, TableSearchEngine
from repro.core.topk import TopKEntry
from repro.datalake.table import Table
from repro.exceptions import IndexStorageError, SearchError

#: Minimum gap between the best and second-best assignment total before
#: the enumerated small-width assignment is trusted over the Hungarian
#: solver.  Well above the ~1e-13 rounding the solver's potentials can
#: accumulate, so a margin-clearing optimum is provably the solver's
#: answer too; anything closer falls back to the exact solver.
ASSIGNMENT_MARGIN = 1e-9

#: Widths the batched search solves by exhaustive enumeration (the
#: tensor has ``columns ** width`` cells; beyond 3 the solver wins).
MAX_ENUM_WIDTH = 3

#: Slack added to a vectorized upper bound before the early-termination
#: cut-off compares it against the k-th best exact score.  The bound's
#: reductions (``np.max`` / ``np.mean`` over tuples, BLAS dot products)
#: may sum in a different order than the kernel's exact pass, so strict
#: FP dominance can miss by rounding noise; the slack converts that into
#: "score a few extra tables" instead of "drop a true top-k member".
BOUND_SLACK = 1e-9

#: Smallest shortlist chunk the early-terminating candidate search
#: scores per fused pass — each pass re-reduces the global relevance
#: matrix, so very small chunks would repeat that fixed cost.
MIN_PRUNE_CHUNK = 32


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + lengths[i])`` index ranges.

    The vectorized equivalent of ``np.concatenate([np.arange(s, s + n)
    for s, n in zip(starts, lengths)])`` — used to slice the selected
    tables' contiguous nnz blocks out of a segment's global arrays
    while preserving their in-corpus order.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        ends - lengths, lengths
    )
    return np.repeat(starts, lengths) + within

#: ``(n, n, n)`` boolean masks marking option triples that repeat a real
#: column, keyed by ``n = columns + 1`` — the last option index is the
#: conflict-exempt null slot, so only repeats below it clash.  Shared by
#: every width-3 enumeration.
_CLASH_MASKS: Dict[int, np.ndarray] = {}


def _clash_mask(options: int) -> np.ndarray:
    mask = _CLASH_MASKS.get(options)
    if mask is None:
        null = options - 1
        i, j, k = np.ix_(*[np.arange(options)] * 3)
        mask = (
            ((i == j) & (i != null))
            | ((i == k) & (i != null))
            | ((j == k) & (j != null))
        )
        _CLASH_MASKS[options] = mask
    return mask


class VectorizedTableSearchEngine(TableSearchEngine):
    """Drop-in :class:`~repro.core.search.TableSearchEngine` with a
    batched scoring kernel.

    Additional parameters
    ---------------------
    row_cache_size:
        Entry bound of the per-query-entity similarity-row memo held
        by each compiled segment.
    index_dir:
        Optional directory holding a persisted index
        (:mod:`repro.core.kernel.storage`).  When set, the first
        :meth:`index` call memmaps the on-disk arrays instead of
        compiling — cold start becomes mmap + header validation — and
        falls back to compiling if the directory is missing, stale
        (live table set differs from the lake), or was built for a
        different similarity configuration.

    Notes
    -----
    The scalar machinery stays fully functional underneath: ``explain``
    and the top-k bound computation keep using the inherited pairwise
    path (and its :class:`~repro.core.cache.SimilarityCache`), while
    every ``score_table`` goes through the kernel.  A table missing
    from the index (mutated lake without invalidation) triggers one
    incremental reconciliation, then falls back to the scalar path if
    still unknown, so the engine never answers wrong — only slower.
    """

    #: Engine selector name (the ``--engine`` CLI value).
    kind = "vectorized"

    def __init__(self, *args, row_cache_size: int = DEFAULT_ROW_CACHE_SIZE,
                 index_dir: Optional[str] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.row_cache_size = row_cache_size
        self.index_dir = index_dir
        self._index_lock = threading.Lock()
        self._index: Optional[SegmentedCorpusIndex] = None  # guarded-by: _index_lock
        # Directory a parallel process pool spilled the index to; while
        # set, pickling drops the compiled arrays and workers re-open
        # them zero-copy from disk.
        self._spill_dir: Optional[str] = None  # guarded-by: _index_lock
        # Informativeness weights per query tuple; entries carry the
        # informativeness object they were computed from, so swapping
        # the weight function (Thetis does on lake mutations) never
        # serves stale weights.
        self._tuple_weights_cache = LRUCache(256)

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def index(self) -> SegmentedCorpusIndex:
        """The segmented corpus index, built (or loaded) on first use."""
        # Intentionally racy read (double-checked build): a segmented
        # index instance is immutable, so the fast path skips the lock.
        index = self._index  # lint: disable=guarded-attr-outside-lock
        if index is None:
            with self._index_lock:
                if self._index is None:
                    self._index = self._build_index()
                index = self._index
        return index

    def _build_index(self) -> SegmentedCorpusIndex:
        """Load from disk when possible, else compile from the lake.

        Only called with :attr:`_index_lock` held.  A disk index is
        adopted only when its live table set matches the lake exactly;
        anything else (missing files, version/sigma mismatch, drift)
        falls back to a full compile rather than guessing.
        """
        # _build_index only runs with _index_lock held (see callers).
        source = self._spill_dir or self.index_dir  # lint: disable=guarded-attr-outside-lock
        if source is not None:
            from repro.core.kernel.storage import load_index

            try:
                loaded = load_index(
                    source, self.sigma, self.mapping,
                    row_cache_size=self.row_cache_size,
                )
            except IndexStorageError:
                loaded = None
            if loaded is not None and loaded.mirrors(
                [table.table_id for table in self.lake]
            ):
                return loaded
        return SegmentedCorpusIndex.compile(
            self.lake, self.mapping, self.sigma,
            row_cache_size=self.row_cache_size,
        )

    def prepare(self) -> None:
        """Compile the index eagerly.

        The parallel engine calls this before pickling the engine into
        a process pool, so every worker inherits the compiled arrays
        instead of rebuilding them.
        """
        self.index()

    def spill_index(self, path: str) -> None:
        """Persist the index to ``path`` and serve workers from disk.

        The parallel process backend calls this before forking its
        pool: afterwards :meth:`__getstate__` omits the compiled
        arrays, and each worker's first :meth:`index` call re-opens the
        spill directory as read-only memmaps — the workers then share
        the arrays through the OS page cache instead of each holding a
        pickled copy.
        """
        from repro.core.kernel.storage import save_index

        index = self.index()
        save_index(index, path)
        with self._index_lock:
            self._spill_dir = path

    def clear_spill(self) -> None:
        """Stop serving pickled copies from the spill directory."""
        with self._index_lock:
            self._spill_dir = None

    def _invalidate_index(self) -> None:
        with self._index_lock:
            self._index = None

    def invalidate_cache(self, include_similarities: bool = False) -> None:
        """Full reset: drops the compiled index for a from-scratch build."""
        super().invalidate_cache(include_similarities)
        self._invalidate_index()

    def invalidate_table(self, table_id: str) -> None:
        """Apply one table's change to the index in O(delta).

        If the table is (still) in the lake its old segment entry is
        tombstoned and a fresh single-table segment is compiled; if it
        left the lake only a tombstone is written.  The untouched
        segments — arrays, kernels, and warm similarity-row memos — are
        shared by reference into the successor index, so a mutation no
        longer costs a full O(lake) recompile on the next search.  A
        never-built index stays unbuilt (nothing to update).
        """
        super().invalidate_table(table_id)
        with self._index_lock:
            index = self._index
            if index is None:
                return
            table = self.lake.find(table_id)
            if table is not None:
                index = index.with_table(table)
            else:
                index = index.without_table(table_id)
            self._index = index

    def compact(self) -> SegmentedIndexStats:
        """Run the size-tiered compaction policy; returns fresh stats.

        Merges recompile from the live lake tables, so this belongs off
        the request path — :meth:`warm` (which serving snapshots run
        before every swap) calls it for you.
        """
        with self._index_lock:
            if self._index is None:
                self._index = self._build_index()
            self._index = self._index.maybe_compacted(self.lake.get)
            return self._index.stats()

    def adopt_index(self, index: SegmentedCorpusIndex) -> None:
        """Adopt another engine's index, rebinding mapping and sigma.

        Serving snapshot clones use this to share every unchanged
        segment with the generation they replace; the subsequent
        mutation then costs O(delta).  The adopted instance is never
        mutated (the segmented index is functional), so sharing is safe
        while the source engine keeps serving queries.
        """
        with self._index_lock:
            self._index = index.rebound(self.mapping, self.sigma)

    def export_index(self) -> Optional[SegmentedCorpusIndex]:
        """The current index instance, or ``None`` when not yet built."""
        # Intentionally racy read: instances are immutable; a stale
        # reference is simply the previous (still valid) generation.
        return self._index  # lint: disable=guarded-attr-outside-lock

    def index_stats(self) -> Optional[SegmentedIndexStats]:
        """Segment/tombstone/compaction counters (``None`` when cold)."""
        # Intentionally racy read (see export_index).
        index = self._index  # lint: disable=guarded-attr-outside-lock
        return index.stats() if index is not None else None

    def seed_views_from(self, source: TableSearchEngine) -> None:
        """Share the source's caches *and* its compiled index."""
        super().seed_views_from(source)
        if isinstance(source, VectorizedTableSearchEngine):
            index = source.export_index()
            if index is not None:
                self.adopt_index(index)

    def warm(self, table_ids: Optional[Iterable[str]] = None) -> int:
        """Build/compact the index, then materialize scalar-path views.

        A serving snapshot calls this before the swap, so both the
        O(delta) segment update triggered by a table add/remove and any
        due compaction happen off the request path.
        """
        self.compact()
        return super().warm(table_ids)

    def cache_stats(self) -> Dict[str, CacheStats]:
        stats = super().cache_stats()
        # Intentionally racy read: stats reporting must not serialize
        # against an in-flight index build; None just means "cold".
        index = self._index  # lint: disable=guarded-attr-outside-lock
        if index is not None:
            stats["kernel_rows"] = index.row_cache_stats()
            stats["kernel_tuples"] = index.tuple_cache_stats()
        return stats

    # Locks are not picklable; process-pool workers rebuild it.  With a
    # disk-backed index (index_dir or a pool spill) the compiled arrays
    # are dropped from the pickle — workers re-open them zero-copy via
    # memmap on first use; otherwise the index travels with the engine.
    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_index_lock", None)
        if state.get("_spill_dir") or state.get("index_dir"):
            state["_index"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.index_dir = state.get("index_dir")
        self._spill_dir = state.get("_spill_dir")
        self._index_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Vectorized Algorithm 1
    # ------------------------------------------------------------------
    def _tuple_weights(self, query_tuple) -> np.ndarray:
        """Informativeness weights of a tuple, memoized per tuple."""
        entry = self._tuple_weights_cache.get(query_tuple)
        if entry is not None and entry[0] is self.informativeness:
            return entry[1]
        weights = np.array(
            [self.informativeness(uri) for uri in query_tuple]
        )
        self._tuple_weights_cache.put(
            query_tuple, (self.informativeness, weights)
        )
        return weights

    @staticmethod
    def _fast_assignment(relevance: np.ndarray) -> Optional[np.ndarray]:
        """Greedy column assignment when it is provably solver-equal.

        When every positive-relevance query entity has a *strictly*
        unique best column and those columns are pairwise distinct, the
        sum of row maxima is attainable and every optimal assignment
        must realize it, so the Hungarian solver's answer produces the
        same downstream scores as the greedy one.  Zero-relevance
        entities map to ``-1``: whatever real column the solver would
        hand them contributes only zero similarities (a zero
        column-relevance bounds every cell similarity in that column at
        zero), so the scores are identical there too.  Any tie or
        column conflict returns ``None`` and the caller falls back to
        the exact solver.
        """
        maxima = relevance.max(axis=1)
        best = relevance.argmax(axis=1)
        positive = maxima > 0.0
        active = best[positive]
        if len(set(active.tolist())) != active.size:
            return None
        ties = (relevance == maxima[:, None]).sum(axis=1)
        if np.any(ties[positive] > 1):
            return None
        return np.where(positive, best, -1)

    # ------------------------------------------------------------------
    # Whole-lake batched search
    # ------------------------------------------------------------------
    def _enumerate_assignments(self, index, relevance, rows, selection):
        """Exact column assignments by null-augmented enumeration.

        For ``p = len(rows)`` positive query entities and tables
        ``selection``, each entity's options are its *positive-relevance*
        columns plus one conflict-exempt null slot worth ``0.0``
        (zero-relevance columns are demoted to ``-inf``: a zero column
        relevance means every cell similarity in that column is zero, so
        taking such a column, the null slot, or the solver's padding all
        produce identical downstream scores).  The ``(columns + 1) ** p``
        tensor of totals therefore enumerates exactly one cell per
        distinct *positive support* — the set of (entity, column) picks
        that actually contribute — and its maximum equals the Hungarian
        optimum for any ``columns``-vs-``width`` shape.

        Returns ``(chosen, ok)``: the option per row (the null slot
        decodes to ``-1``), and whether the optimum cleared
        :data:`ASSIGNMENT_MARGIN` over the runner-up.  A margin-clearing
        optimum is provably what the solver's answer scores to: every
        other positive support loses by more than either method's float
        rounding, so the solver's assignment shares the optimum's
        support, and non-support picks are score-free.  Tables failing
        the margin fall back to the solver.
        """
        columns = index.table_columns[selection]
        cmax = int(columns.max())
        options = cmax + 1
        gather = index.col_offset[selection][:, None] + np.arange(cmax)
        np.minimum(gather, index.total_columns - 1, out=gather)
        valid = np.arange(cmax) < columns[:, None]
        real = relevance[rows][:, gather]
        blocks = np.concatenate(
            [
                np.where(valid[None, :, :] & (real > 0.0), real, -np.inf),
                np.zeros((len(rows), len(selection), 1), dtype=np.float64),
            ],
            axis=2,
        )
        size = len(selection)
        if len(rows) == 1:
            flat = blocks[0]
        elif len(rows) == 2:
            flat = blocks[0][:, :, None] + blocks[1][:, None, :]
            diagonal = np.arange(cmax)
            flat[:, diagonal, diagonal] = -np.inf
            flat = flat.reshape(size, -1)
        else:
            totals = (
                blocks[0][:, :, None, None]
                + blocks[1][:, None, :, None]
                + blocks[2][:, None, None, :]
            )
            totals[:, _clash_mask(options)] = -np.inf
            flat = totals.reshape(size, -1)
        best = flat.argmax(axis=1)
        # Runner-up via masking the winner (cheaper than a partition).
        # The all-null cell keeps the optimum finite, so the margin is
        # +inf against a -inf runner-up, never NaN.
        lanes = np.arange(size)
        best_totals = flat[lanes, best]
        flat[lanes, best] = -np.inf
        ok = best_totals - flat.max(axis=1) >= ASSIGNMENT_MARGIN
        if len(rows) == 1:
            chosen = best[:, None]
        elif len(rows) == 2:
            chosen = np.stack(np.divmod(best, options), axis=1)
        else:
            chosen = np.stack(
                np.unravel_index(best, (options, options, options)), axis=1
            )
        chosen = chosen.astype(np.int64)
        return np.where(chosen == cmax, -1, chosen), ok

    def _batched_assignments(
        self, index, relevance: np.ndarray, width: int
    ) -> np.ndarray:
        """Section 5.1 column assignments for *every* table at once.

        ``relevance`` is the ``(width, total_columns)`` global
        column-relevance matrix.  Tables whose every query entity has
        zero relevance keep ``-1`` everywhere (provably score-equal to
        whatever the solver would pick).  Small widths go through the
        enumerated exact assignment grouped by positive-entity pattern;
        margin failures and wide tuples fall back to the scalar
        engine's Hungarian solver per table.
        """
        num_tables = len(index.table_ids)
        assignment = np.full((num_tables, width), -1, dtype=np.int64)
        maxima = np.maximum.reduceat(
            relevance, index.col_offset[:-1], axis=1
        )
        positive = maxima > 0.0
        need = positive.any(axis=0)
        fallback: List[int] = []
        if width <= MAX_ENUM_WIDTH:
            codes = (
                positive
                * (1 << np.arange(width, dtype=np.int64))[:, None]
            ).sum(axis=0)
            codes = np.where(need, codes, 0)
            for code in np.unique(codes):
                if code == 0:
                    continue
                rows = np.flatnonzero((int(code) >> np.arange(width)) & 1)
                selection = np.flatnonzero(codes == code)
                chosen, ok = self._enumerate_assignments(
                    index, relevance, rows, selection
                )
                resolved = selection[ok]
                assignment[resolved[:, None], rows[None, :]] = chosen[ok]
                fallback.extend(selection[~ok].tolist())
        else:
            fallback.extend(np.flatnonzero(need).tolist())
        for table_index in fallback:
            start = index.col_offset[table_index]
            stop = index.col_offset[table_index + 1]
            block = np.ascontiguousarray(relevance[:, start:stop])
            resolved = self._fast_assignment(block)
            if resolved is None:
                resolved, _ = max_assignment(block)
                resolved = np.asarray(resolved)
            assignment[table_index] = resolved
        return assignment

    def _reconcile_index(self) -> SegmentedCorpusIndex:
        """Diff the index's live tables against the lake, apply O(delta).

        Used when a search notices the lake mutated behind the engine's
        back (no ``invalidate_table`` was issued): removed ids are
        tombstoned, new ids get single-table segments, and the result
        is compacted if due — never a full recompile unless the index
        was not built at all.
        """
        with self._index_lock:
            index = self._index
            if index is None:
                index = self._build_index()
            live = set(index.live_table_ids())
            lake_ids = [table.table_id for table in self.lake]
            lake_set = set(lake_ids)
            for table_id in sorted(live - lake_set):
                index = index.without_table(table_id)
            for table_id in lake_ids:
                if table_id not in live:
                    table = self.lake.find(table_id)
                    if table is not None:
                        index = index.with_table(table)
            index = index.maybe_compacted(self.lake.get)
            self._index = index
            return index

    def _segment_tuples(
        self,
        segment: CorpusIndex,
        tuples: Sequence[Tuple[str, ...]],
        profile: ScoringProfile,
        selection: Optional[np.ndarray] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Fused scoring of one segment against a stack of query tuples.

        The multi-query kernel primitive: every tuple of every query in
        a micro-batch lands here *once*, stacked along a lane axis —
        one similarity-row stack, one bincount over lane-offset bins
        for all column-relevance matrices, and one shared gather /
        ``reduceat`` pass over the concatenated per-lane row blocks.
        Returns one ``(column, signal)`` pair per input tuple: the
        per-segment-table tuple scores as a float64 column plus the
        per-table positive-coordinate flag.

        Per-tuple outputs are bit-identical to the former one-query
        pass (and hence to the scalar engine to <= 1e-9): ``bincount``
        accumulates each bin in input encounter order and the row-major
        ravel keeps every lane's nnz entries in their original order
        inside their own bins; ``reduceat`` segments only ever span one
        (lane, table, position) block, so concatenating blocks across
        lanes changes no per-segment reduction; and the per-tuple
        residual-distance tails are evaluated per lane slice, never
        fused across tuples, so no summation order changes.

        ``selection`` (sorted table positions) restricts the pass to a
        candidate subset: only the selected tables' nnz blocks feed the
        column-relevance reduction, which leaves every other table with
        zero relevance and therefore no assignment, no gather rows, and
        no signal.  The returned columns still span the whole segment —
        positions outside ``selection`` hold unspecified filler (the
        zero-coordinate score), so callers must only read selected
        positions.  Selected positions are arithmetic-identical to the
        unrestricted pass: each table's nnz block is contiguous and
        selections are position-sorted, so every relevance bin
        accumulates the same terms in the same IEEE order.  Because a
        table's relevance bins only ever receive entries from its own
        nnz block, this also holds for any *union* of per-query
        selections — the batched candidate path unions selections for
        the shared pass and masks per query at read time.
        """
        index = segment
        if not tuples:
            return []
        # Whole-segment per-tuple columns are memoized on the segment:
        # scoring a tuple against an immutable segment is deterministic
        # given the engine configuration, which the token captures (the
        # informativeness object is swapped, never mutated, on corpus
        # mutations, so identity comparison is exact).  A hit skips the
        # full pass; a partial batch recurses on the misses only.
        # Candidate-restricted passes bypass the memo — their columns
        # hold selection-confined filler outside the shortlist.
        column_token = (
            self.informativeness,
            self.row_aggregation,
            self.tuple_semantics,
        )
        if selection is None:
            cached = [
                index.cached_tuple_column(query_tuple, column_token)
                for query_tuple in tuples
            ]
            if any(entry is not None for entry in cached):
                for t, entry in enumerate(cached):
                    if entry is not None:
                        # Touch the similarity-row memo so cache and
                        # profile accounting match a full pass.
                        index.tuple_rows(tuples[t], profile)
                missing = [
                    t for t, entry in enumerate(cached) if entry is None
                ]
                if missing:
                    computed = self._segment_tuples(
                        index,
                        [tuples[t] for t in missing],
                        profile,
                    )
                    for t, entry in zip(missing, computed):
                        cached[t] = entry
                return cached
        num_tables = len(index.table_ids)
        total_columns = index.total_columns
        table_rows = index.table_rows
        total_rows = int(index.row_offset[-1])
        row_agg_max = self.row_aggregation is RowAggregation.MAX
        per_row_semantics = self.tuple_semantics is TupleSemantics.PER_ROW
        if selection is None:
            nnz_gcolumns = index.nnz_gcolumns
            nnz_gids = index.nnz_gids
            nnz_gcounts = index.nnz_gcounts
        else:
            starts = index.nnz_toffset[selection]
            entries = _concat_ranges(
                starts, index.nnz_toffset[selection + 1] - starts
            )
            nnz_gcolumns = index.nnz_gcolumns[entries]
            nnz_gids = index.nnz_gids[entries]
            nnz_gcounts = index.nnz_gcounts[entries]
        widths = [len(query_tuple) for query_tuple in tuples]
        lane_offset = np.concatenate(
            ([0], np.cumsum(np.asarray(widths, dtype=np.int64)))
        )
        stack = int(lane_offset[-1])
        sims_list = [
            index.tuple_rows(query_tuple, profile) for query_tuple in tuples
        ]
        sims_stack = (
            sims_list[0] if len(sims_list) == 1
            else np.concatenate(sims_list, axis=0)
        )
        map_start = time.perf_counter()
        # Whole-segment assignments are memoized per tuple on the
        # (immutable) segment; only memo misses pay the relevance
        # bincount and the per-table assignment solve.  Lanes never mix
        # bins, so restricting the bincount to the miss lanes yields
        # each miss lane's exact relevance row.  Candidate-restricted
        # passes bypass the memo entirely: their relevance (and hence
        # gather set) is intentionally confined to the selection.
        if selection is None:
            assignments: List[Optional[np.ndarray]] = [
                index.cached_assignment(query_tuple)
                for query_tuple in tuples
            ]
        else:
            assignments = [None] * len(tuples)
        misses = [
            t for t in range(len(tuples)) if assignments[t] is None
        ]
        if misses:
            miss_lanes = np.concatenate([
                np.arange(lane_offset[t], lane_offset[t + 1])
                for t in misses
            ])
            miss_stack = int(miss_lanes.size)
            if nnz_gids.size and miss_stack:
                keys = (
                    nnz_gcolumns
                    + (np.arange(miss_stack) * total_columns)[:, None]
                )
                relevance_stack = np.bincount(
                    keys.ravel(),
                    weights=(sims_stack[miss_lanes][:, nnz_gids]
                             * nnz_gcounts).ravel(),
                    minlength=miss_stack * total_columns,
                ).reshape(miss_stack, total_columns)
            else:
                relevance_stack = np.zeros(
                    (miss_stack, total_columns), dtype=np.float64
                )
            row = 0
            for t in misses:
                assignment = self._batched_assignments(
                    index, relevance_stack[row:row + widths[t]], widths[t]
                )
                row += widths[t]
                assignments[t] = assignment
                if selection is None:
                    index.store_assignment(tuples[t], assignment)
        profile.mapping_seconds += time.perf_counter() - map_start
        # One gather serves every (tuple, table, assigned position):
        # the column-major flat_ids slice of each assigned column,
        # pushed through its lane's similarity row.  Per-tuple blocks
        # stay contiguous so the tails below slice them back out.
        parts_table: List[np.ndarray] = []
        parts_pos: List[np.ndarray] = []
        parts_lane: List[np.ndarray] = []
        parts_cols: List[np.ndarray] = []
        sel_counts: List[int] = []
        for t, assignment in enumerate(assignments):
            active = (assignment >= 0) & (table_rows > 0)[:, None]
            sel_table, sel_pos = np.nonzero(active)
            parts_table.append(sel_table)
            parts_pos.append(sel_pos)
            parts_lane.append(sel_pos + int(lane_offset[t]))
            parts_cols.append(
                index.col_offset[sel_table] + assignment[sel_table, sel_pos]
            )
            sel_counts.append(int(sel_table.size))
        sel_table_all = np.concatenate(parts_table)
        sel_pos_all = np.concatenate(parts_pos)
        sel_lane_all = np.concatenate(parts_lane)
        global_cols = np.concatenate(parts_cols)
        lengths = table_rows[sel_table_all]
        bounds = np.cumsum(lengths)
        total = int(bounds[-1]) if lengths.size else 0
        seg_starts = bounds - lengths
        need_max = per_row_semantics or row_agg_max
        if total:
            within = np.arange(total) - np.repeat(seg_starts, lengths)
            ids = index.flat_ids[
                np.repeat(index.col_start[global_cols], lengths) + within
            ]
            lanes = np.repeat(sel_lane_all, lengths)
            linked = ids >= 0
            gathered = np.where(
                linked,
                sims_stack[lanes, np.where(linked, ids, 0)],
                0.0,
            )
            if need_max:
                seg_max = np.maximum.reduceat(gathered, seg_starts)
            if not per_row_semantics and not row_agg_max:
                seg_avg = np.add.reduceat(gathered, seg_starts) / lengths
        sel_cuts = np.concatenate(
            ([0], np.cumsum(np.asarray(sel_counts, dtype=np.int64)))
        )
        populated = np.flatnonzero(table_rows > 0)
        outputs: List[Tuple[np.ndarray, np.ndarray]] = []
        for t, query_tuple in enumerate(tuples):
            width = widths[t]
            a = int(sel_cuts[t])
            b = int(sel_cuts[t + 1])
            elem_lo = int(bounds[a - 1]) if a > 0 else 0
            elem_hi = int(bounds[b - 1]) if b > a else elem_lo
            weights = self._tuple_weights(query_tuple)
            if per_row_semantics:
                scores = np.zeros((total_rows, width), dtype=np.float64)
                signal = np.zeros(num_tables, dtype=bool)
                if b > a:
                    sel_table_t = sel_table_all[a:b]
                    lengths_t = lengths[a:b]
                    scores[
                        np.repeat(index.row_offset[sel_table_t], lengths_t)
                        + within[elem_lo:elem_hi],
                        lanes[elem_lo:elem_hi] - int(lane_offset[t]),
                    ] = gathered[elem_lo:elem_hi]
                    acc = np.zeros(num_tables, dtype=np.float64)
                    np.maximum.at(acc, sel_table_t, seg_max[a:b])
                    signal = acc > 0.0
                residual = 1.0 - np.minimum(scores, 1.0)
                per_row = 1.0 / (
                    np.sqrt((residual * residual) @ weights) + 1.0
                )
                column = np.zeros(num_tables, dtype=np.float64)
                if populated.size:
                    offsets = index.row_offset[populated]
                    if row_agg_max:
                        column[populated] = np.maximum.reduceat(
                            per_row, offsets
                        )
                    else:
                        column[populated] = (
                            np.add.reduceat(per_row, offsets)
                            / table_rows[populated]
                        )
                outputs.append((column, signal))
                continue
            coordinates = np.zeros((num_tables, width), dtype=np.float64)
            if b > a:
                values = seg_max[a:b] if row_agg_max else seg_avg[a:b]
                coordinates[sel_table_all[a:b], sel_pos_all[a:b]] = values
            signal = coordinates.max(axis=1) > 0.0
            residual = 1.0 - np.minimum(coordinates, 1.0)
            distances = np.sqrt((residual * residual) @ weights)
            outputs.append((1.0 / (distances + 1.0), signal))
        if selection is None:
            for query_tuple, (column, signal) in zip(tuples, outputs):
                index.store_tuple_column(
                    query_tuple, column_token, column, signal
                )
        return outputs

    def _segment_batch(
        self,
        segment: CorpusIndex,
        query: Query,
        profile: ScoringProfile,
        selection: Optional[np.ndarray] = None,
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Fused scoring of one segment against every tuple of one query.

        Thin wrapper over :meth:`_segment_tuples` — the single-query
        and multi-query paths share one kernel implementation, so the
        batched serve path is structurally bit-identical to sequential
        :meth:`search`.  Returns ``(tuple_columns, any_signal)``: per
        query tuple, the per-segment-table tuple scores as one float64
        column, plus the OR-ed per-table relevance flag.
        """
        per_tuple = self._segment_tuples(
            segment, query.tuples, profile, selection=selection
        )
        any_signal = np.zeros(len(segment.table_ids), dtype=bool)
        tuple_columns: List[np.ndarray] = []
        for column, signal in per_tuple:
            any_signal |= signal
            tuple_columns.append(column)
        return tuple_columns, any_signal

    def _search_batch(self, query: Query) -> Optional[List[TableScore]]:
        """Score the whole lake, one fused pass per (segment, tuple).

        Returns ``None`` when the index cannot be made to mirror the
        lake even after incremental reconciliation (the caller then
        takes the per-table path, which copes table by table).
        Otherwise returns exactly what per-table :meth:`score_table`
        calls would, in lake order, with the same profile accounting.
        Tombstoned copies inside segments are scored by the fused pass
        but skipped at assembly (the owner map only resolves live
        tables), so results and tie-breaks match a fresh full compile.
        """
        index = self.index()
        lake_ids = [table.table_id for table in self.lake]
        if not index.mirrors(lake_ids):
            index = self._reconcile_index()
            if not index.mirrors(lake_ids):
                return None
        profile = self.profile
        start = time.perf_counter()
        if not lake_ids:
            return []
        per_segment = [
            self._segment_batch(segment, query, profile)
            for segment in index.segments
        ]
        results: List[TableScore] = []
        drop = self.drop_irrelevant
        entities_in_table = self.mapping.entities_in_table
        for table_id in lake_ids:
            if drop and not entities_in_table(table_id):
                continue
            seg_index, position = index.locate_position(table_id)
            tuple_columns, any_signal = per_segment[seg_index]
            tuple_scores = [
                float(column[position]) for column in tuple_columns
            ]
            score = self.query_aggregation.aggregate(tuple_scores)
            relevant = bool(any_signal[position]) or not drop
            if not relevant:
                score = 0.0
            results.append(
                TableScore(table_id, score, tuple_scores, relevant)
            )
            profile.tables_scored += 1
        profile.total_seconds += time.perf_counter() - start
        return results

    def _candidate_bounds(
        self,
        segment: CorpusIndex,
        query: Query,
        positions: np.ndarray,
        profile: ScoringProfile,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized SemRel upper bounds for selected segment tables.

        The batched analogue of
        :func:`repro.core.topk.table_score_upper_bound`: per query
        entity, the best similarity any entity mentioned in the table
        could provide (clamped at zero — an unassigned position scores
        zero, never negative), pushed through the same
        residual-distance formula as the kernel.  Dropping the
        distinct-column and injectivity constraints only raises the
        value, so ``bound >= exact`` up to the reduction-order noise
        :data:`BOUND_SLACK` absorbs.

        Returns ``(bounds, signal)`` aligned with ``positions``:
        ``signal`` is whether any coordinate is positive — under
        ``drop_irrelevant`` a signal-free table can never be relevant,
        so it can be dropped before scoring.
        """
        index = segment
        starts = index.nnz_toffset[positions]
        lengths = index.nnz_toffset[positions + 1] - starts
        entries = _concat_ranges(starts, lengths)
        ids = index.nnz_gids[entries]
        offsets = np.concatenate(([0], np.cumsum(lengths)))[:-1]
        nonempty = np.flatnonzero(lengths > 0)
        tuple_bounds: List[np.ndarray] = []
        signal = np.zeros(len(positions), dtype=bool)
        for query_tuple in query:
            width = len(query_tuple)
            sims = index.tuple_rows(query_tuple, profile)
            best = np.zeros((width, len(positions)), dtype=np.float64)
            if ids.size and nonempty.size:
                best[:, nonempty] = np.maximum.reduceat(
                    sims[:, ids], offsets[nonempty], axis=1
                )
            np.maximum(best, 0.0, out=best)
            signal |= best.max(axis=0) > 0.0
            weights = self._tuple_weights(query_tuple)
            residual = 1.0 - np.minimum(best, 1.0)
            distances = np.sqrt(weights @ (residual * residual))
            tuple_bounds.append(1.0 / (distances + 1.0))
        if not tuple_bounds:
            return np.zeros(len(positions), dtype=np.float64), signal
        stacked = np.stack(tuple_bounds, axis=0)
        if self.query_aggregation is QueryAggregation.MAX:
            bounds = stacked.max(axis=0)
        else:
            bounds = stacked.mean(axis=0)
        return bounds, signal

    def search_candidates(
        self,
        query: Query,
        candidates: Iterable[str],
        k: Optional[int] = None,
        stats=None,
    ) -> ResultSet:
        """Fused scoring of an explicit candidate set (prefilter path).

        Same results as the inherited ``search(query, k=k,
        candidates=candidates)`` — deduplication, lake membership, the
        drop-irrelevant rule, and the ``(-score, table_id)`` ranking
        all match — but evaluated as restricted batched passes over
        the candidates' nnz blocks instead of one per-table kernel
        call each.  When ``k`` is given, shortlisted tables are scored
        in descending bound order and the scan stops once no remaining
        bound can displace the current k-th best score (the
        :mod:`repro.core.topk` threshold algorithm, vectorized).

        ``stats`` (a :class:`~repro.core.kernel.prefilter.
        PrefilterStats`) receives the shortlist size, the number of
        tables actually scored, and whether the cut-off fired.
        """
        ordered = [
            table_id
            for table_id in dict.fromkeys(candidates)
            if table_id in self.lake
        ]
        if k is not None and k < 1:
            if stats is not None:
                stats.record_scoring(0, 0, False)
            return ResultSet([])
        index = self.index()
        lake_ids = [table.table_id for table in self.lake]
        if not index.mirrors(lake_ids):
            index = self._reconcile_index()
            if not index.mirrors(lake_ids):
                # The kernel cannot cover this lake; the inherited
                # per-table loop copes table by table.
                if stats is not None:
                    stats.record_scoring(len(ordered), len(ordered), False)
                return super().search(query, k=k, candidates=ordered)
        drop = self.drop_irrelevant
        if drop:
            entities_in_table = self.mapping.entities_in_table
            ordered = [
                table_id for table_id in ordered
                if entities_in_table(table_id)
            ]
        profile = self.profile
        start = time.perf_counter()
        # Group candidates by owning segment; position-sorted
        # selections keep restricted reductions in corpus order.
        by_segment: Dict[int, List[Tuple[int, str]]] = {}
        for table_id in ordered:
            seg_index, position = index.locate_position(table_id)
            by_segment.setdefault(seg_index, []).append(
                (position, table_id)
            )
        bound_of: Dict[str, float] = {}
        signal_of: Dict[str, bool] = {}
        for seg_index, members in by_segment.items():
            members.sort()
            positions = np.asarray(
                [position for position, _ in members], dtype=np.int64
            )
            bounds, signal = self._candidate_bounds(
                index.segments[seg_index], query, positions, profile
            )
            for (position, table_id), bound, has_signal in zip(
                members, bounds.tolist(), signal.tolist()
            ):
                bound_of[table_id] = bound
                signal_of[table_id] = bool(has_signal)
        # Under drop_irrelevant a signal-free table is provably
        # irrelevant (no entity similarity is positive), so the
        # shortlist keeps signal-carrying candidates only.
        if drop:
            shortlist = [tid for tid in ordered if signal_of[tid]]
        else:
            shortlist = list(ordered)
        shortlist.sort(key=lambda tid: (-bound_of[tid], tid))
        chunk_size = (
            len(shortlist) if k is None
            else max(MIN_PRUNE_CHUNK, 2 * k)
        )
        results: List[ScoredTable] = []
        heap: List[TopKEntry] = []
        scored = 0
        terminated = False
        cursor = 0
        while cursor < len(shortlist):
            if (
                k is not None
                and len(heap) == k
                and bound_of[shortlist[cursor]] + BOUND_SLACK
                < heap[0].score
            ):
                terminated = True
                break
            chunk = shortlist[cursor:cursor + chunk_size]
            cursor += len(chunk)
            chunk_segments: Dict[int, List[int]] = {}
            placement: Dict[str, Tuple[int, int]] = {}
            for table_id in chunk:
                seg_index, position = index.locate_position(table_id)
                chunk_segments.setdefault(seg_index, []).append(position)
                placement[table_id] = (seg_index, position)
            outputs = {
                seg_index: self._segment_batch(
                    index.segments[seg_index],
                    query,
                    profile,
                    selection=np.asarray(sorted(positions),
                                         dtype=np.int64),
                )
                for seg_index, positions in chunk_segments.items()
            }
            for table_id in chunk:
                seg_index, position = placement[table_id]
                tuple_columns, any_signal = outputs[seg_index]
                tuple_scores = [
                    float(column[position]) for column in tuple_columns
                ]
                score = self.query_aggregation.aggregate(tuple_scores)
                relevant = bool(any_signal[position]) or not drop
                scored += 1
                profile.tables_scored += 1
                if not relevant or score <= 0.0:
                    continue
                results.append(ScoredTable(score, table_id))
                if k is not None:
                    entry = TopKEntry(score, table_id)
                    if len(heap) < k:
                        heapq.heappush(heap, entry)
                    elif heap[0] < entry:
                        heapq.heapreplace(heap, entry)
        profile.total_seconds += time.perf_counter() - start
        if stats is not None:
            stats.record_scoring(len(shortlist), scored, terminated)
        result_set = ResultSet(results)
        if k is not None:
            result_set = result_set.top(k)
        return result_set

    def search(
        self,
        query: Query,
        k: Optional[int] = None,
        candidates: Optional[Iterable[str]] = None,
    ):
        """Batched whole-lake ranking (same results as the scalar loop).

        Candidate-restricted searches (the LSH prefilter path) go
        through :meth:`search_candidates`, which fuses the restriction
        into the batched kernel; lakes the index cannot mirror keep
        the inherited per-table loop, which itself scores through the
        kernel.
        """
        if candidates is not None:
            return self.search_candidates(query, candidates, k=k)
        outcomes = self._search_batch(query)
        if outcomes is None:
            return super().search(query, k=k)
        scored = [
            ScoredTable(outcome.score, outcome.table_id)
            for outcome in outcomes
            if outcome.relevant and outcome.score > 0.0
        ]
        results = ResultSet(scored)
        if k is not None:
            results = results.top(k)
        return results

    def search_batch(
        self,
        queries: Sequence[Query],
        k: Optional[int] = None,
        candidates: Optional[Sequence[Optional[Iterable[str]]]] = None,
        stats=None,
        profile: Optional[ScoringProfile] = None,
        batch_stats=None,
    ) -> List[ResultSet]:
        """Rank the lake for a whole micro-batch in one fused pass.

        Every query tuple in the batch is stacked into a single kernel
        pass per segment (:meth:`_segment_tuples`): one stacked
        similarity matmul/popcount, one shared bincount and gather,
        then per-query aggregation over the per-tuple score columns.
        Results are bit-identical per query to sequential
        :meth:`search` — same scores, same ``(-score, table_id)``
        tie-breaks — in both exact mode (``candidates[i] is None``) and
        prefilter mode (per-query candidate lists; their selections are
        unioned for the shared pass and masked per query at read time,
        which is arithmetic-identical because every table's relevance
        bins only ever accumulate its own nnz block).

        Identical queries (same tuples, same canonical candidate list)
        are scored once and fan the shared :class:`ResultSet` out to
        every duplicate slot.

        Parameters
        ----------
        queries:
            The micro-batch, in request order.
        k:
            Optional shared cut-off.
        candidates:
            Optional per-query candidate restrictions aligned with
            ``queries`` (``None`` entries search the whole lake).
        stats:
            Optional :class:`~repro.core.kernel.prefilter.
            PrefilterStats` fed one scoring record per candidate-
            restricted query (the batched pass scores the full
            shortlist — no early termination — so ``scored ==
            shortlisted`` and the cut-off never fires).
        profile:
            Scoring profile to charge (defaults to the engine's own);
            parallel shards pass their private merge-later profiles.
        batch_stats:
            Optional :class:`~repro.core.kernel.batchstats.BatchStats`
            recording one batched kernel pass covering ``len(queries)``
            queries (``len(queries) - unique`` of them deduplicated).
        """
        queries = list(queries)
        if candidates is None:
            cand_lists: List[Optional[List[str]]] = [None] * len(queries)
        else:
            cand_lists = [
                None if cands is None else list(cands)
                for cands in candidates
            ]
        if len(cand_lists) != len(queries):
            raise SearchError(
                "candidates must align with queries: "
                f"{len(cand_lists)} != {len(queries)}"
            )
        if not queries:
            return []
        if profile is None:
            profile = self.profile
        # Canonical dedup: identical (tuples, candidate list) jobs are
        # scored once; fanout maps every input slot to its job.
        job_of: Dict[Tuple, int] = {}
        jobs: List[Tuple[Query, Optional[List[str]]]] = []
        fanout: List[int] = []
        for query, cands in zip(queries, cand_lists):
            key = (
                query.tuples,
                None if cands is None else tuple(dict.fromkeys(cands)),
            )
            slot = job_of.get(key)
            if slot is None:
                slot = len(jobs)
                job_of[key] = slot
                jobs.append((query, cands))
            fanout.append(slot)
        if batch_stats is not None:
            batch_stats.record_batched(len(queries), len(jobs))
        if k is not None and k < 1:
            if stats is not None:
                for _, cands in jobs:
                    if cands is not None:
                        stats.record_scoring(0, 0, False)
            return [ResultSet([]) for _ in fanout]
        index = self.index()
        lake_ids = [table.table_id for table in self.lake]
        if not index.mirrors(lake_ids):
            index = self._reconcile_index()
            if not index.mirrors(lake_ids):
                # The kernel cannot cover this lake; fall back to the
                # sequential per-query path, which copes table by table.
                looped: List[ResultSet] = []
                for query, cands in jobs:
                    if cands is None:
                        looped.append(self.search(query, k=k))
                    else:
                        looped.append(
                            self.search_candidates(
                                query, cands, k=k, stats=stats
                            )
                        )
                return [looped[slot] for slot in fanout]
        start = time.perf_counter()
        drop = self.drop_irrelevant
        entities_in_table = self.mapping.entities_in_table
        # Per-job candidate orders: dedup + lake membership (the
        # sequential contract), then the drop-irrelevant filter.
        ordered_of: List[Optional[List[str]]] = []
        for _, cands in jobs:
            if cands is None:
                ordered_of.append(None)
                continue
            ordered = [
                table_id for table_id in dict.fromkeys(cands)
                if table_id in self.lake
            ]
            if drop:
                ordered = [
                    table_id for table_id in ordered
                    if entities_in_table(table_id)
                ]
            ordered_of.append(ordered)
        # Dedup query tuples across jobs: each distinct tuple is one
        # kernel lane regardless of how many queries carry it.
        tuple_slot: Dict[Tuple[str, ...], int] = {}
        unique_tuples: List[Tuple[str, ...]] = []
        job_tuples: List[List[int]] = []
        for query, _ in jobs:
            indices: List[int] = []
            for query_tuple in query.tuples:
                slot = tuple_slot.get(query_tuple)
                if slot is None:
                    slot = len(unique_tuples)
                    tuple_slot[query_tuple] = slot
                    unique_tuples.append(query_tuple)
                indices.append(slot)
            job_tuples.append(indices)
        whole_lake = any(ordered is None for ordered in ordered_of)
        segments = index.segments
        num_segments = len(segments)
        if whole_lake:
            selections: List[Optional[np.ndarray]] = [None] * num_segments
        else:
            per_seg_positions: List[set] = [set() for _ in range(num_segments)]
            for ordered in ordered_of:
                for table_id in ordered:
                    seg_index, position = index.locate_position(table_id)
                    per_seg_positions[seg_index].add(position)
            selections = [
                np.asarray(sorted(positions), dtype=np.int64)
                if positions else None
                for positions in per_seg_positions
            ]
        per_segment: List[Optional[List[Tuple[np.ndarray, np.ndarray]]]] = []
        for seg_index, segment in enumerate(segments):
            if not whole_lake and selections[seg_index] is None:
                # No job reads this segment; skip its pass entirely.
                per_segment.append(None)
                continue
            per_segment.append(
                self._segment_tuples(
                    segment, unique_tuples, profile,
                    selection=selections[seg_index],
                )
            )
        # Flatten per-segment columns into lake-wide arrays so per-job
        # reads are single fancy-index gathers.
        seg_sizes = [len(segment.table_ids) for segment in segments]
        seg_base = np.concatenate(
            ([0], np.cumsum(np.asarray(seg_sizes, dtype=np.int64)))
        )
        flat_total = int(seg_base[-1])
        flat_columns: List[np.ndarray] = []
        flat_signals: List[np.ndarray] = []
        for t in range(len(unique_tuples)):
            column = np.zeros(flat_total, dtype=np.float64)
            signal = np.zeros(flat_total, dtype=bool)
            for seg_index, outputs in enumerate(per_segment):
                if outputs is None:
                    continue
                lo = int(seg_base[seg_index])
                hi = int(seg_base[seg_index + 1])
                column[lo:hi] = outputs[t][0]
                signal[lo:hi] = outputs[t][1]
            flat_columns.append(column)
            flat_signals.append(signal)
        flat_of: Dict[str, int] = {}

        def flat_position(table_id: str) -> int:
            position = flat_of.get(table_id)
            if position is None:
                seg_index, seg_position = index.locate_position(table_id)
                position = int(seg_base[seg_index]) + seg_position
                flat_of[table_id] = position
            return position

        assembled_ids: List[str] = []
        assembled_positions: Optional[np.ndarray] = None
        if whole_lake:
            # The lake-order assembly skeleton is shared by every
            # whole-lake job in the batch — built once, not per query.
            positions: List[int] = []
            for table_id in lake_ids:
                if drop and not entities_in_table(table_id):
                    continue
                assembled_ids.append(table_id)
                positions.append(flat_position(table_id))
            assembled_positions = np.asarray(positions, dtype=np.int64)
        assembled_ids_arr = (
            np.asarray(assembled_ids) if assembled_ids else None
        )
        aggregation_max = self.query_aggregation is QueryAggregation.MAX
        job_results: List[ResultSet] = []
        for job_index in range(len(jobs)):
            indices = job_tuples[job_index]
            ordered = ordered_of[job_index]
            if ordered is None:
                ids_list = assembled_ids
                positions = assembled_positions
            else:
                if not ordered:
                    if stats is not None:
                        stats.record_scoring(0, 0, False)
                    job_results.append(ResultSet([]))
                    continue
                ids_list = ordered
                positions = np.asarray(
                    [flat_position(table_id) for table_id in ordered],
                    dtype=np.int64,
                )
            # Per-query aggregation over the shared tuple columns, in
            # the query's own tuple order — numpy elementwise max /
            # zero-seeded sum match Python max() / sum() bit for bit.
            if aggregation_max:
                score = flat_columns[indices[0]][positions].copy()
                for tuple_index in indices[1:]:
                    np.maximum(
                        score, flat_columns[tuple_index][positions],
                        out=score,
                    )
            else:
                score = np.zeros(len(ids_list), dtype=np.float64)
                for tuple_index in indices:
                    score += flat_columns[tuple_index][positions]
                score /= len(indices)
            if drop:
                signal = np.zeros(len(ids_list), dtype=bool)
                for tuple_index in indices:
                    signal |= flat_signals[tuple_index][positions]
                keep = signal & (score > 0.0)
            else:
                keep = score > 0.0
            kept = np.flatnonzero(keep)
            if k is not None and kept.size > k:
                # Per-query top-k without materializing the full
                # ranking: ascending lexsort on (-score, table_id) is
                # exactly ResultSet's sort key — ids are unique and
                # numpy's unicode comparison orders like Python's — so
                # the first k entries equal ``ResultSet(all).top(k)``
                # bit for bit.
                if ordered is None and assembled_ids_arr is not None:
                    kept_ids = assembled_ids_arr[kept]
                else:
                    kept_ids = np.asarray(ids_list)[kept]
                kept_scores_arr = score[kept]
                order = np.lexsort((kept_ids, -kept_scores_arr))[:k]
                result = ResultSet(
                    ScoredTable(
                        float(kept_scores_arr[position]),
                        str(kept_ids[position]),
                    )
                    for position in order
                )
            else:
                kept_scores = score[kept].tolist()
                result = ResultSet([
                    ScoredTable(kept_scores[i], ids_list[int(position)])
                    for i, position in enumerate(kept)
                ])
                if k is not None:
                    result = result.top(k)
            profile.tables_scored += len(ids_list)
            if ordered is not None and stats is not None:
                stats.record_scoring(len(ids_list), len(ids_list), False)
            job_results.append(result)
        profile.total_seconds += time.perf_counter() - start
        return [job_results[slot] for slot in fanout]

    def search_many(
        self,
        queries: Dict[str, Query],
        k: Optional[int] = None,
        candidates: Optional[Dict[str, Iterable[str]]] = None,
    ) -> Dict[str, ResultSet]:
        """Batched :meth:`search_many`: one fused pass for the batch.

        Same results as the inherited per-query loop (which
        :meth:`search_batch` is bit-identical to), but the whole batch
        rides one stacked kernel pass per segment.
        """
        ordered_ids = list(queries.keys())
        batch = [queries[query_id] for query_id in ordered_ids]
        restrictions: Optional[List[Optional[Iterable[str]]]] = None
        if candidates is not None:
            restrictions = [
                candidates.get(query_id) for query_id in ordered_ids
            ]
        results = self.search_batch(batch, k=k, candidates=restrictions)
        return dict(zip(ordered_ids, results))

    def score_table(
        self,
        query: Query,
        table: Table,
        profile: Optional[ScoringProfile] = None,
    ) -> TableScore:
        """Compute SemRel(Q, T) through the batched kernel.

        Same contract (and, to <= 1e-9, same scores) as the scalar
        :meth:`TableSearchEngine.score_table`.
        """
        if profile is None:
            profile = self.profile
        index = self.index()
        located = index.locate(table.table_id)
        if located is None:
            # The lake gained this table without an invalidation; one
            # incremental reconciliation picks it up, and anything
            # still unknown (a table outside the lake entirely) scores
            # through the scalar path.
            index = self._reconcile_index()
            located = index.locate(table.table_id)
            if located is None:
                return super().score_table(query, table, profile)
        segment, view = located
        start = time.perf_counter()
        row_agg_max = self.row_aggregation is RowAggregation.MAX
        per_row_semantics = self.tuple_semantics is TupleSemantics.PER_ROW
        num_rows = view.num_rows
        tuple_scores: List[float] = []
        any_signal = False
        for query_tuple in query:
            width = len(query_tuple)
            columns = view.num_columns
            sims = segment.tuple_rows(query_tuple, profile)
            # --- column mapping (Section 5.1): one fused bincount
            # builds the whole relevance matrix the scalar engine
            # assembles cell by cell.  Offsetting each tuple position
            # into its own bin range keeps one bincount for all
            # positions; within a bin the raveled row-major order
            # preserves the per-column nnz order, so every sum
            # accumulates in the scalar engine's IEEE order.
            map_start = time.perf_counter()
            if view.nnz_ids.size:
                keys = (
                    view.nnz_columns
                    + (np.arange(width) * columns)[:, None]
                )
                relevance = np.bincount(
                    keys.ravel(),
                    weights=(sims[:, view.nnz_ids]
                             * view.nnz_counts).ravel(),
                    minlength=width * columns,
                ).reshape(width, columns)
            else:
                relevance = np.zeros((width, columns), dtype=np.float64)
            assignment = self._fast_assignment(relevance)
            if assignment is None:
                assignment, _ = max_assignment(relevance)
                assignment = np.asarray(assignment)
            profile.mapping_seconds += time.perf_counter() - map_start
            # --- row scores: gather every assigned column's entity ids
            # through its query entity's similarity row in one fancy
            # index.
            scores = np.zeros((num_rows, width), dtype=np.float64)
            if num_rows:
                active = np.flatnonzero(assignment >= 0)
                if active.size:
                    ids = view.ids[:, assignment[active]]
                    linked = ids >= 0
                    gathered = sims[
                        active[None, :], np.where(linked, ids, 0)
                    ]
                    scores[:, active] = np.where(linked, gathered, 0.0)
            weights = self._tuple_weights(query_tuple)
            if per_row_semantics:
                # Equation 1: every row is its own tuple-to-tuple
                # SemRel, then rows aggregate.
                if num_rows:
                    if float(scores.max()) > 0.0:
                        any_signal = True
                    residual = 1.0 - np.minimum(scores, 1.0)
                    distances = np.sqrt((residual * residual) @ weights)
                    per_row = 1.0 / (distances + 1.0)
                    tuple_scores.append(
                        float(per_row.max()) if row_agg_max
                        else float(per_row.sum() / num_rows)
                    )
                else:
                    tuple_scores.append(0.0)
                continue
            # Algorithm 1 line 13-14: aggregate per entity, then one
            # weighted distance from the ideal point.
            if num_rows:
                coordinates = (
                    scores.max(axis=0) if row_agg_max
                    else scores.sum(axis=0) / num_rows
                )
            else:
                coordinates = np.zeros(width, dtype=np.float64)
            if float(coordinates.max()) > 0.0:
                any_signal = True
            residual = 1.0 - np.minimum(coordinates, 1.0)
            distance = math.sqrt(float((residual * residual) @ weights))
            tuple_scores.append(1.0 / (distance + 1.0))
        score = self.query_aggregation.aggregate(tuple_scores)
        relevant = any_signal or not self.drop_irrelevant
        if not relevant:
            score = 0.0
        profile.total_seconds += time.perf_counter() - start
        profile.tables_scored += 1
        return TableScore(table.table_id, score, tuple_scores, relevant)


#: Engine-kind registry used by the system facade and the CLI.
ENGINE_KINDS = ("scalar", "vectorized")


def engine_class(kind: str):
    """Map an ``--engine`` value to the engine class implementing it."""
    from repro.exceptions import ConfigurationError

    if kind == "scalar":
        return TableSearchEngine
    if kind == "vectorized":
        return VectorizedTableSearchEngine
    raise ConfigurationError(
        f"unknown engine kind {kind!r}: use one of {ENGINE_KINDS}"
    )


__all__ = [
    "ENGINE_KINDS",
    "VectorizedTableSearchEngine",
    "engine_class",
    "DEFAULT_ROW_CACHE_SIZE",
    "DEFAULT_SIMILARITY_CACHE_SIZE",
    "DEFAULT_VIEW_CACHE_SIZE",
]

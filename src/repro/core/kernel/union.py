"""Vectorized union search: a compiled column-concept index + engine.

The scalar :class:`~repro.baselines.union_search.UnionTableSearch`
scores one table at a time: re-encode the query columns, build a dense
query-column x table-column similarity matrix in Python lists, and run
the Hungarian solver per table.  This module compiles the lake once
into a :class:`UnionCorpusIndex` — per-column dominant-type bitmaps for
the SANTOS-like ``types`` encoder, stacked mean column embeddings for
the Starmie-like ``embeddings`` encoder, plus the same table->column
``reduceat`` layout the entity kernel uses — and scores the *whole
lake* per query with one popcount Jaccard pass (types) or one matmul
cosine pass (embeddings), followed by a vectorized column assignment:
exact enumerated assignment for tables with at most ``MAX_ENUM_ROWS``
positively-scoring query columns (with the :data:`ASSIGNMENT_MARGIN`
near-tie check), Hungarian fallback otherwise.

Parity contract: scores match the scalar baseline to <= 1e-9 and the
ranking is identical including ``(-score, table_id)`` tie-breaks.  For
the ``types`` encoder every operation is integer popcount arithmetic
followed by one int/int division, so scores are bit-identical; for
``embeddings`` the BLAS matmul may round the last bits differently
from the scalar dot product (~1e-16, far inside the budget).
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.union_search import _query_columns, dominant_types
from repro.core.assignment import max_assignment
from repro.core.kernel.engine import (
    ASSIGNMENT_MARGIN,
    _concat_ranges,
)
from repro.core.kernel.index import _popcount
from repro.core.query import Query
from repro.core.result import ResultSet
from repro.datalake.lake import DataLake
from repro.embeddings.store import EmbeddingStore
from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph
from repro.linking.mapping import EntityMapping

UNION_ENCODERS = ("types", "embeddings")

#: Exhaustive assignment enumeration covers groups with at most this
#: many positively-scoring query rows; beyond it (or past the element
#: budget) tables fall back to the scalar Hungarian solver.
MAX_ENUM_ROWS = 5

#: Upper bound on enumerated option-tensor elements per chunk
#: (float64: ~32 MB).  Groups are chunked to stay inside it.
ENUM_BUDGET = 4_000_000

#: Per-table enumeration ceiling: beyond this many option-tensor cells
#: a single Hungarian call on the table's block is cheaper than its
#: slice of the tensor, so the table falls back to the solver.
MAX_ENUM_ELEMENTS = 262_144

#: Conflict masks for the n-dimensional enumeration, keyed by
#: (rows, options): True where two non-null dimensions picked the same
#: real column.
_WIDE_CLASH_MASKS: Dict[Tuple[int, int], np.ndarray] = {}


def _wide_clash_mask(rows: int, options: int) -> np.ndarray:
    key = (rows, options)
    mask = _WIDE_CLASH_MASKS.get(key)
    if mask is None:
        if len(_WIDE_CLASH_MASKS) >= 32:
            _WIDE_CLASH_MASKS.clear()
        grids = np.indices((options,) * rows)
        null = options - 1
        mask = np.zeros((options,) * rows, dtype=bool)
        for i in range(rows):
            for j in range(i + 1, rows):
                mask |= (grids[i] == grids[j]) & (grids[i] != null)
        _WIDE_CLASH_MASKS[key] = mask
    return mask


class UnionCorpusIndex:
    """Read-only columnar encoding of every lake column.

    Layout (shared by both encoders)
    --------------------------------
    ``table_ids[t]``      table id of corpus position ``t``
    ``table_columns[t]``  column count of table ``t`` (int64)
    ``col_offset``        ``len == num_tables + 1`` prefix sums; table
                          ``t`` owns global columns
                          ``[col_offset[t], col_offset[t+1])``

    ``types`` encoder: ``bitmaps`` is ``(total_columns, words)`` uint64
    with one bit per interned dominant type, ``sizes`` the per-column
    type-set cardinality — a query column scores the whole corpus with
    one ``popcount(bitmaps & query_bits)`` pass.

    ``embeddings`` encoder: ``vectors`` is ``(total_columns, dim)``
    float64 mean column embeddings (zero rows where a column has no
    linked entities), ``norms`` their L2 norms, ``valid`` the
    non-null mask — a query column scores the corpus with one matmul.
    """

    def __init__(
        self,
        column_encoder: str,
        table_ids: List[str],
        table_columns: np.ndarray,
        bit_of: Optional[Dict[str, int]] = None,
        bitmaps: Optional[np.ndarray] = None,
        sizes: Optional[np.ndarray] = None,
        vectors: Optional[np.ndarray] = None,
        norms: Optional[np.ndarray] = None,
        valid: Optional[np.ndarray] = None,
    ):
        self.column_encoder = column_encoder
        self.table_ids = table_ids
        self.ids_array = np.asarray(table_ids, dtype=np.str_)
        self.table_columns = table_columns
        self.col_offset = np.zeros(len(table_ids) + 1, dtype=np.int64)
        np.cumsum(table_columns, out=self.col_offset[1:])
        self.position_of = {tid: t for t, tid in enumerate(table_ids)}
        self.bit_of = bit_of
        self.bitmaps = bitmaps
        self.sizes = sizes
        self.vectors = vectors
        self.norms = norms
        self.valid = valid

    @property
    def num_tables(self) -> int:
        return len(self.table_ids)

    @property
    def total_columns(self) -> int:
        return int(self.col_offset[-1])

    def nbytes(self) -> int:
        total = 0
        for array in (self.bitmaps, self.sizes, self.vectors,
                      self.norms, self.valid):
            if array is not None:
                total += int(array.nbytes)
        return total


def compile_union_index(
    lake: DataLake,
    mapping: EntityMapping,
    graph: Optional[KnowledgeGraph] = None,
    store: Optional[EmbeddingStore] = None,
    column_encoder: str = "types",
) -> UnionCorpusIndex:
    """Encode every lake column once, in corpus order."""
    table_ids: List[str] = []
    widths: List[int] = []
    type_sets: List[FrozenSet[str]] = []
    vector_list: List[Optional[np.ndarray]] = []
    for table in lake:
        table_ids.append(table.table_id)
        widths.append(table.num_columns)
        for column in range(table.num_columns):
            uris = mapping.entities_in_column(table.table_id, column)
            if column_encoder == "types":
                type_sets.append(dominant_types(graph, uris))
            else:
                vector_list.append(
                    store.mean_vector(uris) if uris else None
                )
    table_columns = np.asarray(widths, dtype=np.int64)
    if column_encoder == "types":
        bit_of: Dict[str, int] = {}
        for types in type_sets:
            for name in sorted(types):
                if name not in bit_of:
                    bit_of[name] = len(bit_of)
        words = max(1, (len(bit_of) + 63) // 64)
        bitmaps = np.zeros((len(type_sets), words), dtype=np.uint64)
        sizes = np.zeros(len(type_sets), dtype=np.int64)
        for row, types in enumerate(type_sets):
            sizes[row] = len(types)
            for name in types:
                bit = bit_of[name]
                bitmaps[row, bit >> 6] |= np.uint64(1 << (bit & 63))
        return UnionCorpusIndex(
            column_encoder, table_ids, table_columns,
            bit_of=bit_of, bitmaps=bitmaps, sizes=sizes,
        )
    dim = 1
    for vector in vector_list:
        if vector is not None:
            dim = int(np.asarray(vector).shape[0])
            break
    vectors = np.zeros((len(vector_list), dim), dtype=np.float64)
    valid = np.zeros(len(vector_list), dtype=bool)
    norms = np.zeros(len(vector_list), dtype=np.float64)
    for row, vector in enumerate(vector_list):
        if vector is None:
            continue
        vectors[row] = np.asarray(vector, dtype=np.float64)
        valid[row] = True
        # Per-row 1-D norm calls reproduce the scalar baseline's
        # sqrt(dot) bit-for-bit (axis-reductions may round differently).
        norms[row] = float(np.linalg.norm(vectors[row]))
    return UnionCorpusIndex(
        column_encoder, table_ids, table_columns,
        vectors=vectors, norms=norms, valid=valid,
    )


def _pack_query_types(
    index: UnionCorpusIndex, types: FrozenSet[str]
) -> Tuple[np.ndarray, int]:
    bits = np.zeros(index.bitmaps.shape[1], dtype=np.uint64)
    for name in types:
        bit = index.bit_of.get(name)
        if bit is not None:
            bits[bit >> 6] |= np.uint64(1 << (bit & 63))
    return bits, len(types)


def _assignment_totals(
    relevance: np.ndarray,
    table_columns: np.ndarray,
    col_offset: np.ndarray,
) -> np.ndarray:
    """Best one-to-one assignment total per table, scalar-parity exact.

    ``relevance`` is the dense (query_width, total_columns) similarity
    matrix over a contiguous table->column layout.  Tables whose columns
    are all non-positive total exactly 0.0 (their optimal assignment
    sums zeros).  The remaining tables are grouped by which query rows
    have positive entries; groups with at most MAX_ENUM_ROWS positive
    rows — regardless of the full query width — are solved by
    exhaustive enumeration over a null-augmented option tensor; a table
    whose near-optimal totals (within ASSIGNMENT_MARGIN of the
    optimum) are not all bitwise equal — where enumeration and the
    Hungarian solver could pick equal-total assignments with different
    rounding — falls back to :func:`max_assignment` on its block, the
    very code path the scalar baseline runs.  Skipping non-positive query rows is exact because
    the scalar accumulator adds their 0.0 contribution in row order and
    ``x + 0.0 == x`` for every non-negative score.
    """
    width = int(relevance.shape[0])
    num_tables = len(table_columns)
    totals = np.zeros(num_tables, dtype=np.float64)
    total_columns = int(relevance.shape[1])
    if width == 0 or num_tables == 0 or total_columns == 0:
        return totals
    starts = np.minimum(col_offset[:-1], total_columns - 1)
    maxima = np.maximum.reduceat(relevance, starts, axis=1)
    # reduceat yields a neighbor's value for empty segments; mask them.
    maxima[:, table_columns == 0] = 0.0
    positive = maxima > 0.0
    need = positive.any(axis=0)
    if not bool(need.any()):
        return totals
    fallback: List[int] = []
    if width <= 62:  # int64 bit codes; wider queries all fall back
        weights = (
            np.int64(1) << np.arange(width, dtype=np.int64)
        )
        codes = positive.T.astype(np.int64) @ weights
        codes = np.where(need, codes, 0)
        for code in np.unique(codes):
            if code == 0:
                continue
            selection = np.nonzero(codes == code)[0]
            rows = np.nonzero(
                (int(code) >> np.arange(width, dtype=np.int64)) & 1
            )[0]
            # Enumeration keys on the *positive* row count of the
            # group, not the full query width: a wide query still
            # enumerates every table where at most MAX_ENUM_ROWS query
            # columns score positive (the zero rows add exact 0.0 in
            # the scalar accumulator, so skipping them is bit-exact).
            if len(rows) > MAX_ENUM_ROWS:
                fallback.extend(int(t) for t in selection)
                continue
            # The enumeration compacts each table to its positively-
            # scoring columns, so size gates key on that count, not the
            # table width.  reduceat needs int (bool add is OR), and
            # empty segments echo a neighbour — zero them.
            pos_any = (relevance[rows] > 0.0).any(axis=0)
            pos_counts = np.add.reduceat(
                pos_any.astype(np.int64), starts
            )
            pos_counts[table_columns == 0] = 0
            # Gate per table: one wide table must not drag the whole
            # group to the solver, and past MAX_ENUM_ELEMENTS cells a
            # single Hungarian call is cheaper than the tensor.
            lane_elements = (
                (pos_counts[selection] + 1).astype(np.float64)
                ** len(rows)
            )
            enumerable = lane_elements <= MAX_ENUM_ELEMENTS
            fallback.extend(int(t) for t in selection[~enumerable])
            selection = selection[enumerable]
            if not len(selection):
                continue
            # Sort by positive-column count so each chunk's tensor is
            # padded to a near-uniform option count, then chunk to keep
            # one tensor inside the element budget.  A chunk's tensor
            # is padded to its *widest* member, so the fit test
            # multiplies the running lane count by that member's
            # element count (monotone in both once sorted: first
            # failure ends the chunk).
            order = np.argsort(
                pos_counts[selection], kind="stable"
            )
            selection = selection[order]
            lane_elements = lane_elements[enumerable][order]
            cursor = 0
            while cursor < len(selection):
                remaining = lane_elements[cursor:]
                fits = (
                    np.arange(1, len(remaining) + 1) * remaining
                    <= ENUM_BUDGET
                )
                step = (
                    len(remaining) if bool(fits.all())
                    else max(1, int(np.argmin(fits)))
                )
                chunk = selection[cursor:cursor + step]
                cursor += step
                enum_totals, trusted = _enumerate_totals(
                    relevance, table_columns, col_offset, rows, chunk
                )
                totals[chunk] = np.where(trusted, enum_totals, 0.0)
                if not bool(trusted.all()):
                    fallback.extend(int(t) for t in chunk[~trusted])
    else:
        fallback = [int(t) for t in np.nonzero(need)[0]]
    for position in fallback:
        start = int(col_offset[position])
        stop = int(col_offset[position + 1])
        _, total = max_assignment(relevance[:, start:stop])
        totals[position] = total
    return totals


def _enumerate_totals(
    relevance: np.ndarray,
    table_columns: np.ndarray,
    col_offset: np.ndarray,
    rows: np.ndarray,
    selection: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exhaustive assignment totals for every selected table at once.

    Mirrors the entity kernel's enumeration: per table, each positive
    query row picks one option among the table's positively-scoring
    columns plus a conflict-exempt null slot worth +0.0, non-positive
    entries are demoted to ``-inf``, and repeated *real* columns are
    masked out.  Returns ``(totals, trusted)`` where ``trusted`` marks
    lanes whose near-optimal totals (within ASSIGNMENT_MARGIN) are all
    bitwise equal to the optimum.
    """
    columns = table_columns[selection]
    cmax = int(columns.max())
    total_columns = int(relevance.shape[1])
    gather = (
        col_offset[selection][:, None]
        + np.arange(cmax, dtype=np.int64)[None, :]
    )
    np.minimum(gather, total_columns - 1, out=gather)
    valid = np.arange(cmax, dtype=np.int64)[None, :] < columns[:, None]
    real = relevance[rows][:, gather]
    positive = valid[None, :, :] & (real > 0.0)
    # Compact each lane to its positively-scoring columns: non-positive
    # cells are ``-inf`` below either way (the optimum never takes
    # them; "unassigned" is the null slot), so only positive columns
    # need option slots and the tensor shrinks from (table columns)^d
    # to (positive columns)^d.  The stable argsort keeps original
    # column order, so equal compact indices still mean equal real
    # columns for the clash mask.
    lane_positive = positive.any(axis=0)
    counts = lane_positive.sum(axis=1)
    pmax = int(counts.max())
    order = np.argsort(~lane_positive, axis=1, kind="stable")[:, :pmax]
    real = np.take_along_axis(real, order[None, :, :], axis=2)
    positive = np.take_along_axis(positive, order[None, :, :], axis=2)
    keep = np.arange(pmax, dtype=np.int64)[None, :] < counts[:, None]
    options = pmax + 1
    blocks = np.concatenate(
        [
            np.where(positive & keep[None, :, :], real, -np.inf),
            np.zeros(
                (len(rows), len(selection), 1), dtype=np.float64
            ),
        ],
        axis=2,
    )
    lanes = np.arange(len(selection))
    depth = len(rows)
    if depth == 1:
        # A single positive row: the optimum is a plain max, no float
        # additions are involved, so ties cannot change the total —
        # every lane is trusted without the runner-up margin check.
        best = blocks[0].max(axis=1)
        return best, np.ones(len(selection), dtype=bool)
    # Build the (lanes, options, ..., options) total tensor one row at
    # a time — the additions happen in increasing row order, exactly
    # the order the scalar accumulator sums its chosen cells.
    accumulated = blocks[0].reshape(
        (len(selection), options) + (1,) * (depth - 1)
    )
    for position in range(1, depth):
        shape = [len(selection)] + [1] * depth
        shape[1 + position] = options
        accumulated = accumulated + blocks[position].reshape(shape)
    accumulated[:, _wide_clash_mask(depth, options)] = -np.inf
    flat = accumulated.reshape(len(selection), -1)
    best = flat.argmax(axis=1)
    best_totals = flat[lanes, best]
    # Trust a lane when every near-optimal total (within the margin of
    # the winner) is bitwise equal to the winner.  The scalar solver's
    # chosen assignment is mathematically optimal, so its row-order sum
    # is one of these near-optimal floats — if they are all the same
    # float, the solver's total is that float no matter which tied
    # assignment it picks.  A margin-clearing unique optimum is the
    # degenerate case (near set == {winner}).  Exact ties on type
    # Jaccard scores are common, so this keeps tied tables off the
    # per-table solver fallback.
    near = flat >= (best_totals - ASSIGNMENT_MARGIN)[:, None]
    min_near = np.where(near, flat, np.inf).min(axis=1)
    trusted = min_near == best_totals
    return best_totals, trusted


class VectorizedUnionSearchEngine:
    """Whole-lake union scoring with scalar-baseline parity.

    Drop-in for :class:`~repro.baselines.union_search.UnionTableSearch`
    ``search``: identical constructor validation, identical scores
    (<= 1e-9) and ranking, plus ``candidates`` restriction for shard
    scatter and :meth:`search_batch` lane stacking for the micro-batch
    serve path.  The compiled index is built lazily, invalidated whole
    on mutation, and rebuilt by :meth:`prepare` (serve snapshots call
    it off the request path before the copy-and-swap).
    """

    def __init__(
        self,
        lake: DataLake,
        mapping: EntityMapping,
        graph: Optional[KnowledgeGraph] = None,
        store: Optional[EmbeddingStore] = None,
        column_encoder: str = "types",
    ):
        if column_encoder not in UNION_ENCODERS:
            raise ConfigurationError(
                f"unknown column encoder: {column_encoder!r}"
            )
        if column_encoder == "types" and graph is None:
            raise ConfigurationError("types encoder requires a graph")
        if column_encoder == "embeddings" and store is None:
            raise ConfigurationError("embeddings encoder requires a store")
        self.lake = lake
        self.mapping = mapping
        self.graph = graph
        self.store = store
        self.column_encoder = column_encoder
        self._lock = threading.RLock()
        self._compiled: Optional[UnionCorpusIndex] = None  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def index(self) -> UnionCorpusIndex:
        # Double-checked build: racy first read, build under the lock.
        compiled = self._compiled  # lint: disable=guarded-attr-outside-lock
        if compiled is None:
            with self._lock:
                if self._compiled is None:
                    self._compiled = compile_union_index(
                        self.lake,
                        self.mapping,
                        graph=self.graph,
                        store=self.store,
                        column_encoder=self.column_encoder,
                    )
                compiled = self._compiled
        return compiled

    def invalidate(self) -> None:
        """Drop the compiled index; the next search recompiles."""
        with self._lock:
            self._compiled = None

    def invalidate_table(self, table_id: str) -> None:
        """Mutation hook: the whole column-concept index is dropped.

        Unlike the entity kernel's segmented index there is no
        incremental form yet — the compile is one linear pass over the
        lake, and serve snapshots rebuild it off the request path.
        """
        del table_id
        self.invalidate()

    def prepare(self) -> None:
        """Force the compile now (warm path / snapshot swap)."""
        self.index()

    def warm(self) -> None:
        self.prepare()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _encode_query(self, query: Query):
        columns = _query_columns(query)
        if self.column_encoder == "types":
            return [dominant_types(self.graph, column) for column in columns]
        return [self.store.mean_vector(column) for column in columns]

    def _relevance(
        self,
        index: UnionCorpusIndex,
        encoded_columns: Sequence,
        column_selection: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Dense (num_encoded, num_selected_columns) similarity matrix."""
        if index.column_encoder == "types":
            bitmaps = index.bitmaps
            sizes = index.sizes
            if column_selection is not None:
                bitmaps = bitmaps[column_selection]
                sizes = sizes[column_selection]
            relevance = np.zeros(
                (len(encoded_columns), bitmaps.shape[0]), dtype=np.float64
            )
            for row, types in enumerate(encoded_columns):
                if not types:
                    continue
                bits, query_size = _pack_query_types(index, types)
                intersection = (
                    _popcount(bitmaps & bits[None, :])
                    .sum(axis=1)
                    .astype(np.int64)
                )
                union = query_size + sizes - intersection
                np.divide(
                    intersection,
                    union,
                    out=relevance[row],
                    where=intersection > 0,
                    casting="unsafe",
                )
            return relevance
        vectors = index.vectors
        norms = index.norms
        valid = index.valid
        if column_selection is not None:
            vectors = vectors[column_selection]
            norms = norms[column_selection]
            valid = valid[column_selection]
        width = len(encoded_columns)
        stacked = np.zeros((width, vectors.shape[1]), dtype=np.float64)
        query_norms = np.zeros(width, dtype=np.float64)
        query_valid = np.zeros(width, dtype=bool)
        for row, vector in enumerate(encoded_columns):
            if vector is None:
                continue
            stacked[row] = np.asarray(vector, dtype=np.float64)
            query_norms[row] = float(np.linalg.norm(stacked[row]))
            query_valid[row] = True
        dots = stacked @ vectors.T
        denominator = query_norms[:, None] * norms[None, :]
        usable = (
            query_valid[:, None] & valid[None, :] & (denominator != 0.0)
        )
        relevance = np.zeros_like(dots)
        np.divide(dots, denominator, out=relevance, where=usable)
        np.maximum(relevance, 0.0, out=relevance)
        return relevance

    def _score_lake(
        self,
        index: UnionCorpusIndex,
        relevance: np.ndarray,
        width: int,
        positions: Optional[np.ndarray],
        table_columns: np.ndarray,
        col_offset: np.ndarray,
        k: Optional[int] = None,
    ) -> ResultSet:
        totals = _assignment_totals(relevance, table_columns, col_offset)
        normalizer = np.maximum(np.int64(width), table_columns)
        # Elementwise float64 / int64 is the same IEEE division the
        # scalar baseline's per-table ``total / normalizer`` performs.
        scores = totals / normalizer
        ids = (
            index.ids_array if positions is None
            else index.ids_array[positions]
        )
        return ResultSet.from_arrays(scores, ids, k)

    def _selection_layout(
        self,
        index: UnionCorpusIndex,
        candidates: Optional[Iterable[str]],
    ):
        """Resolve a candidate restriction to a contiguous sub-layout.

        Returns ``(positions, column_selection, table_columns,
        col_offset)`` — ``positions`` / ``column_selection`` are None
        for the full-corpus fast path.
        """
        if candidates is None:
            return None, None, index.table_columns, index.col_offset
        positions = np.asarray(
            sorted(
                {
                    index.position_of[table_id]
                    for table_id in candidates
                    if table_id in index.position_of
                }
            ),
            dtype=np.int64,
        )
        table_columns = index.table_columns[positions]
        col_offset = np.zeros(len(positions) + 1, dtype=np.int64)
        np.cumsum(table_columns, out=col_offset[1:])
        column_selection = _concat_ranges(
            index.col_offset[positions], table_columns
        )
        return positions, column_selection, table_columns, col_offset

    def search(
        self,
        query: Query,
        k: Optional[int] = None,
        candidates: Optional[Iterable[str]] = None,
    ) -> ResultSet:
        """Rank tables by unionability; parity with the scalar baseline."""
        index = self.index()
        encoded = self._encode_query(query)
        if not encoded or index.num_tables == 0:
            return ResultSet([])
        positions, column_selection, table_columns, col_offset = (
            self._selection_layout(index, candidates)
        )
        if len(table_columns) == 0:
            return ResultSet([])
        relevance = self._relevance(index, encoded, column_selection)
        return self._score_lake(
            index, relevance, len(encoded), positions,
            table_columns, col_offset, k,
        )

    def search_batch(
        self,
        queries: Sequence[Query],
        k: Optional[int] = None,
        candidates: Optional[Sequence[Optional[Iterable[str]]]] = None,
        batch_stats=None,
    ) -> List[ResultSet]:
        """Score a micro-batch with one stacked relevance pass.

        All distinct queries' columns are stacked into a single
        relevance computation (one matmul / one popcount sweep per
        stacked column) and the per-table assignment runs on each
        query's row slice — bit-identical to sequential :meth:`search`
        because each query's rows are untouched by the stacking.
        Identical ``(tuples, candidates)`` jobs are scored once.
        """
        queries = list(queries)
        if candidates is None:
            cand_lists: List[Optional[List[str]]] = [None] * len(queries)
        else:
            cand_lists = [
                None if cands is None else list(cands)
                for cands in candidates
            ]
        if not queries:
            return []
        index = self.index()
        job_of: Dict[Tuple, int] = {}
        jobs: List[Tuple[Query, Optional[List[str]]]] = []
        fanout: List[int] = []
        for query, cands in zip(queries, cand_lists):
            key = (
                query.tuples,
                None if cands is None else tuple(dict.fromkeys(cands)),
            )
            slot = job_of.get(key)
            if slot is None:
                slot = len(jobs)
                job_of[key] = slot
                jobs.append((query, cands))
            fanout.append(slot)
        if batch_stats is not None:
            batch_stats.record_batched(len(queries), len(jobs))
        # Lane-stack the full-corpus jobs: one shared relevance pass.
        encoded_of: List[Sequence] = [
            self._encode_query(query) for query, _ in jobs
        ]
        shared_rows: List = []
        row_slice: List[Optional[Tuple[int, int]]] = []
        for (_, cands), encoded in zip(jobs, encoded_of):
            if cands is None and encoded:
                row_slice.append(
                    (len(shared_rows), len(shared_rows) + len(encoded))
                )
                shared_rows.extend(encoded)
            else:
                row_slice.append(None)
        shared = (
            self._relevance(index, shared_rows)
            if shared_rows and index.num_tables
            else None
        )
        resolved: List[ResultSet] = []
        for (query, cands), encoded, rows in zip(
            jobs, encoded_of, row_slice
        ):
            if not encoded or index.num_tables == 0:
                resolved.append(ResultSet([]))
                continue
            if rows is not None:
                relevance = shared[rows[0]:rows[1]]
                resolved.append(self._score_lake(
                    index, relevance, len(encoded), None,
                    index.table_columns, index.col_offset, k,
                ))
            else:
                resolved.append(
                    self.search(query, k=k, candidates=cands)
                )
        return [resolved[slot] for slot in fanout]

"""Versioned on-disk format for segmented corpus indexes.

An index directory holds exactly two files:

``header.json``
    Everything non-numeric, versioned: per-segment table ids, interned
    URI lists, tombstones, the kernel spec tree (which similarity the
    arrays were compiled for), and for every numeric array its dtype
    (with explicit byte order, e.g. ``<i4``), shape, and byte offset
    into the payload file.

``arrays.bin``
    Every numeric array of every segment, concatenated with 64-byte
    alignment.  Nothing else — no pickles, no Python objects.

Cold start is therefore **one** ``np.memmap`` of ``arrays.bin`` plus
header validation: each array is a zero-copy ``view`` slice of the
mapping, views materialize lazily
(:meth:`~repro.core.kernel.index.CorpusIndex.from_arrays`), and pages
are only faulted in as scoring touches them.  The same property lets
``core/parallel.py``'s process backend share one on-disk index across
workers through the OS page cache instead of pickling compiled arrays
into every worker.

Saves are crash-safe and mmap-safe: both files are written to
temporaries and ``os.replace``d into place (payload first, header
last), so a reader either sees a complete generation or fails cleanly,
and live memmaps of the previous generation keep reading the old inode.

Loading validates the stored kernel spec against the ``sigma`` the
caller supplies — an index compiled for type Jaccard refuses to serve
an embedding engine with a clear :class:`IndexStorageError` instead of
silently wrong scores.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, List, Optional

import numpy as np

from repro.core.kernel.index import (
    DEFAULT_ROW_CACHE_SIZE,
    CombinationKernel,
    CorpusIndex,
    EmbeddingMatmulKernel,
    ExactMatchKernel,
    ScalarLoopKernel,
    SimilarityKernel,
    TypeBitmapKernel,
)
from repro.core.kernel.segments import SegmentedCorpusIndex
from repro.exceptions import IndexStorageError
from repro.linking.mapping import EntityMapping
from repro.similarity.base import (
    EntitySimilarity,
    ExactMatchSimilarity,
    WeightedCombination,
)
from repro.similarity.embedding import EmbeddingCosineSimilarity
from repro.similarity.types import (
    MappingTypeSimilarity,
    TypeJaccardSimilarity,
)

#: Identifies the file family; never reused across incompatible layouts.
FORMAT_NAME = "thetis-segmented-corpus-index"

#: Bumped on any change to header semantics or array layout.
FORMAT_VERSION = 1

#: Every array starts on a 64-byte boundary: past any SIMD alignment
#: requirement, and it keeps offsets multiples of every element size so
#: the zero-copy ``view`` reinterpretation is always legal.
ALIGNMENT = 64

HEADER_FILENAME = "header.json"
ARRAYS_FILENAME = "arrays.bin"

#: Corpus-wide arrays persisted per segment, in write order.  Names
#: match the :class:`CorpusIndex` attributes and the ``arrays`` mapping
#: accepted by :meth:`CorpusIndex.from_arrays`.
_CORPUS_ARRAYS = (
    "table_rows",
    "table_columns",
    "col_offset",
    "row_offset",
    "flat_ids",
    "col_start",
    "nnz_gcolumns",
    "nnz_gids",
    "nnz_gcounts",
    "nnz_toffset",
)

#: Similarity types with a dedicated (non-scalar-loop) kernel; a stored
#: ``scalar_loop`` spec must *not* match any of these, or the caller's
#: sigma would have compiled to a different kernel than the one saved.
_BUILTIN_SIGMAS = (
    ExactMatchSimilarity,
    TypeJaccardSimilarity,
    MappingTypeSimilarity,
    EmbeddingCosineSimilarity,
    WeightedCombination,
)


class _ArrayWriter:
    """Appends aligned arrays to the payload file, recording specs."""

    def __init__(self, handle: IO[bytes]):
        self._handle = handle
        self.offset = 0

    def write(self, array: np.ndarray) -> Dict[str, Any]:
        contiguous = np.ascontiguousarray(array)
        padding = (-self.offset) % ALIGNMENT
        if padding:
            self._handle.write(b"\x00" * padding)
            self.offset += padding
        spec = {
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
            "offset": self.offset,
        }
        payload = contiguous.tobytes()
        self._handle.write(payload)
        self.offset += len(payload)
        return spec


def _read_array(base: np.ndarray, spec: Dict[str, Any]) -> np.ndarray:
    """One zero-copy array view out of the payload mapping."""
    try:
        dtype = np.dtype(str(spec["dtype"]))
        shape = tuple(int(extent) for extent in spec["shape"])
        offset = int(spec["offset"])
    except (KeyError, TypeError, ValueError) as error:
        raise IndexStorageError(f"malformed array spec {spec!r}") from error
    count = 1
    for extent in shape:
        count *= extent
    nbytes = dtype.itemsize * count
    if offset < 0 or offset % dtype.itemsize:
        raise IndexStorageError(
            f"array offset {offset} is not aligned to itemsize "
            f"{dtype.itemsize} ({dtype.str})"
        )
    chunk = base[offset:offset + nbytes]
    if chunk.size != nbytes:
        raise IndexStorageError(
            f"arrays payload truncated: need {nbytes} bytes at offset "
            f"{offset}, file holds {base.size}"
        )
    return chunk.view(dtype).reshape(shape)


# ----------------------------------------------------------------------
# Kernel (de)hydration
# ----------------------------------------------------------------------
def _kernel_spec(
    kernel: SimilarityKernel, writer: _ArrayWriter
) -> Dict[str, Any]:
    """Persist a kernel's arrays; returns its header spec tree."""
    if type(kernel) is ExactMatchKernel:
        return {"kind": "exact"}
    if type(kernel) is TypeBitmapKernel:
        bit_names: List[Optional[str]] = [None] * len(kernel._bit_of)
        for name, bit in kernel._bit_of.items():
            bit_names[bit] = name
        return {
            "kind": "type_bitmap",
            "cap": float(kernel._cap),
            "bit_names": bit_names,
            "arrays": {
                "bitmaps": writer.write(kernel._bitmaps),
                "sizes": writer.write(kernel._sizes),
            },
        }
    if type(kernel) is EmbeddingMatmulKernel:
        return {
            "kind": "embedding",
            "dimensions": int(kernel._matrix.shape[1]),
            "arrays": {"matrix": writer.write(kernel._matrix)},
        }
    if type(kernel) is CombinationKernel:
        return {
            "kind": "combination",
            "weights": [float(weight) for weight in kernel._weights],
            "parts": [
                _kernel_spec(part, writer) for part in kernel._parts
            ],
        }
    if type(kernel) is ScalarLoopKernel:
        # The sigma itself is not persisted (it may be arbitrary user
        # code); the caller re-supplies it at load time.
        return {"kind": "scalar_loop"}
    raise IndexStorageError(
        f"cannot persist kernel type {type(kernel).__name__}"
    )


def _load_kernel(
    spec: Dict[str, Any],
    uris: List[str],
    id_of: Dict[str, int],
    sigma: EntitySimilarity,
    base: np.ndarray,
) -> SimilarityKernel:
    """Rebuild a kernel, validating the spec against the live sigma."""
    kind = spec.get("kind")
    if kind == "exact":
        if type(sigma) is not ExactMatchSimilarity:
            raise _sigma_mismatch(kind, sigma)
        return ExactMatchKernel(uris, id_of)
    if kind == "type_bitmap":
        if type(sigma) not in (TypeJaccardSimilarity, MappingTypeSimilarity):
            raise _sigma_mismatch(kind, sigma)
        if float(spec.get("cap", -1.0)) != float(sigma.cap):
            raise IndexStorageError(
                f"stored type-Jaccard cap {spec.get('cap')} does not "
                f"match the live sigma's cap {sigma.cap}"
            )
        return TypeBitmapKernel.from_arrays(
            uris,
            id_of,
            sigma.types_of,
            sigma.cap,
            list(spec.get("bit_names", [])),
            _read_array(base, spec["arrays"]["bitmaps"]),
            _read_array(base, spec["arrays"]["sizes"]),
        )
    if kind == "embedding":
        if type(sigma) is not EmbeddingCosineSimilarity:
            raise _sigma_mismatch(kind, sigma)
        if int(spec.get("dimensions", -1)) != int(sigma.store.dimensions):
            raise IndexStorageError(
                f"stored embedding dimensionality "
                f"{spec.get('dimensions')} does not match the live "
                f"store's {sigma.store.dimensions}"
            )
        return EmbeddingMatmulKernel.from_arrays(
            uris, id_of, sigma.store,
            _read_array(base, spec["arrays"]["matrix"]),
        )
    if kind == "combination":
        if type(sigma) is not WeightedCombination:
            raise _sigma_mismatch(kind, sigma)
        parts_spec = spec.get("parts", [])
        weights = [float(weight) for weight in spec.get("weights", [])]
        if len(parts_spec) != len(sigma.parts) or weights != [
            float(weight) for weight in sigma.weights
        ]:
            raise IndexStorageError(
                "stored combination kernel has different parts/weights "
                "than the live sigma"
            )
        parts = [
            _load_kernel(part_spec, uris, id_of, part_sigma, base)
            for part_spec, part_sigma in zip(parts_spec, sigma.parts)
        ]
        return CombinationKernel(uris, id_of, parts, sigma.weights)
    if kind == "scalar_loop":
        if type(sigma) in _BUILTIN_SIGMAS:
            raise _sigma_mismatch(kind, sigma)
        return ScalarLoopKernel(uris, id_of, sigma)
    raise IndexStorageError(f"unknown kernel kind {kind!r} in header")


def _sigma_mismatch(kind: Any, sigma: EntitySimilarity) -> IndexStorageError:
    return IndexStorageError(
        f"index was persisted with a {kind!r} kernel but the live "
        f"similarity is {type(sigma).__name__}; rebuild the index for "
        "this similarity configuration"
    )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def save_index(index: SegmentedCorpusIndex, path: str) -> Dict[str, Any]:
    """Persist a segmented index into directory ``path``.

    Returns a summary dict (segment/table/byte counts).  The write is
    atomic per generation: payload then header are ``os.replace``d, so
    concurrent readers (including memmaps of the previous generation)
    are never exposed to a torn state.
    """
    directory = os.fspath(path)
    os.makedirs(directory, exist_ok=True)
    arrays_path = os.path.join(directory, ARRAYS_FILENAME)
    header_path = os.path.join(directory, HEADER_FILENAME)
    segments: List[Dict[str, Any]] = []
    arrays_tmp = arrays_path + ".tmp"
    with open(arrays_tmp, "wb") as handle:
        writer = _ArrayWriter(handle)
        for segment, dead_set in zip(index.segments, index.dead):
            arrays = {
                name: writer.write(getattr(segment, name))
                for name in _CORPUS_ARRAYS
            }
            segments.append({
                "table_ids": list(segment.table_ids),
                "uris": list(segment.uris),
                "dead": sorted(dead_set),
                "arrays": arrays,
                "kernel": _kernel_spec(segment.kernel, writer),
            })
        array_bytes = writer.offset
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "alignment": ALIGNMENT,
        "row_cache_size": index.row_cache_size,
        "compactions": index.compactions,
        "array_bytes": array_bytes,
        "segments": segments,
    }
    header_tmp = header_path + ".tmp"
    with open(header_tmp, "w", encoding="utf-8") as handle:
        json.dump(header, handle)
    os.replace(arrays_tmp, arrays_path)
    os.replace(header_tmp, header_path)
    return {
        "path": directory,
        "segments": len(index.segments),
        "live_tables": len(index),
        "tombstones": sum(len(dead_set) for dead_set in index.dead),
        "array_bytes": array_bytes,
    }


def _load_header(directory: str) -> Dict[str, Any]:
    header_path = os.path.join(directory, HEADER_FILENAME)
    try:
        with open(header_path, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except OSError as error:
        raise IndexStorageError(
            f"cannot read index header {header_path}: {error}"
        ) from error
    except json.JSONDecodeError as error:
        raise IndexStorageError(
            f"malformed index header {header_path}: {error}"
        ) from error
    if header.get("format") != FORMAT_NAME:
        raise IndexStorageError(
            f"{header_path} is not a {FORMAT_NAME} header "
            f"(format={header.get('format')!r})"
        )
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise IndexStorageError(
            f"index format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return header


def _map_arrays(directory: str, header: Dict[str, Any]) -> np.ndarray:
    """Memmap the whole payload file read-only as raw bytes."""
    arrays_path = os.path.join(directory, ARRAYS_FILENAME)
    try:
        size = os.path.getsize(arrays_path)
    except OSError as error:
        raise IndexStorageError(
            f"cannot stat index payload {arrays_path}: {error}"
        ) from error
    expected = int(header.get("array_bytes", 0))
    if size < expected:
        raise IndexStorageError(
            f"index payload {arrays_path} is truncated: header "
            f"promises {expected} bytes, file holds {size}"
        )
    if size == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.memmap(
        arrays_path,
        dtype=np.uint8,
        mode="r",
        offset=0,
        shape=(size,),
    )


def load_index(
    path: str,
    sigma: EntitySimilarity,
    mapping: EntityMapping,
    row_cache_size: Optional[int] = None,
) -> SegmentedCorpusIndex:
    """Load a segmented index from ``path`` without compiling anything.

    ``sigma`` and ``mapping`` become the live bindings of the returned
    index (used only by *future* incremental compiles; the persisted
    arrays are served as-is).  The stored kernel spec is validated
    against ``sigma`` — a mismatch raises :class:`IndexStorageError`
    rather than returning an index that scores with the wrong
    similarity.
    """
    directory = os.fspath(path)
    header = _load_header(directory)
    base = _map_arrays(directory, header)
    if row_cache_size is None:
        row_cache_size = int(
            header.get("row_cache_size", DEFAULT_ROW_CACHE_SIZE)
        )
    segments: List[CorpusIndex] = []
    dead: List[frozenset] = []
    for segment_spec in header.get("segments", []):
        uris = [str(uri) for uri in segment_spec.get("uris", [])]
        table_ids = [
            str(table_id) for table_id in segment_spec.get("table_ids", [])
        ]
        id_of = {uri: index for index, uri in enumerate(uris)}
        kernel = _load_kernel(
            segment_spec.get("kernel", {}), uris, id_of, sigma, base
        )
        try:
            arrays = {
                name: _read_array(base, segment_spec["arrays"][name])
                for name in _CORPUS_ARRAYS
            }
        except KeyError as error:
            raise IndexStorageError(
                f"segment header is missing array {error}"
            ) from error
        segments.append(
            CorpusIndex.from_arrays(
                table_ids, uris, kernel, arrays,
                row_cache_size=row_cache_size,
            )
        )
        dead.append(frozenset(
            str(table_id) for table_id in segment_spec.get("dead", [])
        ))
    return SegmentedCorpusIndex(
        segments,
        dead,
        mapping,
        sigma,
        row_cache_size=row_cache_size,
        compactions=int(header.get("compactions", 0)),
    )


def inspect_index(path: str, verify: bool = False) -> Dict[str, Any]:
    """Summarize an index directory from its header alone.

    With ``verify=True`` every array spec is additionally resolved
    against the payload mapping, so truncation and misalignment are
    detected without loading table data.
    """
    directory = os.fspath(path)
    header = _load_header(directory)
    segments = header.get("segments", [])
    live = 0
    tombstones = 0
    entities = 0
    segment_rows = []
    for segment_spec in segments:
        table_ids = segment_spec.get("table_ids", [])
        dead_ids = segment_spec.get("dead", [])
        live += len(table_ids) - len(dead_ids)
        tombstones += len(dead_ids)
        entities += len(segment_spec.get("uris", []))
        segment_rows.append({
            "tables": len(table_ids),
            "dead": len(dead_ids),
            "entities": len(segment_spec.get("uris", [])),
            "kernel": segment_spec.get("kernel", {}).get("kind"),
        })
    summary = {
        "path": directory,
        "format": header["format"],
        "version": header["version"],
        "segments": len(segments),
        "live_tables": live,
        "tombstones": tombstones,
        "entities": entities,
        "compactions": int(header.get("compactions", 0)),
        "array_bytes": int(header.get("array_bytes", 0)),
        "segment_detail": segment_rows,
        "verified": False,
    }
    if verify:
        base = _map_arrays(directory, header)
        for segment_spec in segments:
            for spec in segment_spec.get("arrays", {}).values():
                _read_array(base, spec)
            _verify_kernel_arrays(segment_spec.get("kernel", {}), base)
        summary["verified"] = True
    return summary


def _verify_kernel_arrays(spec: Dict[str, Any], base: np.ndarray) -> None:
    for array_spec in spec.get("arrays", {}).values():
        _read_array(base, array_spec)
    for part in spec.get("parts", []):
        _verify_kernel_arrays(part, base)


__all__ = [
    "ALIGNMENT",
    "ARRAYS_FILENAME",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "HEADER_FILENAME",
    "inspect_index",
    "load_index",
    "save_index",
]

"""Serve-side accounting for the multi-query batched scoring path.

:class:`BatchStats` is the single mutable object shared by the facade,
the serve loop, and ``/metrics``: every ``search_many`` dispatch records
whether the micro-batch rode one fused kernel pass
(:meth:`~repro.core.kernel.engine.VectorizedTableSearchEngine.
search_batch`) or fell back to the per-query loop, plus how many
duplicate queries the canonical-key dedup collapsed.  Snapshot swaps
hand the same instance to the replacement generation (see
``Thetis.seed_engines_from``), so the serving counters survive
copy-and-swap mutations instead of resetting every swap.
"""

from __future__ import annotations

import threading
from typing import Dict


class BatchStats:
    """Thread-safe counters for batched vs. looped query dispatch.

    Two record points, one per dispatch outcome:

    * :meth:`record_batched` — the batch rode one fused kernel pass;
      ``unique`` is the job count after canonical-query dedup, so
      ``queries - unique`` queries were answered from a duplicate's
      ranking without touching the kernel;
    * :meth:`record_looped` — the batch fell back to sequential
      per-query scoring (scalar engine, unmirrorable index, or a
      single-query dispatch not worth stacking).

    All readers go through :meth:`as_dict`, which derives the rates the
    ``/metrics`` endpoint publishes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._batched_passes = 0
        self._batched_queries = 0
        self._deduped_queries = 0
        self._looped_passes = 0
        self._looped_queries = 0

    # ------------------------------------------------------------------
    def record_batched(self, queries: int, unique: int) -> None:
        """One fused kernel pass covering ``queries`` micro-batch slots."""
        queries = max(0, int(queries))
        unique = max(0, min(int(unique), queries))
        with self._lock:
            self._batched_passes += 1
            self._batched_queries += queries
            self._deduped_queries += queries - unique

    def record_looped(self, queries: int) -> None:
        """One sequential per-query dispatch of ``queries`` queries."""
        with self._lock:
            self._looped_passes += 1
            self._looped_queries += max(0, int(queries))

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """Derived rates for ``/metrics`` (JSON-serializable)."""
        with self._lock:
            batched_passes = self._batched_passes
            batched_queries = self._batched_queries
            payload: Dict[str, object] = {
                "batched_passes": batched_passes,
                "batched_queries": batched_queries,
                "deduped_queries": self._deduped_queries,
                "looped_passes": self._looped_passes,
                "looped_queries": self._looped_queries,
                "queries_per_batched_pass": (
                    batched_queries / batched_passes
                    if batched_passes else 0.0
                ),
                "dedup_rate": (
                    self._deduped_queries / batched_queries
                    if batched_queries else 0.0
                ),
            }
        return payload

    # ------------------------------------------------------------------
    def merge_counts(self, counts: Dict[str, object]) -> None:
        """Fold another instance's :meth:`as_dict` counters into this one.

        The cluster coordinator aggregates worker-reported batch blocks
        with this — only the raw counters are summed; the derived rates
        are recomputed by the next :meth:`as_dict`.
        """
        def _count(key: str) -> int:
            value = counts.get(key, 0)
            return int(value) if isinstance(value, (int, float)) else 0

        with self._lock:
            self._batched_passes += _count("batched_passes")
            self._batched_queries += _count("batched_queries")
            self._deduped_queries += _count("deduped_queries")
            self._looped_passes += _count("looped_passes")
            self._looped_queries += _count("looped_queries")


__all__ = ["BatchStats"]

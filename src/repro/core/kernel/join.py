"""Vectorized join search: interned value postings + one-pass scoring.

The scalar :class:`~repro.baselines.join_search.JoinTableSearch` keeps
dict postings of ``value -> {(table, column)}`` and loops candidate
columns in Python.  This module compiles the lake into a
:class:`JoinCorpusIndex`: every normalized cell value is interned into
a sorted string vocabulary (int32 value ids), and a CSR posting array
maps each value id to the global column positions containing it.  A
query column then scores *all* candidate columns in one pass:
``searchsorted`` to resolve its values, one gather of the hit values'
postings, one ``bincount`` for per-column intersection sizes, and one
division for containment (``|q & t| / |q|``) or Jaccard
(``|q & t| / |q u t|``).  Only columns sharing at least one value with
the query are ever touched — the posting-driven shortlist the scalar
baseline's candidate set provides, without the Python loops.

Cell canonicalization is shared with the scalar baseline
(:func:`repro.baselines.join_search.normalize_cell`), including the
opt-in ``fold_numeric`` folding, so both paths intern identical value
sets — every score is an int/int division over identical integers and
parity is bit-exact.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.join_search import (
    JOIN_MODES,
    normalize_cell,
    query_value_sets,
)
from repro.core.kernel.engine import _concat_ranges
from repro.core.query import Query
from repro.core.result import ResultSet
from repro.datalake.lake import DataLake
from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph


class JoinCorpusIndex:
    """Read-only interned value postings over the lake's columns.

    Layout
    ------
    ``vocab``           sorted unique normalized values (numpy unicode)
    ``post_offset``     ``len == len(vocab) + 1`` CSR offsets
    ``post_cols``       global column positions, grouped by value id
    ``col_table[c]``    owning table position of global column ``c``
    ``col_sizes[c]``    value-set cardinality of column ``c``
    ``table_ids[t]``    table id of position ``t``

    Columns whose value sets are empty still occupy a position (sizes
    0, no postings) so column numbering matches the lake.
    """

    def __init__(
        self,
        table_ids: List[str],
        col_table: np.ndarray,
        col_sizes: np.ndarray,
        vocab: np.ndarray,
        post_offset: np.ndarray,
        post_cols: np.ndarray,
        fold_numeric: bool,
    ):
        self.table_ids = table_ids
        self.ids_array = np.asarray(table_ids, dtype=np.str_)
        self.position_of = {tid: t for t, tid in enumerate(table_ids)}
        self.col_table = col_table
        self.col_sizes = col_sizes
        self.vocab = vocab
        self.post_offset = post_offset
        self.post_lengths = np.diff(post_offset)
        self.post_cols = post_cols
        self.fold_numeric = fold_numeric

    @property
    def num_tables(self) -> int:
        return len(self.table_ids)

    @property
    def num_columns(self) -> int:
        return len(self.col_table)

    def nbytes(self) -> int:
        return int(
            self.col_table.nbytes
            + self.col_sizes.nbytes
            + self.vocab.nbytes
            + self.post_offset.nbytes
            + self.post_cols.nbytes
        )


def compile_join_index(
    lake: DataLake, fold_numeric: bool = False
) -> JoinCorpusIndex:
    """Intern every normalized cell value and build the CSR postings."""
    table_ids: List[str] = []
    col_table: List[int] = []
    value_sets: List[FrozenSet[str]] = []
    for position, table in enumerate(lake):
        table_ids.append(table.table_id)
        for column in range(table.num_columns):
            values = frozenset(
                v
                for v in (
                    normalize_cell(cell, fold_numeric)
                    for cell in table.column(column)
                )
                if v is not None
            )
            col_table.append(position)
            value_sets.append(values)
    vocabulary = sorted(set().union(*value_sets)) if value_sets else []
    id_of = {value: i for i, value in enumerate(vocabulary)}
    col_sizes = np.asarray(
        [len(values) for values in value_sets], dtype=np.int64
    )
    value_ids: List[int] = []
    posting_cols: List[int] = []
    for column, values in enumerate(value_sets):
        for value in values:
            value_ids.append(id_of[value])
            posting_cols.append(column)
    ids = np.asarray(value_ids, dtype=np.int64)
    cols = np.asarray(posting_cols, dtype=np.int32)
    order = np.argsort(ids, kind="stable")
    post_cols = cols[order]
    counts = np.bincount(ids, minlength=len(vocabulary))
    post_offset = np.zeros(len(vocabulary) + 1, dtype=np.int64)
    np.cumsum(counts, out=post_offset[1:])
    return JoinCorpusIndex(
        table_ids=table_ids,
        col_table=np.asarray(col_table, dtype=np.int64),
        col_sizes=col_sizes,
        vocab=np.asarray(vocabulary, dtype=np.str_),
        post_offset=post_offset,
        post_cols=post_cols,
        fold_numeric=fold_numeric,
    )


def _resolve_value_ids(
    index: JoinCorpusIndex, values: np.ndarray
) -> np.ndarray:
    """Map query values onto vocab ids, dropping out-of-vocab values."""
    if len(index.vocab) == 0 or len(values) == 0:
        return np.zeros(0, dtype=np.int64)
    ids = np.searchsorted(index.vocab, values)
    in_range = ids < len(index.vocab)
    hits = np.zeros(len(values), dtype=bool)
    hits[in_range] = index.vocab[ids[in_range]] == values[in_range]
    return ids[hits].astype(np.int64)


class VectorizedJoinSearchEngine:
    """Whole-lake joinability scoring with scalar-baseline parity.

    Drop-in for :class:`~repro.baselines.join_search.JoinTableSearch`
    ``search``: identical scores (bit-exact — every score is the same
    int/int division) and ranking, plus ``candidates`` restriction for
    shard scatter and :meth:`search_batch` lane stacking.  The postings
    index is built lazily, invalidated whole on mutation, and rebuilt
    by :meth:`prepare` off the serve request path.
    """

    def __init__(
        self,
        lake: DataLake,
        graph: KnowledgeGraph,
        mode: str = "containment",
        fold_numeric: bool = False,
    ):
        if mode not in JOIN_MODES:
            raise ConfigurationError(f"unknown join mode: {mode!r}")
        if graph is None:
            raise ConfigurationError("join search requires a graph")
        self.lake = lake
        self.graph = graph
        self.mode = mode
        self.fold_numeric = fold_numeric
        self._lock = threading.RLock()
        self._compiled: Optional[JoinCorpusIndex] = None  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Index lifecycle
    # ------------------------------------------------------------------
    def index(self) -> JoinCorpusIndex:
        # Double-checked build: racy first read, build under the lock.
        compiled = self._compiled  # lint: disable=guarded-attr-outside-lock
        if compiled is None:
            with self._lock:
                if self._compiled is None:
                    self._compiled = compile_join_index(
                        self.lake, self.fold_numeric
                    )
                compiled = self._compiled
        return compiled

    def invalidate(self) -> None:
        """Drop the compiled postings; the next search recompiles."""
        with self._lock:
            self._compiled = None

    def invalidate_table(self, table_id: str) -> None:
        """Mutation hook: the interned vocabulary is corpus-global, so
        the whole index is dropped and rebuilt off the request path."""
        del table_id
        self.invalidate()

    def prepare(self) -> None:
        """Force the compile now (warm path / snapshot swap)."""
        self.index()

    def warm(self) -> None:
        self.prepare()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _column_scores(
        self, index: JoinCorpusIndex, query_column: FrozenSet[str]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(candidate columns, their scores) for one query column."""
        values = np.asarray(sorted(query_column), dtype=np.str_)
        ids = _resolve_value_ids(index, values)
        if len(ids) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, np.zeros(0, dtype=np.float64)
        positions = _concat_ranges(
            index.post_offset[ids], index.post_lengths[ids]
        )
        intersections = np.bincount(
            index.post_cols[positions], minlength=index.num_columns
        )
        candidates = np.nonzero(intersections)[0]
        overlap = intersections[candidates]
        query_size = len(query_column)
        if self.mode == "jaccard":
            union = query_size + index.col_sizes[candidates] - overlap
            scores = overlap / union
        else:
            scores = overlap / query_size
        return candidates, scores.astype(np.float64, copy=False)

    def _collect(
        self,
        index: JoinCorpusIndex,
        column_best: np.ndarray,
        candidates: Optional[Iterable[str]],
        k: Optional[int],
    ) -> ResultSet:
        """Fold per-column bests into per-table results."""
        hit_columns = np.nonzero(column_best > 0.0)[0]
        table_best = np.zeros(index.num_tables, dtype=np.float64)
        np.maximum.at(
            table_best, index.col_table[hit_columns],
            column_best[hit_columns],
        )
        if candidates is not None:
            keep = np.zeros(index.num_tables, dtype=bool)
            for table_id in candidates:
                position = index.position_of.get(table_id)
                if position is not None:
                    keep[position] = True
            table_best[~keep] = 0.0
        return ResultSet.from_arrays(table_best, index.ids_array, k)

    def search(
        self,
        query: Query,
        k: Optional[int] = None,
        candidates: Optional[Iterable[str]] = None,
    ) -> ResultSet:
        """Rank tables by their best query-column overlap."""
        index = self.index()
        query_columns = [
            c
            for c in query_value_sets(query, self.graph, self.fold_numeric)
            if c
        ]
        if not query_columns or index.num_columns == 0:
            return ResultSet([])
        column_best = np.zeros(index.num_columns, dtype=np.float64)
        for query_column in query_columns:
            hit, scores = self._column_scores(index, query_column)
            if len(hit):
                np.maximum.at(column_best, hit, scores)
        return self._collect(index, column_best, candidates, k)

    def search_batch(
        self,
        queries: Sequence[Query],
        k: Optional[int] = None,
        candidates: Optional[Sequence[Optional[Iterable[str]]]] = None,
        batch_stats=None,
    ) -> List[ResultSet]:
        """Score a micro-batch with one stacked postings pass.

        All distinct queries' column value sets are concatenated into
        one ``searchsorted`` + one postings gather + one segmented
        ``bincount``; per-query folding then reads its own segment
        rows, so results are bit-identical to sequential
        :meth:`search`.  Identical ``(tuples, candidates)`` jobs are
        scored once.
        """
        queries = list(queries)
        if candidates is None:
            cand_lists: List[Optional[List[str]]] = [None] * len(queries)
        else:
            cand_lists = [
                None if cands is None else list(cands)
                for cands in candidates
            ]
        if not queries:
            return []
        index = self.index()
        job_of: Dict[Tuple, int] = {}
        jobs: List[Tuple[Query, Optional[List[str]]]] = []
        fanout: List[int] = []
        for query, cands in zip(queries, cand_lists):
            key = (
                query.tuples,
                None if cands is None else tuple(dict.fromkeys(cands)),
            )
            slot = job_of.get(key)
            if slot is None:
                slot = len(jobs)
                job_of[key] = slot
                jobs.append((query, cands))
            fanout.append(slot)
        if batch_stats is not None:
            batch_stats.record_batched(len(queries), len(jobs))
        # One stacked pass: segment s is one (job, query column) lane.
        job_columns: List[List[FrozenSet[str]]] = [
            [
                c
                for c in query_value_sets(
                    query, self.graph, self.fold_numeric
                )
                if c
            ]
            for query, _ in jobs
        ]
        segment_sets: List[FrozenSet[str]] = []
        segment_range: List[Tuple[int, int]] = []
        for columns in job_columns:
            start = len(segment_sets)
            segment_sets.extend(columns)
            segment_range.append((start, len(segment_sets)))
        resolved: List[ResultSet] = []
        if segment_sets and index.num_columns:
            value_arrays = [
                np.asarray(sorted(column), dtype=np.str_)
                for column in segment_sets
            ]
            lengths = np.asarray(
                [len(a) for a in value_arrays], dtype=np.int64
            )
            stacked = (
                np.concatenate(value_arrays)
                if len(value_arrays)
                else np.zeros(0, dtype=np.str_)
            )
            segment_of = np.repeat(
                np.arange(len(value_arrays), dtype=np.int64), lengths
            )
            ids = np.searchsorted(index.vocab, stacked)
            in_range = ids < len(index.vocab)
            hits = np.zeros(len(stacked), dtype=bool)
            if len(index.vocab):
                hits[in_range] = (
                    index.vocab[ids[in_range]] == stacked[in_range]
                )
            ids = ids[hits].astype(np.int64)
            hit_segments = segment_of[hits]
            positions = _concat_ranges(
                index.post_offset[ids], index.post_lengths[ids]
            )
            posting_segments = np.repeat(
                hit_segments, index.post_lengths[ids]
            )
            flat = (
                posting_segments * np.int64(index.num_columns)
                + index.post_cols[positions]
            )
            intersections = np.bincount(
                flat,
                minlength=len(segment_sets) * index.num_columns,
            ).reshape(len(segment_sets), index.num_columns)
        else:
            intersections = np.zeros(
                (len(segment_sets), max(1, index.num_columns)),
                dtype=np.int64,
            )
        for (query, cands), columns, (start, stop) in zip(
            jobs, job_columns, segment_range
        ):
            if not columns or index.num_columns == 0:
                resolved.append(ResultSet([]))
                continue
            column_best = np.zeros(index.num_columns, dtype=np.float64)
            for lane, query_column in zip(range(start, stop), columns):
                overlap_row = intersections[lane]
                hit = np.nonzero(overlap_row)[0]
                if not len(hit):
                    continue
                overlap = overlap_row[hit]
                query_size = len(query_column)
                if self.mode == "jaccard":
                    union = (
                        query_size + index.col_sizes[hit] - overlap
                    )
                    scores = overlap / union
                else:
                    scores = overlap / query_size
                np.maximum.at(
                    column_best, hit,
                    scores.astype(np.float64, copy=False),
                )
            resolved.append(self._collect(index, column_best, cands, k))
        return [resolved[slot] for slot in fanout]

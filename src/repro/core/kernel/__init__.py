"""Vectorized scoring kernel: columnar corpus index + batched SemRel.

The package has two halves:

* :mod:`repro.core.kernel.index` — the compiled, read-only
  :class:`CorpusIndex` (interned entity ids, columnar per-table entity
  grids, type bitmaps for popcount Jaccard, stacked unit embeddings for
  matmul cosine, memoized similarity rows);
* :mod:`repro.core.kernel.engine` — the
  :class:`VectorizedTableSearchEngine`, a drop-in scalar-engine
  replacement evaluating Algorithm 1 with array reductions, score-parity
  to <= 1e-9.

Select it with ``Thetis(..., engine_kind="vectorized")`` or
``--engine vectorized`` on the CLI; see ``docs/performance.md`` for the
memory layout and when each engine wins.
"""

from repro.core.kernel.batchstats import BatchStats
from repro.core.kernel.engine import (
    ENGINE_KINDS,
    VectorizedTableSearchEngine,
    engine_class,
)
from repro.core.kernel.index import (
    DEFAULT_ROW_CACHE_SIZE,
    CorpusIndex,
    SimilarityKernel,
    TableView,
    compile_kernel,
)
from repro.core.kernel.join import (
    JoinCorpusIndex,
    VectorizedJoinSearchEngine,
    compile_join_index,
)
from repro.core.kernel.prefilter import PrefilterStats
from repro.core.kernel.segments import (
    SegmentedCorpusIndex,
    SegmentedIndexStats,
)
from repro.core.kernel.storage import (
    inspect_index,
    load_index,
    save_index,
)
from repro.core.kernel.union import (
    UNION_ENCODERS,
    UnionCorpusIndex,
    VectorizedUnionSearchEngine,
    compile_union_index,
)

__all__ = [
    "ENGINE_KINDS",
    "BatchStats",
    "CorpusIndex",
    "DEFAULT_ROW_CACHE_SIZE",
    "JoinCorpusIndex",
    "PrefilterStats",
    "SegmentedCorpusIndex",
    "SegmentedIndexStats",
    "SimilarityKernel",
    "TableView",
    "UNION_ENCODERS",
    "UnionCorpusIndex",
    "VectorizedJoinSearchEngine",
    "VectorizedTableSearchEngine",
    "VectorizedUnionSearchEngine",
    "compile_kernel",
    "compile_join_index",
    "compile_union_index",
    "engine_class",
    "inspect_index",
    "load_index",
    "save_index",
]

"""Bounded, thread-safe caches shared by the scoring substrate.

Section 7.3 shows that pairwise-similarity evaluation dominates query
cost.  The engine used to memoize similarities in a throw-away dict per
``search()`` call, so repeated queries over the same corpus re-paid the
dominant cost every time.  This module provides the persistent
replacement:

* :class:`LRUCache` — a generic bounded least-recently-used cache with
  hit/miss/eviction counters, safe under concurrent access (the
  parallel engine's thread workers share one instance);
* :class:`SimilarityCache` — a bounded memo specialized for pairwise
  entity similarities, tuned for the read-dominated hot path: lock-free
  GIL-atomic reads, locked writes, insertion-order eviction.  When the
  wrapped ``sigma`` declares itself symmetric the key is canonicalized
  to the *unordered* pair, so ``sigma(a, b)`` and ``sigma(b, a)`` share
  one entry and one underlying evaluation.

Both caches live for the lifetime of the engine that owns them and are
bounded, so long-running services over dynamic lakes neither re-pay
the similarity cost per query nor leak memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Tuple

from repro.exceptions import ConfigurationError
from repro.similarity.base import EntitySimilarity

#: Default bound for pairwise-similarity entries (two interned strings
#: and a float per entry, so even the default is modest in memory).
DEFAULT_SIMILARITY_CACHE_SIZE = 1_000_000

#: Default bound for per-table view caches (entity grids / counters).
DEFAULT_VIEW_CACHE_SIZE = 100_000

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of one cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when idle)."""
        if self.hits + self.misses == 0:
            return 0.0
        return self.hits / (self.hits + self.misses)

    def format_row(self) -> str:
        """One-line human-readable summary."""
        return (
            f"size {self.size}/{self.maxsize}  hits {self.hits}  "
            f"misses {self.misses}  evictions {self.evictions}  "
            f"hit rate {self.hit_rate:.1%}"
        )


class LRUCache:
    """A bounded least-recently-used mapping with usage counters.

    All operations take an internal lock, so one instance may be shared
    by the parallel engine's thread workers.  Lookups that miss and the
    subsequent :meth:`put` are *not* one atomic unit — two threads may
    both compute a value for the same key — but the cache stays
    consistent and the duplicated work is benign for pure functions,
    which is all the engine stores here.
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ConfigurationError(
                f"cache maxsize must be >= 1, got {maxsize}"
            )
        self._maxsize = int(maxsize)
        self._lock = threading.RLock()
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value without touching recency or counters."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the least recently used beyond bound."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return ``key``'s value (``default`` when absent)."""
        with self._lock:
            return self._data.pop(key, default)

    def clear(self) -> None:
        """Drop every entry; counters keep accumulating."""
        with self._lock:
            self._data.clear()

    def snapshot_items(self) -> list:
        """A point-in-time copy of the entries, oldest first.

        Serving snapshots use this to seed a fresh engine's caches from
        the generation being replaced, so an O(delta) lake mutation does
        not cold-start every per-table memo.  Recency order is
        preserved, so replaying the items into another cache keeps the
        same eviction candidates.
        """
        with self._lock:
            return list(self._data.items())

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        """Snapshot the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self._maxsize,
            )

    # Locks are not picklable; process-backend workers receive a copy
    # of the owning engine, so carry the entries and rebuild the lock.
    def __getstate__(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "maxsize": self._maxsize,
                "items": list(self._data.items()),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._maxsize = state["maxsize"]
        self._data = OrderedDict(state["items"])
        self._lock = threading.RLock()
        self._hits = state["hits"]
        self._misses = state["misses"]
        self._evictions = state["evictions"]


class SimilarityCache:
    """Persistent bounded memo of pairwise entity similarities.

    Parameters
    ----------
    sigma:
        The underlying :class:`~repro.similarity.base.EntitySimilarity`.
    maxsize:
        Entry bound.

    When ``sigma.is_symmetric`` the key is the *unordered* pair — the
    lexicographically smaller entity first — so the two orientations of
    a pair share a single evaluation.  Asymmetric similarities keep the
    ordered key and are never conflated.

    This cache sits on the hottest path in the system (millions of
    lookups per query), so unlike :class:`LRUCache` its *read* path
    takes no lock: CPython dict reads are atomic under the GIL, and
    writes/evictions serialize on an internal lock.  Eviction drops the
    oldest-*inserted* entry (dicts preserve insertion order) rather
    than the least-recently-*used* one — tracking read recency would
    cost a locked reorder per lookup, more than the average similarity
    evaluation it protects.  The hit counter is likewise maintained
    without locking, so under concurrent access it is statistically
    accurate rather than exact; misses and evictions are exact.
    """

    def __init__(
        self,
        sigma: EntitySimilarity,
        maxsize: int = DEFAULT_SIMILARITY_CACHE_SIZE,
    ):
        if maxsize < 1:
            raise ConfigurationError(
                f"cache maxsize must be >= 1, got {maxsize}"
            )
        self.sigma = sigma
        self.symmetric = bool(getattr(sigma, "is_symmetric", False))
        self._maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._data: Dict[Tuple[str, str], float] = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        # Intentionally racy read: dict length is GIL-atomic and the
        # value is advisory (sizing displays), so it skips the lock.
        return len(self._data)  # lint: disable=guarded-attr-outside-lock

    def key_of(self, a: str, b: str) -> Tuple[str, str]:
        """The cache key for the pair (canonicalized when symmetric)."""
        if self.symmetric and b < a:
            return (b, a)
        return (a, b)

    def similarity(self, a: str, b: str, profile=None) -> float:
        """Return ``sigma(a, b)``, evaluating at most once per key.

        When a :class:`~repro.core.search.ScoringProfile` is passed,
        its ``similarity_calls`` counter is incremented for every
        lookup and ``similarity_misses`` only when the underlying
        ``sigma`` actually ran (the Section 7.3 cost split).
        """
        key = (b, a) if self.symmetric and b < a else (a, b)
        # Intentionally racy read — the lock-free fast path this cache
        # exists for: CPython dict reads are GIL-atomic, and the worst
        # race outcome is one duplicated pure-sigma evaluation.
        value = self._data.get(key, _MISSING)  # lint: disable=guarded-attr-outside-lock
        if value is _MISSING:
            value = self.sigma.similarity(a, b)
            with self._lock:
                self._data[key] = value
                self._misses += 1
                data = self._data
                while len(data) > self._maxsize:
                    del data[next(iter(data))]
                    self._evictions += 1
            if profile is not None:
                profile.similarity_calls += 1
                profile.similarity_misses += 1
            return value
        # Intentionally racy increment: hit counts are statistics, not
        # invariants (documented above); exactness is not worth a lock
        # per lookup on the hottest path in the system.
        self._hits += 1  # lint: disable=guarded-attr-outside-lock
        if profile is not None:
            profile.similarity_calls += 1
        return value

    __call__ = similarity

    def clear(self) -> None:
        """Drop every cached pair (call when ``sigma`` itself changes)."""
        with self._lock:
            self._data = {}

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self._maxsize,
            )

    # Locks are not picklable; drop and rebuild (see LRUCache).
    def __getstate__(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "sigma": self.sigma,
                "symmetric": self.symmetric,
                "maxsize": self._maxsize,
                "data": dict(self._data),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.sigma = state["sigma"]
        self.symmetric = state["symmetric"]
        self._maxsize = state["maxsize"]
        self._data = state["data"]
        self._lock = threading.Lock()
        self._hits = state["hits"]
        self._misses = state["misses"]
        self._evictions = state["evictions"]


def format_cache_stats(stats: Dict[str, CacheStats]) -> str:
    """Render a ``name -> CacheStats`` mapping as an aligned report."""
    width = max((len(name) for name in stats), default=0)
    return "\n".join(
        f"{name:<{width}}  {snapshot.format_row()}"
        for name, snapshot in stats.items()
    )

"""Ranked search results and result-set combinators.

Besides plain ranking, the module implements the paper's
*complementation* scheme (STSTC/STSEC, Section 7.2): take the top 50 %
of two engines' result lists and merge them, combining exact keyword
matches with semantically related tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

import numpy as np


@dataclass(frozen=True, order=True)
class ScoredTable:
    """A table identifier with its relevance score."""

    score: float
    table_id: str

    def __repr__(self) -> str:
        return f"ScoredTable({self.table_id!r}, {self.score:.4f})"


class ResultSet:
    """An immutable descending ranking of scored tables.

    Ties break by ascending table id so rankings are deterministic
    across runs and platforms.
    """

    def __init__(self, scored: Iterable[ScoredTable]):
        self._ranked: List[ScoredTable] = sorted(
            scored, key=lambda st: (-st.score, st.table_id)
        )
        self._scores: Dict[str, float] = {
            st.table_id: st.score for st in self._ranked
        }

    @classmethod
    def from_scores(cls, scores: Dict[str, float]) -> "ResultSet":
        """Build from a ``table_id -> score`` dictionary."""
        return cls(ScoredTable(score, tid) for tid, score in scores.items())

    @classmethod
    def from_arrays(
        cls,
        scores: np.ndarray,
        table_ids: np.ndarray,
        k: Optional[int] = None,
    ) -> "ResultSet":
        """Rank positive entries of parallel arrays, numpy-side.

        ``scores[i]`` pairs with ``table_ids[i]``; non-positive scores
        are dropped, matching every engine's "no overlap, no result"
        contract.  Sorting by ``(-score, table_id)`` with ``lexsort``
        reproduces the constructor's Python sort exactly, and with
        ``k`` only the winners are materialized as
        :class:`ScoredTable` objects — bit-identical to building the
        full set and calling :meth:`top`, without the per-loser object
        and comparison cost.
        """
        hits = np.nonzero(scores > 0.0)[0]
        order = np.lexsort((table_ids[hits], -scores[hits]))
        if k is not None:
            order = order[: max(0, k)]
        winners = hits[order]
        return cls(
            ScoredTable(float(scores[i]), str(table_ids[i]))
            for i in winners
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ranked)

    def __iter__(self) -> Iterator[ScoredTable]:
        return iter(self._ranked)

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._scores

    def score_of(self, table_id: str) -> Optional[float]:
        """Return the score of ``table_id`` or ``None`` if absent."""
        return self._scores.get(table_id)

    def top(self, k: int) -> "ResultSet":
        """Return the ``k`` best results as a new set."""
        return ResultSet(self._ranked[: max(0, k)])

    def table_ids(self, k: Optional[int] = None) -> List[str]:
        """Return ranked table ids, optionally truncated to ``k``."""
        ranked = self._ranked if k is None else self._ranked[: max(0, k)]
        return [st.table_id for st in ranked]

    def scores(self) -> Dict[str, float]:
        """Return a ``table_id -> score`` dictionary."""
        return dict(self._scores)

    # ------------------------------------------------------------------
    def difference(self, other: "ResultSet", k: Optional[int] = None) -> Set[str]:
        """Tables in our top-``k`` missing from the other's top-``k``.

        This is the result-set difference the paper uses to show that
        semantic search retrieves a disjoint set from BM25.
        """
        ours = set(self.table_ids(k))
        theirs = set(other.table_ids(k))
        return ours - theirs

    def complement(self, other: "ResultSet", k: int, fraction: float = 0.5) -> "ResultSet":
        """Merge the top ``fraction`` of two rankings into a top-``k`` list.

        Following Section 7.2: the top 50 % of each method's top-``k``
        are interleaved (ours first on rank ties), deduplicated, then the
        remainder of each ranking fills the list up to ``k``.  Scores are
        re-assigned as descending ranks so NDCG machinery keeps working
        on the merged list.
        """
        take = max(1, int(k * fraction))
        merged: List[str] = []
        seen: Set[str] = set()

        def extend(ids: Sequence[str]) -> None:
            for table_id in ids:
                if len(merged) >= k:
                    return
                if table_id not in seen:
                    seen.add(table_id)
                    merged.append(table_id)

        ours = self.table_ids()
        theirs = other.table_ids()
        # Interleave the two head segments rank by rank.
        for rank in range(take):
            if rank < len(ours):
                extend([ours[rank]])
            if rank < len(theirs):
                extend([theirs[rank]])
        # Fill with the tails.
        extend(ours[take:])
        extend(theirs[take:])
        return ResultSet(
            ScoredTable(float(len(merged) - i), tid) for i, tid in enumerate(merged)
        )

"""Core semantic table search: queries, SemRel scoring, Algorithm 1."""

from repro.core.aggregation import (
    QueryAggregation,
    RowAggregation,
    TupleSemantics,
)
from repro.core.assignment import assignment_score, max_assignment
from repro.core.cache import (
    DEFAULT_SIMILARITY_CACHE_SIZE,
    DEFAULT_VIEW_CACHE_SIZE,
    CacheStats,
    LRUCache,
    SimilarityCache,
    format_cache_stats,
)
from repro.core.explain import (
    EntityExplanation,
    TableExplanation,
    TupleExplanation,
    explain_table,
)
from repro.core.fusion import (
    LogisticFusion,
    comb_mnz,
    comb_sum,
    reciprocal_rank_fusion,
)
from repro.core.kernel import (
    ENGINE_KINDS,
    CorpusIndex,
    VectorizedTableSearchEngine,
    engine_class,
)
from repro.core.mappings import MappingKind, RelevantMapping, best_mapping
from repro.core.relaxation import (
    RelaxationOutcome,
    RelaxingSearcher,
    drop_least_informative,
    split_tuples,
)
from repro.core.parallel import ParallelSearchEngine, merge_topk
from repro.core.topk import table_score_upper_bound, topk_search
from repro.core.query import EntityTuple, Query
from repro.core.result import ResultSet, ScoredTable
from repro.core.search import ScoringProfile, TableScore, TableSearchEngine
from repro.core.semrel import (
    distance_to_similarity,
    semrel_tuple_score,
    weighted_distance,
)

__all__ = [
    "Query",
    "EntityTuple",
    "TableSearchEngine",
    "VectorizedTableSearchEngine",
    "CorpusIndex",
    "ENGINE_KINDS",
    "engine_class",
    "ParallelSearchEngine",
    "merge_topk",
    "LRUCache",
    "SimilarityCache",
    "CacheStats",
    "format_cache_stats",
    "DEFAULT_SIMILARITY_CACHE_SIZE",
    "DEFAULT_VIEW_CACHE_SIZE",
    "TableScore",
    "ScoringProfile",
    "ResultSet",
    "ScoredTable",
    "RowAggregation",
    "QueryAggregation",
    "TupleSemantics",
    "MappingKind",
    "RelevantMapping",
    "best_mapping",
    "max_assignment",
    "assignment_score",
    "weighted_distance",
    "distance_to_similarity",
    "semrel_tuple_score",
    "explain_table",
    "TableExplanation",
    "TupleExplanation",
    "EntityExplanation",
    "topk_search",
    "table_score_upper_bound",
    "reciprocal_rank_fusion",
    "comb_sum",
    "comb_mnz",
    "LogisticFusion",
    "RelaxingSearcher",
    "RelaxationOutcome",
    "drop_least_informative",
    "split_tuples",
]

"""Rectangular assignment solver (the Hungarian Method of Section 5.1).

The query-to-column mapping ``tau`` maximizes the summed column-relevance
score under the constraint that each query entity maps to a distinct
column.  This module implements the O(n^2 m) shortest-augmenting-path
formulation of the Hungarian algorithm with dual potentials, operating
directly on rectangular matrices (rows <= columns after internal
padding).  Its output is verified against ``scipy.optimize`` in the test
suite but the library never depends on scipy at runtime for this path.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import SearchError

_INF = float("inf")


def _solve_min(cost: np.ndarray) -> List[int]:
    """Minimum-cost assignment for an ``n x m`` matrix with ``n <= m``.

    Returns ``assignment`` where ``assignment[i]`` is the column assigned
    to row ``i``.  Classic potentials-based Hungarian (e-maxx variant).
    """
    n, m = cost.shape
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)  # match[j] = row (1-based) assigned to column j
    way = [0] * (m + 1)
    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = [_INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = _INF
            j1 = 0
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(m + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1
    assignment = [-1] * n
    for j in range(1, m + 1):
        if match[j] != 0:
            assignment[match[j] - 1] = j - 1
    return assignment


def max_assignment(scores: Sequence[Sequence[float]]) -> Tuple[List[int], float]:
    """Maximum-score assignment of rows to distinct columns.

    Parameters
    ----------
    scores:
        A ``k x n`` matrix of non-negative scores (query entities by
        table columns).  When ``k > n`` the matrix is padded with zero
        columns, so surplus rows map to "no real column" and are reported
        as ``-1``.

    Returns
    -------
    assignment, total:
        ``assignment[i]`` is the column index for row ``i`` (or ``-1``
        when the row was assigned to a zero-padding column), and
        ``total`` is the summed score of the chosen real cells.
    """
    matrix = np.asarray(scores, dtype=np.float64)
    if matrix.ndim != 2:
        raise SearchError("scores must be a 2-D matrix")
    k, n = matrix.shape
    if k == 0 or n == 0:
        return [-1] * k, 0.0
    padded = matrix
    if k > n:
        padded = np.concatenate([matrix, np.zeros((k, k - n))], axis=1)
    assignment = _solve_min(-padded)
    total = 0.0
    result: List[int] = []
    for row, column in enumerate(assignment):
        if column >= n:
            result.append(-1)
        else:
            result.append(column)
            total += float(matrix[row, column])
    return result, total


def assignment_score(scores: Sequence[Sequence[float]]) -> float:
    """Return only the optimal total of :func:`max_assignment`."""
    _, total = max_assignment(scores)
    return total

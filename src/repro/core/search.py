"""The exact semantic table search engine (Algorithm 1, Section 5.3).

For every table the engine:

1. maps each query tuple's entities to distinct table columns with the
   Hungarian method, maximizing summed column-relevance (Section 5.1);
2. scores each table row against the query tuple through those columns;
3. aggregates row scores per query entity (max or avg, line 13);
4. converts the informativeness-weighted Euclidean distance from the
   ideal point into the tuple's SemRel score (line 14, Eq. 2-3);
5. averages tuple scores into the table score (line 15, Eq. 1).

The engine memoizes pairwise similarities per search call and records a
timing profile separating the column-mapping cost from total scoring
cost (the Section 7.3 measurement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.aggregation import (
    QueryAggregation,
    RowAggregation,
    TupleSemantics,
)
from repro.core.assignment import max_assignment
from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.core.semrel import semrel_tuple_score
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.linking.mapping import EntityMapping
from repro.similarity.base import EntitySimilarity
from repro.similarity.informativeness import UniformInformativeness

EntityGrid = List[List[Optional[str]]]


@dataclass
class ScoringProfile:
    """Accumulated timing instrumentation for Section 7.3.

    ``mapping_seconds`` covers building the column-relevance matrix and
    solving the assignment (the cost of ``mu_{T,Q}``); ``total_seconds``
    covers full table scoring.
    """

    mapping_seconds: float = 0.0
    total_seconds: float = 0.0
    tables_scored: int = 0
    similarity_calls: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.mapping_seconds = 0.0
        self.total_seconds = 0.0
        self.tables_scored = 0
        self.similarity_calls = 0

    @property
    def mapping_fraction(self) -> float:
        """Fraction of scoring time spent on the column mapping."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.mapping_seconds / self.total_seconds

    @property
    def mean_table_seconds(self) -> float:
        """Mean wall-clock seconds to score one table."""
        if self.tables_scored == 0:
            return 0.0
        return self.total_seconds / self.tables_scored


@dataclass
class TableScore:
    """Score of one table with per-query-tuple breakdown."""

    table_id: str
    score: float
    tuple_scores: List[float] = field(default_factory=list)
    relevant: bool = True


class TableSearchEngine:
    """Brute-force semantic table search over a semantic data lake.

    Parameters
    ----------
    lake:
        The table repository to search.
    mapping:
        The entity linking ``Phi`` between lake cells and KG entities.
    sigma:
        Pairwise entity similarity (types or embeddings).
    informativeness:
        Query-entity weights ``I``; defaults to uniform weights.
    row_aggregation:
        Row-score collapse policy (paper default: max).
    query_aggregation:
        Tuple-score combination (paper: mean, Eq. 1).
    tuple_semantics:
        Which formalization scores a query tuple against the table:
        Algorithm 1's per-entity aggregation (default) or Equation 1's
        per-row tuple-to-tuple scoring.
    drop_irrelevant:
        When true (default), a table in which *no* query entity achieves
        any positive similarity is treated as irrelevant (SemRel = 0)
        and omitted from results, per Problem 2.2's requirement that
        only tables with positive relevance be returned.
    """

    def __init__(
        self,
        lake: DataLake,
        mapping: EntityMapping,
        sigma: EntitySimilarity,
        informativeness=None,
        row_aggregation: RowAggregation = RowAggregation.MAX,
        query_aggregation: QueryAggregation = QueryAggregation.MEAN,
        tuple_semantics: TupleSemantics = TupleSemantics.PER_ENTITY,
        drop_irrelevant: bool = True,
    ):
        self.lake = lake
        self.mapping = mapping
        self.sigma = sigma
        self.informativeness = (
            informativeness if informativeness is not None else UniformInformativeness()
        )
        self.row_aggregation = row_aggregation
        self.query_aggregation = query_aggregation
        self.tuple_semantics = tuple_semantics
        self.drop_irrelevant = drop_irrelevant
        self.profile = ScoringProfile()
        self._grids: Dict[str, EntityGrid] = {}
        self._column_counts: Dict[str, List[Dict[str, int]]] = {}

    # ------------------------------------------------------------------
    # Table views
    # ------------------------------------------------------------------
    def _entity_grid(self, table: Table) -> EntityGrid:
        """Rows x columns grid of linked entity URIs (None = unlinked)."""
        grid = self._grids.get(table.table_id)
        if grid is None:
            grid = [
                self.mapping.entity_row(table.table_id, row, table.num_columns)
                for row in range(table.num_rows)
            ]
            self._grids[table.table_id] = grid
        return grid

    def _column_entity_counts(self, table: Table) -> List[Dict[str, int]]:
        """Per column, the multiset of linked entities as a counter."""
        counts = self._column_counts.get(table.table_id)
        if counts is None:
            grid = self._entity_grid(table)
            counts = [dict() for _ in range(table.num_columns)]
            for row in grid:
                for column, uri in enumerate(row):
                    if uri is not None:
                        counter = counts[column]
                        counter[uri] = counter.get(uri, 0) + 1
            self._column_counts[table.table_id] = counts
        return counts

    def invalidate_cache(self) -> None:
        """Drop cached table views (call after mutating lake or mapping)."""
        self._grids.clear()
        self._column_counts.clear()

    def invalidate_table(self, table_id: str) -> None:
        """Drop the cached view of one table (dynamic-lake updates)."""
        self._grids.pop(table_id, None)
        self._column_counts.pop(table_id, None)

    # ------------------------------------------------------------------
    # Similarity with memoization
    # ------------------------------------------------------------------
    def _memo_similarity(
        self, memo: Dict[Tuple[str, str], float], a: str, b: str
    ) -> float:
        key = (a, b)
        cached = memo.get(key)
        if cached is None:
            cached = self.sigma.similarity(a, b)
            memo[key] = cached
            self.profile.similarity_calls += 1
        return cached

    # ------------------------------------------------------------------
    # Column mapping (Section 5.1)
    # ------------------------------------------------------------------
    def column_mapping(
        self,
        query_tuple: Tuple[str, ...],
        table: Table,
        memo: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> List[int]:
        """Return ``tau``: per query entity, the assigned column (-1 = none).

        The column-relevance matrix ``S[i][j] = sum over column j of
        sigma(e_i, cell entity)`` is maximized by the Hungarian method
        under the one-entity-per-column constraint.
        """
        if memo is None:
            memo = {}
        counts = self._column_entity_counts(table)
        scores = [
            [
                sum(
                    count * self._memo_similarity(memo, query_entity, uri)
                    for uri, count in counter.items()
                )
                for counter in counts
            ]
            for query_entity in query_tuple
        ]
        assignment, _ = max_assignment(scores)
        return assignment

    # ------------------------------------------------------------------
    # Scoring (Algorithm 1)
    # ------------------------------------------------------------------
    def score_table(
        self,
        query: Query,
        table: Table,
        memo: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> TableScore:
        """Compute SemRel(Q, T) with full per-tuple breakdown."""
        start = time.perf_counter()
        if memo is None:
            memo = {}
        grid = self._entity_grid(table)
        tuple_scores: List[float] = []
        any_signal = False
        for query_tuple in query:
            map_start = time.perf_counter()
            assignment = self.column_mapping(query_tuple, table, memo)
            self.profile.mapping_seconds += time.perf_counter() - map_start
            row_scores: List[List[float]] = []
            for row in grid:
                entity_scores: List[float] = []
                for position, query_entity in enumerate(query_tuple):
                    column = assignment[position]
                    target = row[column] if column >= 0 else None
                    if target is None:
                        entity_scores.append(0.0)
                    else:
                        entity_scores.append(
                            self._memo_similarity(memo, query_entity, target)
                        )
                row_scores.append(entity_scores)
            if self.tuple_semantics is TupleSemantics.PER_ROW:
                # Equation 1: score every row as a whole tuple, then
                # aggregate row scores (max = SemRel_MAX, avg = _AVG).
                if any(
                    score > 0.0 for row in row_scores for score in row
                ):
                    any_signal = True
                per_row = [
                    semrel_tuple_score(
                        query_tuple, row, self.informativeness
                    )
                    for row in row_scores
                ]
                tuple_scores.append(self.row_aggregation.aggregate(per_row))
                continue
            coordinates = self.row_aggregation.aggregate_columns(row_scores)
            if not coordinates:
                coordinates = [0.0] * len(query_tuple)
            if any(c > 0.0 for c in coordinates):
                any_signal = True
            tuple_scores.append(
                semrel_tuple_score(query_tuple, coordinates, self.informativeness)
            )
        score = self.query_aggregation.aggregate(tuple_scores)
        relevant = any_signal or not self.drop_irrelevant
        if not relevant:
            score = 0.0
        self.profile.total_seconds += time.perf_counter() - start
        self.profile.tables_scored += 1
        return TableScore(table.table_id, score, tuple_scores, relevant)

    def search(
        self,
        query: Query,
        k: Optional[int] = None,
        candidates: Optional[Iterable[str]] = None,
    ) -> ResultSet:
        """Rank (a subset of) the lake by SemRel against ``query``.

        Parameters
        ----------
        query:
            The entity-tuple query.
        k:
            Optional cut-off; ``None`` returns the full ranking of
            relevant tables.
        candidates:
            Optional iterable of table ids to restrict scoring to — this
            is how the LSH prefilter plugs in.
        """
        memo: Dict[Tuple[str, str], float] = {}
        if candidates is None:
            tables: Iterable[Table] = self.lake
        else:
            tables = (
                self.lake.get(table_id)
                for table_id in dict.fromkeys(candidates)
                if table_id in self.lake
            )
        scored: List[ScoredTable] = []
        for table in tables:
            # Tables without any linked entity can never be relevant.
            if self.drop_irrelevant and not self.mapping.entities_in_table(
                table.table_id
            ):
                continue
            result = self.score_table(query, table, memo)
            if result.relevant and result.score > 0.0:
                scored.append(ScoredTable(result.score, result.table_id))
        results = ResultSet(scored)
        if k is not None:
            results = results.top(k)
        return results

    def search_many(
        self,
        queries: Dict[str, Query],
        k: Optional[int] = None,
        candidates: Optional[Dict[str, Iterable[str]]] = None,
    ) -> Dict[str, ResultSet]:
        """Run a batch of queries sharing one similarity memo.

        Queries over the same corpus repeat most pairwise similarity
        evaluations; sharing the memo across the batch amortizes them
        (the experiment-harness access pattern).  Results are identical
        to per-query :meth:`search` calls.

        Parameters
        ----------
        queries:
            ``query_id -> Query``.
        k:
            Optional shared cut-off.
        candidates:
            Optional per-query candidate restriction keyed like
            ``queries`` (missing keys search the whole lake).
        """
        shared_memo: Dict[Tuple[str, str], float] = {}
        results: Dict[str, ResultSet] = {}
        for query_id, query in queries.items():
            restriction = (
                candidates.get(query_id) if candidates is not None else None
            )
            if restriction is None:
                tables: Iterable[Table] = self.lake
            else:
                tables = (
                    self.lake.get(tid)
                    for tid in dict.fromkeys(restriction)
                    if tid in self.lake
                )
            scored: List[ScoredTable] = []
            for table in tables:
                if self.drop_irrelevant and not (
                    self.mapping.entities_in_table(table.table_id)
                ):
                    continue
                outcome = self.score_table(query, table, shared_memo)
                if outcome.relevant and outcome.score > 0.0:
                    scored.append(
                        ScoredTable(outcome.score, outcome.table_id)
                    )
            ranked = ResultSet(scored)
            results[query_id] = ranked.top(k) if k is not None else ranked
        return results

"""The exact semantic table search engine (Algorithm 1, Section 5.3).

For every table the engine:

1. maps each query tuple's entities to distinct table columns with the
   Hungarian method, maximizing summed column-relevance (Section 5.1);
2. scores each table row against the query tuple through those columns;
3. aggregates row scores per query entity (max or avg, line 13);
4. converts the informativeness-weighted Euclidean distance from the
   ideal point into the tuple's SemRel score (line 14, Eq. 2-3);
5. averages tuple scores into the table score (line 15, Eq. 1).

Pairwise similarities are memoized in a persistent, bounded, thread-safe
:class:`~repro.core.cache.SimilarityCache` that survives across
``search()`` / ``search_many()`` / ``topk_search()`` calls, so repeated
queries over the same corpus amortize the dominant Section 7.3 cost.
The engine also records a timing profile separating the column-mapping
cost from total scoring cost (the Section 7.3 measurement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.aggregation import (
    QueryAggregation,
    RowAggregation,
    TupleSemantics,
)
from repro.core.assignment import max_assignment
from repro.core.cache import (
    DEFAULT_SIMILARITY_CACHE_SIZE,
    DEFAULT_VIEW_CACHE_SIZE,
    CacheStats,
    LRUCache,
    SimilarityCache,
)
from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.core.semrel import semrel_tuple_score
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.linking.mapping import EntityMapping
from repro.similarity.base import EntitySimilarity
from repro.similarity.informativeness import UniformInformativeness

EntityGrid = List[List[Optional[str]]]


@dataclass
class ScoringProfile:
    """Accumulated timing instrumentation for Section 7.3.

    ``mapping_seconds`` covers building the column-relevance matrix and
    solving the assignment (the cost of ``mu_{T,Q}``); ``total_seconds``
    covers full table scoring.  ``similarity_calls`` counts every
    pairwise-similarity *lookup* while ``similarity_misses`` counts only
    the lookups the cache could not answer (the ones that actually ran
    ``sigma``), so the cost report states similarity work accurately in
    the presence of caching.

    The vectorized engine reports through the same counters: each
    batched similarity-row lookup counts as one pairwise call per
    corpus entity (and, on a row-memo miss, one miss per corpus
    entity), so the call/miss split and ``--cache-stats`` stay
    meaningful under ``--engine vectorized`` even though no per-pair
    ``sigma`` call runs on the hot path.
    """

    mapping_seconds: float = 0.0
    total_seconds: float = 0.0
    tables_scored: int = 0
    similarity_calls: int = 0
    similarity_misses: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.mapping_seconds = 0.0
        self.total_seconds = 0.0
        self.tables_scored = 0
        self.similarity_calls = 0
        self.similarity_misses = 0

    def merge(self, other: "ScoringProfile") -> None:
        """Accumulate another profile (per-shard profiles of a parallel run)."""
        self.mapping_seconds += other.mapping_seconds
        self.total_seconds += other.total_seconds
        self.tables_scored += other.tables_scored
        self.similarity_calls += other.similarity_calls
        self.similarity_misses += other.similarity_misses

    @property
    def mapping_fraction(self) -> float:
        """Fraction of scoring time spent on the column mapping."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.mapping_seconds / self.total_seconds

    @property
    def mean_table_seconds(self) -> float:
        """Mean wall-clock seconds to score one table."""
        if self.tables_scored == 0:
            return 0.0
        return self.total_seconds / self.tables_scored

    @property
    def similarity_hit_rate(self) -> float:
        """Fraction of similarity lookups answered by the cache."""
        if self.similarity_calls == 0:
            return 0.0
        return 1.0 - self.similarity_misses / self.similarity_calls


@dataclass
class TableScore:
    """Score of one table with per-query-tuple breakdown."""

    table_id: str
    score: float
    tuple_scores: List[float] = field(default_factory=list)
    relevant: bool = True


class TableSearchEngine:
    """Brute-force semantic table search over a semantic data lake.

    Parameters
    ----------
    lake:
        The table repository to search.
    mapping:
        The entity linking ``Phi`` between lake cells and KG entities.
    sigma:
        Pairwise entity similarity (types or embeddings).
    informativeness:
        Query-entity weights ``I``; defaults to uniform weights.
    row_aggregation:
        Row-score collapse policy (paper default: max).
    query_aggregation:
        Tuple-score combination (paper: mean, Eq. 1).
    tuple_semantics:
        Which formalization scores a query tuple against the table:
        Algorithm 1's per-entity aggregation (default) or Equation 1's
        per-row tuple-to-tuple scoring.
    drop_irrelevant:
        When true (default), a table in which *no* query entity achieves
        any positive similarity is treated as irrelevant (SemRel = 0)
        and omitted from results, per Problem 2.2's requirement that
        only tables with positive relevance be returned.
    cache_size:
        Entry bound of the persistent pairwise-similarity cache.
    view_cache_size:
        Entry bound of the per-table view caches (entity grids and
        column counters); each cache holds at most this many tables.

    Notes
    -----
    *Thread safety.*  :meth:`search`, :meth:`search_many`,
    :meth:`score_table`, and :meth:`warm` are safe for concurrent
    reader threads over an unchanging lake/mapping: every shared cache
    (similarity, grids, column counters) is internally synchronized and
    scoring itself is pure.  The shared :attr:`profile` is the one
    exception — its counters are accumulated without a lock, so under
    concurrent readers they are best-effort (they may undercount, never
    corrupt).  Callers that need exact accounting pass a private
    :class:`ScoringProfile` per thread and merge, as the parallel
    engine does.  Mutations (``invalidate_table`` and friends) require
    external coordination — the serving layer swaps whole engine
    snapshots instead of mutating a live one.
    """

    def __init__(
        self,
        lake: DataLake,
        mapping: EntityMapping,
        sigma: EntitySimilarity,
        informativeness=None,
        row_aggregation: RowAggregation = RowAggregation.MAX,
        query_aggregation: QueryAggregation = QueryAggregation.MEAN,
        tuple_semantics: TupleSemantics = TupleSemantics.PER_ENTITY,
        drop_irrelevant: bool = True,
        cache_size: int = DEFAULT_SIMILARITY_CACHE_SIZE,
        view_cache_size: int = DEFAULT_VIEW_CACHE_SIZE,
    ):
        self.lake = lake
        self.mapping = mapping
        self.sigma = sigma
        self.informativeness = (
            informativeness if informativeness is not None else UniformInformativeness()
        )
        self.row_aggregation = row_aggregation
        self.query_aggregation = query_aggregation
        self.tuple_semantics = tuple_semantics
        self.drop_irrelevant = drop_irrelevant
        self.profile = ScoringProfile()
        self.similarity_cache = SimilarityCache(sigma, maxsize=cache_size)
        self._grids: LRUCache = LRUCache(view_cache_size)
        self._column_counts: LRUCache = LRUCache(view_cache_size)

    # ------------------------------------------------------------------
    # Table views
    # ------------------------------------------------------------------
    def _entity_grid(self, table: Table) -> EntityGrid:
        """Rows x columns grid of linked entity URIs (None = unlinked)."""
        grid = self._grids.get(table.table_id)
        if grid is None:
            grid = [
                self.mapping.entity_row(table.table_id, row, table.num_columns)
                for row in range(table.num_rows)
            ]
            self._grids.put(table.table_id, grid)
        return grid

    def _column_entity_counts(self, table: Table) -> List[Dict[str, int]]:
        """Per column, the multiset of linked entities as a counter."""
        counts = self._column_counts.get(table.table_id)
        if counts is None:
            grid = self._entity_grid(table)
            counts = [dict() for _ in range(table.num_columns)]
            for row in grid:
                for column, uri in enumerate(row):
                    if uri is not None:
                        counter = counts[column]
                        counter[uri] = counter.get(uri, 0) + 1
            self._column_counts.put(table.table_id, counts)
        return counts

    def warm(self, table_ids: Optional[Iterable[str]] = None) -> int:
        """Materialize the per-table views ahead of the first query.

        Builds the entity grid and column counters for every table (or
        the given subset), so a serving layer can finish its warm-up —
        and flip ``/readyz`` — before the first client query pays the
        view-construction cost.  Returns the number of tables warmed.
        """
        warmed = 0
        ids = self.lake.table_ids() if table_ids is None else table_ids
        for table_id in ids:
            table = self.lake.find(table_id)
            if table is None:
                continue
            self._column_entity_counts(table)  # builds the grid too
            warmed += 1
        return warmed

    def invalidate_cache(self, include_similarities: bool = False) -> None:
        """Drop cached table views (call after mutating lake or mapping).

        Pairwise similarities depend only on ``sigma`` — not on the
        lake — so they survive by default; pass
        ``include_similarities=True`` when the similarity itself (its
        graph or embedding store) changed.
        """
        self._grids.clear()
        self._column_counts.clear()
        if include_similarities:
            self.similarity_cache.clear()

    def invalidate_table(self, table_id: str) -> None:
        """Drop the cached view of one table (dynamic-lake updates)."""
        self._grids.pop(table_id, None)
        self._column_counts.pop(table_id, None)

    def seed_views_from(self, source: "TableSearchEngine") -> None:
        """Warm this engine's caches from another engine's.

        Serving snapshots clone the whole system per mutation; without
        seeding, every clone cold-starts its per-table views and its
        pairwise-similarity memo even though only O(delta) tables
        changed.  Grid and column-counter entries are copied (recency
        order preserved), and the :class:`SimilarityCache` is *shared*
        by reference — it is keyed by URI pairs, which are independent
        of lake membership, and it is internally synchronized, so
        generations can safely accumulate into one memo.  Callers then
        invalidate the mutated tables as usual, which pops exactly the
        stale entries.
        """
        for key, value in source._grids.snapshot_items():
            self._grids.put(key, value)
        for key, value in source._column_counts.snapshot_items():
            self._column_counts.put(key, value)
        self.similarity_cache = source.similarity_cache

    def cache_stats(self) -> Dict[str, CacheStats]:
        """Snapshot every cache the engine owns (sizes, hit rates)."""
        return {
            "similarity": self.similarity_cache.stats(),
            "grids": self._grids.stats(),
            "column_counts": self._column_counts.stats(),
        }

    # ------------------------------------------------------------------
    # Similarity through the persistent cache
    # ------------------------------------------------------------------
    def similarity(
        self,
        a: str,
        b: str,
        profile: Optional[ScoringProfile] = None,
    ) -> float:
        """``sigma(a, b)`` through the persistent bounded cache.

        ``profile`` receives the call/miss accounting; it defaults to
        the engine's own profile.  Parallel shard workers pass their
        private per-shard profile instead, keeping accumulation
        race-free.
        """
        return self.similarity_cache.similarity(
            a, b, profile if profile is not None else self.profile
        )

    # ------------------------------------------------------------------
    # Column mapping (Section 5.1)
    # ------------------------------------------------------------------
    def column_mapping(
        self,
        query_tuple: Tuple[str, ...],
        table: Table,
        profile: Optional[ScoringProfile] = None,
    ) -> List[int]:
        """Return ``tau``: per query entity, the assigned column (-1 = none).

        The column-relevance matrix ``S[i][j] = sum over column j of
        sigma(e_i, cell entity)`` is maximized by the Hungarian method
        under the one-entity-per-column constraint.
        """
        counts = self._column_entity_counts(table)
        scores = [
            [
                sum(
                    count * self.similarity(query_entity, uri, profile)
                    for uri, count in counter.items()
                )
                for counter in counts
            ]
            for query_entity in query_tuple
        ]
        assignment, _ = max_assignment(scores)
        return assignment

    # ------------------------------------------------------------------
    # Scoring (Algorithm 1)
    # ------------------------------------------------------------------
    def score_table(
        self,
        query: Query,
        table: Table,
        profile: Optional[ScoringProfile] = None,
    ) -> TableScore:
        """Compute SemRel(Q, T) with full per-tuple breakdown.

        ``profile`` collects the timing/similarity accounting and
        defaults to the engine's own; the parallel engine passes one
        private profile per shard and merges them afterwards.
        """
        if profile is None:
            profile = self.profile
        start = time.perf_counter()
        grid = self._entity_grid(table)
        tuple_scores: List[float] = []
        any_signal = False
        for query_tuple in query:
            map_start = time.perf_counter()
            assignment = self.column_mapping(query_tuple, table, profile)
            profile.mapping_seconds += time.perf_counter() - map_start
            row_scores: List[List[float]] = []
            for row in grid:
                entity_scores: List[float] = []
                for position, query_entity in enumerate(query_tuple):
                    column = assignment[position]
                    target = row[column] if column >= 0 else None
                    if target is None:
                        entity_scores.append(0.0)
                    else:
                        entity_scores.append(
                            self.similarity(query_entity, target, profile)
                        )
                row_scores.append(entity_scores)
            if self.tuple_semantics is TupleSemantics.PER_ROW:
                # Equation 1: score every row as a whole tuple, then
                # aggregate row scores (max = SemRel_MAX, avg = _AVG).
                if any(
                    score > 0.0 for row in row_scores for score in row
                ):
                    any_signal = True
                per_row = [
                    semrel_tuple_score(
                        query_tuple, row, self.informativeness
                    )
                    for row in row_scores
                ]
                tuple_scores.append(self.row_aggregation.aggregate(per_row))
                continue
            coordinates = self.row_aggregation.aggregate_columns(row_scores)
            if not coordinates:
                coordinates = [0.0] * len(query_tuple)
            if any(c > 0.0 for c in coordinates):
                any_signal = True
            tuple_scores.append(
                semrel_tuple_score(query_tuple, coordinates, self.informativeness)
            )
        score = self.query_aggregation.aggregate(tuple_scores)
        relevant = any_signal or not self.drop_irrelevant
        if not relevant:
            score = 0.0
        profile.total_seconds += time.perf_counter() - start
        profile.tables_scored += 1
        return TableScore(table.table_id, score, tuple_scores, relevant)

    def search(
        self,
        query: Query,
        k: Optional[int] = None,
        candidates: Optional[Iterable[str]] = None,
    ) -> ResultSet:
        """Rank (a subset of) the lake by SemRel against ``query``.

        Similarities evaluated here stay in the persistent cache, so
        follow-up queries over the same corpus skip the dominant cost.

        Parameters
        ----------
        query:
            The entity-tuple query.
        k:
            Optional cut-off; ``None`` returns the full ranking of
            relevant tables.
        candidates:
            Optional iterable of table ids to restrict scoring to — this
            is how the LSH prefilter plugs in.
        """
        if candidates is None:
            tables: Iterable[Table] = self.lake
        else:
            tables = (
                self.lake.get(table_id)
                for table_id in dict.fromkeys(candidates)
                if table_id in self.lake
            )
        scored: List[ScoredTable] = []
        for table in tables:
            # Tables without any linked entity can never be relevant.
            if self.drop_irrelevant and not self.mapping.entities_in_table(
                table.table_id
            ):
                continue
            result = self.score_table(query, table)
            if result.relevant and result.score > 0.0:
                scored.append(ScoredTable(result.score, result.table_id))
        results = ResultSet(scored)
        if k is not None:
            results = results.top(k)
        return results

    def search_many(
        self,
        queries: Dict[str, Query],
        k: Optional[int] = None,
        candidates: Optional[Dict[str, Iterable[str]]] = None,
    ) -> Dict[str, ResultSet]:
        """Run a batch of queries over the shared similarity cache.

        Queries over the same corpus repeat most pairwise similarity
        evaluations; the engine's persistent cache amortizes them both
        within this batch and across separate calls (the
        experiment-harness access pattern).  Results are identical to
        per-query :meth:`search` calls.

        Parameters
        ----------
        queries:
            ``query_id -> Query``.
        k:
            Optional shared cut-off.
        candidates:
            Optional per-query candidate restriction keyed like
            ``queries`` (missing keys search the whole lake).
        """
        results: Dict[str, ResultSet] = {}
        # Identical queries (same tuples, same canonical candidate
        # list) share one ranking: common under loadgen replay, and a
        # ResultSet is immutable so sharing by reference is safe.
        memo: Dict[Tuple, ResultSet] = {}
        for query_id, query in queries.items():
            restriction = (
                candidates.get(query_id) if candidates is not None else None
            )
            if restriction is not None:
                restriction = list(restriction)
            key = (
                query.tuples,
                None if restriction is None
                else tuple(dict.fromkeys(restriction)),
            )
            ranking = memo.get(key)
            if ranking is None:
                ranking = self.search(query, k=k, candidates=restriction)
                memo[key] = ranking
            results[query_id] = ranking
        return results

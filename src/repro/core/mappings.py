"""Relevant mappings between entity tuples (Section 4.2).

A *relevant mapping* from query tuple ``t_Q`` to target tuple ``t_T`` is
a partial injective function sending query entities to target entities
with positive similarity.  Four cases are distinguished — total/partial
x exact/related — and the axioms of Section 4.2 constrain how any valid
SemRel score must order them.  This module computes the best relevant
mapping between two tuples and classifies it, making the axioms
executable (they are property-tested in the test suite).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.assignment import max_assignment
from repro.similarity.base import EntitySimilarity


class MappingKind(enum.Enum):
    """The four relevant-mapping cases of Section 4.2, plus irrelevance."""

    TOTAL_EXACT = "TE"
    PARTIAL_EXACT = "PE"
    TOTAL_RELATED = "TR"
    PARTIAL_RELATED = "PR"
    IRRELEVANT = "NONE"


@dataclass(frozen=True)
class RelevantMapping:
    """Best injective mapping from a query tuple into a target tuple.

    Attributes
    ----------
    assignment:
        ``query entity position -> target entity position`` for mapped
        entities only (pairs with zero similarity are dropped).
    similarities:
        Per mapped query position, the similarity ``sigma`` achieved.
    kind:
        The Section 4.2 classification of this mapping.
    """

    assignment: Dict[int, int]
    similarities: Dict[int, float]
    kind: MappingKind

    @property
    def total_score(self) -> float:
        """Cumulative similarity across mapped entities."""
        return sum(self.similarities.values())

    def is_total(self) -> bool:
        """Whether every query entity is mapped."""
        return self.kind in (MappingKind.TOTAL_EXACT, MappingKind.TOTAL_RELATED)


def best_mapping(
    query_tuple: Sequence[str],
    target_tuple: Sequence[Optional[str]],
    sigma: EntitySimilarity,
) -> RelevantMapping:
    """Compute and classify the score-maximal relevant mapping.

    ``target_tuple`` may contain ``None`` entries (unlinked cells); those
    positions can never be mapped.  The assignment maximizes cumulative
    similarity subject to injectivity, via the Hungarian solver.
    """
    k = len(query_tuple)
    n = len(target_tuple)
    if k == 0 or n == 0:
        return RelevantMapping({}, {}, MappingKind.IRRELEVANT)
    scores = [
        [
            0.0 if target is None else sigma.similarity(query_entity, target)
            for target in target_tuple
        ]
        for query_entity in query_tuple
    ]
    assignment, _ = max_assignment(scores)
    mapped: Dict[int, int] = {}
    sims: Dict[int, float] = {}
    for query_pos, target_pos in enumerate(assignment):
        if target_pos < 0:
            continue
        score = scores[query_pos][target_pos]
        if score > 0.0:
            mapped[query_pos] = target_pos
            sims[query_pos] = score
    kind = _classify(query_tuple, target_tuple, mapped)
    return RelevantMapping(mapped, sims, kind)


def _classify(
    query_tuple: Sequence[str],
    target_tuple: Sequence[Optional[str]],
    mapped: Dict[int, int],
) -> MappingKind:
    if not mapped:
        return MappingKind.IRRELEVANT
    total = len(mapped) == len(query_tuple)
    exact_positions = {
        q for q, t in mapped.items() if target_tuple[t] == query_tuple[q]
    }
    all_exact = len(exact_positions) == len(mapped)
    if total and all_exact:
        return MappingKind.TOTAL_EXACT
    if total:
        # Some mapped entities are exact, others merely related: the
        # paper folds this into the total related case.
        return MappingKind.TOTAL_RELATED
    if exact_positions and len(exact_positions) == len(mapped):
        return MappingKind.PARTIAL_EXACT
    return MappingKind.PARTIAL_RELATED

"""Score aggregation policies used by Algorithm 1.

Two aggregation axes exist:

* *row aggregation* (line 13 of Algorithm 1) — how the per-row entity
  similarities collapse into one coordinate per query entity.  The paper
  evaluates ``max`` and ``avg`` and finds ``max`` up to 5x better at
  amplifying the relevance signal of matching tuples;
* *query aggregation* (line 15 / Equation 1) — how per-query-tuple
  SemRel scores combine into the final table score.  The paper uses the
  mean.
"""

from __future__ import annotations

import enum
from typing import List, Sequence

from repro.exceptions import ConfigurationError


class RowAggregation(enum.Enum):
    """How per-row similarity scores collapse per query entity."""

    MAX = "max"
    AVG = "avg"

    def aggregate(self, scores: Sequence[float]) -> float:
        """Collapse one query entity's per-row scores to a coordinate."""
        if not scores:
            return 0.0
        if self is RowAggregation.MAX:
            return max(scores)
        return sum(scores) / len(scores)

    def aggregate_columns(self, rows: Sequence[Sequence[float]]) -> List[float]:
        """Aggregate a rows x entities score grid column-wise.

        ``rows[r][e]`` is the similarity of query entity ``e`` against
        row ``r``; the result has one aggregated coordinate per entity.
        """
        if not rows:
            return []
        width = len(rows[0])
        if any(len(row) != width for row in rows):
            raise ConfigurationError("ragged row-score grid")
        return [self.aggregate([row[e] for row in rows]) for e in range(width)]


class TupleSemantics(enum.Enum):
    """Which of the paper's two scoring formalizations to use.

    * ``PER_ENTITY`` — Algorithm 1 (line 13): each query entity's
      similarity is aggregated over all rows independently, then one
      distance is computed from the aggregated coordinates.  A table
      can match a query tuple "collectively" across rows.
    * ``PER_ROW`` — Equation 1: every table row is scored as a whole
      tuple (its own distance), and the row scores are aggregated.
      A single row must carry the evidence, matching the
      tuple-to-tuple reading ``max_{t_j in T} SemRel(t_i, t_j)``.

    PER_ENTITY dominates PER_ROW pointwise under max aggregation (the
    coordinate-wise max over rows is at least any single row's
    coordinates), a property the test suite checks.
    """

    PER_ENTITY = "per_entity"
    PER_ROW = "per_row"


class QueryAggregation(enum.Enum):
    """How per-query-tuple scores combine into the table score."""

    MEAN = "mean"
    MAX = "max"

    def aggregate(self, scores: Sequence[float]) -> float:
        """Combine per-tuple SemRel scores (0.0 for empty input)."""
        if not scores:
            return 0.0
        if self is QueryAggregation.MAX:
            return max(scores)
        return sum(scores) / len(scores)

"""Command-line front end for :mod:`repro.analysis`.

Reachable two ways with identical behavior::

    python -m repro.analysis [paths...] [options]
    thetis lint [paths...] [options]

Exit codes: ``0`` clean (or everything baselined), ``1`` findings at or
above the ``--fail-on`` severity, ``2`` configuration/usage errors.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import Baseline, find_baseline_file
from repro.analysis.engine import SEVERITIES, LintEngine, LintReport
from repro.analysis.rules import (
    ALL_RULES,
    PASS_GROUPS,
    flow_rules,
    get_rules,
    rules_for_passes,
)
from repro.exceptions import AnalysisError

#: Default lint target when no paths are given.
DEFAULT_TARGET = "src"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with ``thetis lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files or directories to lint (default: {DEFAULT_TARGET}/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--fail-on", choices=SEVERITIES + ("never",), default="warning",
        help="minimum severity that fails the run (default: warning)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON path (default: discover .lint-baseline.json "
             "upward from the first target)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--passes", choices=PASS_GROUPS, default="all",
        help="pass groups to run: per-file 'syntax' rules, "
             "whole-program 'flow' rules, or 'all' (default)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker threads for the per-file phase (default: 1)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only files that differ from HEAD (plus untracked); "
             "disables the whole-program flow passes",
    )
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="run a full lint, then rewrite the baseline file dropping "
             "entries that no longer match any finding",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="with --prune-baseline: report what would be dropped "
             "without rewriting the file",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific static analysis "
                    "(lock discipline, determinism, kernel safety, "
                    "API hygiene)",
    )
    add_lint_arguments(parser)
    return parser


def _list_rules() -> int:
    groups = (("syntax", ALL_RULES), ("flow", flow_rules()))
    width = max(
        len(rule.id) for _, rules in groups for rule in rules
    )
    for group, rules in groups:
        print(f"# {group} passes")
        for rule in rules:
            scope = "/".join(getattr(rule, "scoped_to", rule.scope)) or "all"
            print(f"{rule.id:<{width}}  {rule.severity:<7}  "
                  f"[{scope}]  {rule.description}")
    return 0


def _changed_files() -> Optional[List[Path]]:
    """Python files differing from HEAD plus untracked ones.

    Returns ``None`` when git is unavailable (callers fall back to the
    full target set with a notice on stderr).
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD", "--", "*.py"],
            capture_output=True, text=True, check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "--",
             "*.py"],
            capture_output=True, text=True, check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names = set(diff.stdout.splitlines()) | set(untracked.stdout.splitlines())
    return [Path(name) for name in sorted(names) if Path(name).is_file()]


def _resolve_targets(args: argparse.Namespace) -> List[Path]:
    paths = [Path(raw) for raw in (args.paths or [DEFAULT_TARGET])]
    if not args.changed_only:
        return paths
    changed = _changed_files()
    if changed is None:
        print(
            "repro.analysis: git unavailable; --changed-only falling back "
            "to the full target set",
            file=sys.stderr,
        )
        return paths
    # Restrict the changed set to files under the requested targets.
    resolved_targets = [path.resolve() for path in paths]
    selected: List[Path] = []
    for candidate in changed:
        resolved = candidate.resolve()
        for target in resolved_targets:
            if resolved == target or target in resolved.parents:
                selected.append(candidate)
                break
    return selected


def _load_baseline(args: argparse.Namespace,
                   targets: Sequence[Path]) -> Baseline:
    if args.no_baseline:
        return Baseline.empty()
    if args.baseline is not None:
        return Baseline.load(Path(args.baseline))
    anchor = Path(targets[0]) if targets else Path.cwd()
    discovered = find_baseline_file(anchor)
    if discovered is None:
        return Baseline.empty()
    return Baseline.load(discovered)


def _emit_text(report: LintReport, fail_on: str,
               elapsed: float) -> None:
    for finding in report.findings:
        print(finding.format_text())
    counts = report.counts()
    summary = ", ".join(
        f"{counts[severity]} {severity}" for severity in reversed(SEVERITIES)
    )
    print(
        f"repro.analysis: {len(report.findings)} finding(s) "
        f"({summary}) across {report.files_checked} file(s); "
        f"{len(report.baselined)} baselined; {elapsed:.2f}s"
    )
    if report.stale_baseline:
        print(
            f"repro.analysis: {len(report.stale_baseline)} stale baseline "
            "entr(ies) matched nothing — delete them:",
            file=sys.stderr,
        )
        for rule, path, message in report.stale_baseline:
            print(f"  [{rule}] {path}: {message}", file=sys.stderr)


def _emit_json(report: LintReport, fail_on: str,
               elapsed: float) -> None:
    document = {
        "findings": [finding.to_json() for finding in report.findings],
        "counts": report.counts(),
        "files_checked": report.files_checked,
        "baselined": len(report.baselined),
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in report.stale_baseline
        ],
        "artifacts": report.artifacts,
        "elapsed_seconds": round(elapsed, 3),
        "fail_on": fail_on,
        "failed": report.gates(fail_on),
    }
    print(json.dumps(document, indent=2, sort_keys=True))


def _prune_baseline(args: argparse.Namespace, report: LintReport,
                    baseline: Baseline) -> int:
    """Rewrite the baseline file dropping entries that match nothing."""
    if baseline.source is None:
        print("repro.analysis: no baseline file to prune",
              file=sys.stderr)
        return 0
    stale = set(report.stale_baseline)
    if not stale:
        print(f"repro.analysis: baseline {baseline.source} is tight; "
              "nothing to prune")
        return 0
    for rule, path, message in sorted(stale):
        verb = "would drop" if args.dry_run else "dropping"
        print(f"repro.analysis: {verb} [{rule}] {path}: {message}")
    if args.dry_run:
        print(f"repro.analysis: --dry-run; {len(stale)} stale "
              f"entr(ies) left in {baseline.source}")
        return 0
    # Rewrite from the raw document so non-entry keys (the top-level
    # "comment", say) and per-entry reasons survive untouched.
    document = json.loads(
        Path(baseline.source).read_text(encoding="utf-8")
    )
    document["entries"] = [
        entry for entry in document.get("entries", [])
        if (entry.get("rule"), entry.get("path"),
            entry.get("message")) not in stale
    ]
    Path(baseline.source).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )
    print(f"repro.analysis: pruned {len(stale)} stale entr(ies) from "
          f"{baseline.source}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    if args.prune_baseline and args.changed_only:
        print(
            "repro.analysis: error: --prune-baseline needs a full run; "
            "drop --changed-only",
            file=sys.stderr,
        )
        return 2
    try:
        if args.rules:
            rules = get_rules(
                [rid.strip() for rid in args.rules.split(",")
                 if rid.strip()]
            )
        else:
            rules = rules_for_passes(args.passes)
        if args.changed_only:
            # Whole-program facts (call graph, lock graph, taint
            # summaries) are wrong on a partial file set.
            project_rules = [
                rule for rule in rules if getattr(rule, "project", False)
            ]
            if project_rules:
                print(
                    "repro.analysis: --changed-only disables the "
                    "whole-program flow passes ("
                    + ", ".join(rule.id for rule in project_rules)
                    + ")",
                    file=sys.stderr,
                )
                rules = tuple(
                    rule for rule in rules
                    if not getattr(rule, "project", False)
                )
            if not rules:
                print("repro.analysis: nothing to lint", file=sys.stderr)
                return 0
        targets = _resolve_targets(args)
        if not targets:
            print("repro.analysis: nothing to lint", file=sys.stderr)
            return 0
        baseline = _load_baseline(args, targets)
        engine = LintEngine(rules, baseline=baseline)
        started = time.monotonic()
        report = engine.run(targets, jobs=max(1, args.jobs))
        elapsed = time.monotonic() - started
    except AnalysisError as exc:
        print(f"repro.analysis: error: {exc}", file=sys.stderr)
        return 2
    if args.prune_baseline:
        return _prune_baseline(args, report, baseline)
    if args.changed_only:
        # A partial run cannot tell a stale entry from one whose file
        # simply was not linted; only full runs report staleness.
        report.stale_baseline = []
    if args.format == "json":
        _emit_json(report, args.fail_on, elapsed)
    else:
        _emit_text(report, args.fail_on, elapsed)
    return 1 if report.gates(args.fail_on) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    return run(parser.parse_args(argv))

"""Project-wide symbol table and call graph for the flow passes.

A :class:`Project` is built once per engine run from every parsed
:class:`~repro.analysis.engine.SourceFile`.  It resolves:

* **modules** — display paths map to dotted module names (the segment
  after the last ``src`` component, so ``src/repro/system.py`` is
  ``repro.system`` and a test fixture ``kernel/mod.py`` is
  ``kernel.mod``);
* **classes and functions** — every ``def`` gets a
  :class:`FunctionInfo` keyed ``module:Class.method`` / ``module:func``;
* **imports** — ``from repro.x import y`` binds ``y`` to the project
  symbol when ``repro.x`` is part of the run, and to its canonical
  dotted name otherwise (the taint pass matches external
  source/sanitizer tables on those names);
* **calls** — ``self.method(...)`` through the defining class and its
  project-resolved bases, ``name(...)`` through module scope and
  imports, ``obj.method(...)`` through lightweight type inference
  (``__init__`` attribute assignments, local constructor calls, and
  parameter annotations), and ``ClassName(...)`` to ``__init__``.

Resolution is deliberately best-effort: an unresolved call returns
``None`` and the passes treat it as opaque.  Soundness for the lint
verdicts comes from how each pass uses the graph, not from claiming
completeness here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.engine import SourceFile
from repro.analysis.rules.base import dotted_name, import_aliases


def module_name_for(display: str) -> str:
    """Dotted module name for a display path.

    Everything up to and including the last ``src`` path component is
    stripped, so both the shipped tree (``src/repro/...``) and scratch
    fixture trees (``kernel/mod.py``) produce stable names.
    """
    parts = list(Path_parts(display))
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


def Path_parts(display: str) -> Tuple[str, ...]:
    return tuple(part for part in display.replace("\\", "/").split("/")
                 if part not in ("", "."))


class FunctionInfo:
    """One function or method definition plus its resolution context."""

    def __init__(
        self,
        module: "ModuleInfo",
        node: ast.AST,
        class_name: Optional[str],
    ):
        self.module = module
        self.node = node
        self.class_name = class_name
        self.name = node.name
        self.is_async = isinstance(node, ast.AsyncFunctionDef)

    @property
    def qualname(self) -> str:
        local = (
            f"{self.class_name}.{self.name}" if self.class_name
            else self.name
        )
        return f"{self.module.name}:{local}"

    @property
    def is_private(self) -> bool:
        """Conventionally internal: ``_name`` but not ``__dunder__``."""
        return (
            self.name.startswith("_")
            and not (self.name.startswith("__") and self.name.endswith("__"))
        )

    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class definition: methods, base names, inferred attr types."""

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.methods: Dict[str, FunctionInfo] = {}
        self.base_names: List[str] = [
            base for base in (dotted_name(b) for b in node.bases)
            if base is not None
        ]
        #: ``self.<attr>`` -> class-name expression assigned in
        #: ``__init__`` (either a constructor call or a parameter whose
        #: annotation names a class).
        self.attr_types: Dict[str, str] = {}

    def infer_attr_types(self) -> None:
        init = self.methods.get("__init__")
        if init is None:
            return
        annotations: Dict[str, str] = {}
        for arg in init.node.args.args + init.node.args.kwonlyargs:
            if arg.annotation is not None:
                name = _annotation_name(arg.annotation)
                if name is not None:
                    annotations[arg.arg] = name
        for stmt in ast.walk(init.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                inferred = None
                value = stmt.value
                if isinstance(value, ast.Call):
                    inferred = dotted_name(value.func)
                elif isinstance(value, ast.Name):
                    inferred = annotations.get(value.id)
                if inferred:
                    self.attr_types[target.attr] = inferred
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.annotation is not None
                ):
                    annotated = _annotation_name(stmt.annotation)
                    if annotated:
                        self.attr_types[target.attr] = annotated


def _annotation_name(node: ast.AST) -> Optional[str]:
    """A class name out of an annotation, unwrapping Optional/quotes."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip().split("[")[0].split(".")[-1] or None
    if isinstance(node, ast.Subscript):
        # Optional[X] / "X | None" style wrappers: take the inner name.
        return _annotation_name(node.slice)
    if isinstance(node, ast.BinOp):
        left = _annotation_name(node.left)
        return left or _annotation_name(node.right)
    name = dotted_name(node)
    if name is None or name == "None":
        return None
    return name.split(".")[-1]


class ModuleInfo:
    """One parsed module: top-level defs, classes, import bindings."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.name = module_name_for(source.display)
        self.aliases = import_aliases(source.tree)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for node in source.tree.body:
            self._collect(node, class_name=None)

    def _collect(self, node: ast.AST, class_name: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(self, node, class_name)
            if class_name is None:
                self.functions[node.name] = info
            else:
                self.classes[class_name].methods[node.name] = info
        elif isinstance(node, ast.ClassDef) and class_name is None:
            self.classes[node.name] = ClassInfo(self, node)
            for member in node.body:
                self._collect(member, class_name=node.name)


class Project:
    """The whole-program view the flow passes run over."""

    def __init__(self, sources: Sequence[SourceFile]):
        self.modules: Dict[str, ModuleInfo] = {}
        for source in sources:
            module = ModuleInfo(source)
            self.modules[module.name] = module
        for module in self.modules.values():
            for cls in module.classes.values():
                cls.infer_attr_types()
        #: Class name -> every project class with that (short) name.
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        for module in self.modules.values():
            for cls in module.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)

    # ------------------------------------------------------------------
    def functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules.values():
            yield from module.functions.values()
            for cls in module.classes.values():
                yield from cls.methods.values()

    def class_named(self, name: str) -> Optional[ClassInfo]:
        """The project class with (short) name ``name``, if unambiguous."""
        short = name.split(".")[-1]
        candidates = self._classes_by_name.get(short, [])
        return candidates[0] if len(candidates) == 1 else None

    def method_of(self, cls: Optional[ClassInfo],
                  name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` on ``cls``, walking project-resolved bases."""
        seen = set()
        while cls is not None and cls.name not in seen:
            seen.add(cls.name)
            method = cls.methods.get(name)
            if method is not None:
                return method
            cls = next(
                (resolved for resolved in (
                    self.class_named(base) for base in cls.base_names
                ) if resolved is not None),
                None,
            )
        return None

    # ------------------------------------------------------------------
    # Name and call resolution inside one function
    # ------------------------------------------------------------------
    def canonical_name(self, function: FunctionInfo,
                       node: ast.AST) -> Optional[str]:
        """Alias-expanded dotted name of an expression, if any."""
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        expansion = function.module.aliases.get(head)
        if expansion is None:
            return name
        return f"{expansion}.{rest}" if rest else expansion

    def receiver_class(self, function: FunctionInfo,
                       node: ast.AST) -> Optional[ClassInfo]:
        """The project class an expression evaluates to, best effort."""
        # self -> the defining class.
        if isinstance(node, ast.Name):
            if node.id == "self" and function.class_name:
                return function.module.classes.get(function.class_name)
            # Local ``x = ClassName(...)`` or annotated parameter.
            inferred = self._local_type(function, node.id)
            if inferred is not None:
                return self.class_named(inferred)
            # ClassName used directly (constructor or classmethod).
            return self.class_named_by_binding(function, node.id)
        if isinstance(node, ast.Attribute):
            # self.<attr> through the inferred attribute types.
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and function.class_name
            ):
                cls = function.module.classes.get(function.class_name)
                if cls is not None:
                    attr_type = cls.attr_types.get(node.attr)
                    if attr_type is not None:
                        return self.class_named(attr_type)
        return None

    def class_named_by_binding(self, function: FunctionInfo,
                               name: str) -> Optional[ClassInfo]:
        """Resolve a bare name to a project class via module bindings."""
        module = function.module
        if name in module.classes:
            return module.classes[name]
        target = module.aliases.get(name)
        if target is None:
            return None
        mod_name, _, cls_name = target.rpartition(".")
        imported = self.modules.get(mod_name)
        if imported is not None and cls_name in imported.classes:
            return imported.classes[cls_name]
        return self.class_named(cls_name)

    def _local_type(self, function: FunctionInfo,
                    name: str) -> Optional[str]:
        """Type of a local: constructor assignment or annotation."""
        for arg in (function.node.args.args
                    + function.node.args.kwonlyargs
                    + function.node.args.posonlyargs):
            if arg.arg == name and arg.annotation is not None:
                return _annotation_name(arg.annotation)
        result: Optional[str] = None
        for stmt in ast.walk(function.node):
            if isinstance(stmt, ast.AnnAssign):
                if (isinstance(stmt.target, ast.Name)
                        and stmt.target.id == name
                        and stmt.annotation is not None):
                    result = _annotation_name(stmt.annotation) or result
                continue
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(isinstance(t, ast.Name) and t.id == name
                       for t in stmt.targets):
                continue
            value = stmt.value
            if isinstance(value, ast.Call):
                callee = dotted_name(value.func)
                if callee is not None:
                    result = callee.split(".")[-1]
            elif isinstance(value, ast.Attribute):
                # x = self.<attr> through inferred attribute types.
                if (isinstance(value.value, ast.Name)
                        and value.value.id == "self"
                        and function.class_name):
                    cls = function.module.classes.get(function.class_name)
                    if cls is not None:
                        result = cls.attr_types.get(value.attr) or result
        return result

    def resolve_call(self, function: FunctionInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """The project function a call dispatches to, or ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_bare(function, func.id)
        if isinstance(func, ast.Attribute):
            receiver = self.receiver_class(function, func.value)
            if receiver is not None:
                method = self.method_of(receiver, func.attr)
                if method is not None:
                    return method
            # module.func(...) through import aliases.
            canonical = self.canonical_name(function, func)
            if canonical is not None:
                return self.function_by_canonical(canonical)
        return None

    def _resolve_bare(self, function: FunctionInfo,
                      name: str) -> Optional[FunctionInfo]:
        module = function.module
        if name in module.functions:
            return module.functions[name]
        cls = self.class_named_by_binding(function, name)
        if cls is not None:
            return self.method_of(cls, "__init__")
        target = module.aliases.get(name)
        if target is not None:
            return self.function_by_canonical(target)
        return None

    def function_by_canonical(self, canonical: str) -> Optional[FunctionInfo]:
        """``pkg.mod.func`` / ``pkg.mod.Class.method`` -> FunctionInfo."""
        parts = canonical.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:split]))
            if module is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                found = module.functions.get(rest[0])
                if found is not None:
                    return found
                cls = module.classes.get(rest[0])
                if cls is not None:
                    return self.method_of(cls, "__init__")
            elif len(rest) == 2:
                cls = module.classes.get(rest[0])
                if cls is not None:
                    return self.method_of(cls, rest[1])
        return None

    # ------------------------------------------------------------------
    def references_outside_calls(self, target: FunctionInfo) -> bool:
        """Whether ``target`` is ever referenced as a value (callback).

        A private helper passed around as a callback can run with any
        context, so must-style interprocedural facts about its callers
        do not hold.  Detected syntactically: a ``Name``/``Attribute``
        mention of the function's name that is not the ``func`` of a
        call.  The index over every such name is built once per
        project, so the per-function query is a set lookup.
        """
        return target.name in self._value_reference_index()

    def _value_reference_index(self) -> set:
        cached = getattr(self, "_value_refs", None)
        if cached is not None:
            return cached
        refs: set = set()
        for module in self.modules.values():
            call_funcs = {
                id(node.func)
                for node in ast.walk(module.source.tree)
                if isinstance(node, ast.Call)
            }
            for node in ast.walk(module.source.tree):
                if id(node) in call_funcs:
                    continue
                if isinstance(node, ast.Attribute):
                    refs.add(node.attr)
                elif (isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)):
                    refs.add(node.id)
        self._value_refs = refs
        return refs

"""Base class shared by the whole-program flow rules."""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.analysis.engine import Finding
from repro.analysis.rules.base import Rule


class FlowRule(Rule):
    """A rule dispatched once per run with the whole project.

    The engine calls :meth:`check_project` after the per-file rules,
    passing the :class:`~repro.analysis.flow.symbols.Project` built
    from every parsed file of the run.  Findings still carry ordinary
    ``(rule, path, line, message)`` coordinates, so inline pragmas and
    baseline entries apply unchanged.

    :meth:`artifacts` may return JSON-able data describing the pass's
    intermediate structures (the lock-order pass publishes its
    acquisition graph here); the CLI embeds them in ``--format json``
    output.
    """

    #: Marks the rule as project-wide for the engine's dispatch.
    project = True

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError

    def artifacts(self) -> Dict[str, Any]:
        """JSON-able pass artifacts from the most recent run."""
        return {}

    # Per-file dispatch never applies to flow rules.
    def applies(self, source) -> bool:
        return False

    def check(self, source) -> Iterator[Finding]:
        return iter(())

    def project_finding(self, display: str, line: int,
                        message: str, rule_id: str = "") -> Finding:
        return Finding(
            rule=rule_id or self.id,
            severity=self.severity,
            path=display,
            line=line,
            message=message,
        )

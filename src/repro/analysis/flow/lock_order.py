"""Interprocedural lock-order analysis (``lock-order``).

Two jobs, one traversal:

1. **Deadlock detection.**  Every lock-acquisition site (``with
   self._lock:``, ``async with``, explicit ``.acquire()``) is recorded
   together with the set of locks already held there — lexically from
   ``with`` nesting, flow-sensitively from ``.acquire()``/``.release()``
   pairs via the CFG solver, and interprocedurally by propagating each
   function's possible entry-held set over the call graph.  Each
   "holding A, acquiring B" pair is an edge A→B in the acquisition
   graph; any cycle (including a non-reentrant self-edge) is a
   potential deadlock and becomes an error finding.  RLock self-edges
   are reentrant and allowed.

2. **Flow-sensitive ``# guarded-by:``.**  The lexical
   ``guarded-attr-outside-lock`` rule cannot see that a private helper
   is only ever called with the lock held.  Here a guarded access is
   clean iff the named lock is in the lexical held set *or* in the
   function's must-held-at-entry set — the intersection of held sets
   over every resolved call site, computed only for private
   (``_name``) functions that are never referenced as values (a
   callback can run with any context).  Violations are emitted under
   the legacy ``guarded-attr-outside-lock`` id so existing pragmas and
   baselines apply unchanged.

Lock identity is ``ClassName.attr`` for instance locks (resolved
through ``self``, inferred attribute types, and parameter annotations)
and ``module.name`` for module-level locks.  Locks on unresolvable
receivers are skipped rather than guessed — a missing edge is better
than a fabricated cycle.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding
from repro.analysis.flow.base import FlowRule
from repro.analysis.flow.cfg import (
    _CondMarker,
    _WithEnter,
    build_cfg,
    solve_forward,
)
from repro.analysis.flow.symbols import (
    ClassInfo,
    FunctionInfo,
    Project,
)
from repro.analysis.rules.base import dotted_name, is_self_attribute

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
_LOCKISH_RE = re.compile(r"(?:^|_)(?:r?lock|mutex|semaphore)$", re.IGNORECASE)

_CONSTRUCTION_METHODS = {"__init__", "__setstate__", "__new__"}

#: Constructor canonical names -> lock kind.
_LOCK_CONSTRUCTORS = {
    "threading.Lock": "lock",
    "threading.RLock": "rlock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "threading.BoundedSemaphore": "lock",
    "multiprocessing.Lock": "lock",
    "multiprocessing.RLock": "rlock",
    "asyncio.Lock": "asyncio",
    "asyncio.Condition": "asyncio",
    "asyncio.Semaphore": "asyncio",
}


class _Event:
    """One analysis-relevant site inside a function."""

    __slots__ = ("kind", "line", "held", "data", "entry_scope")

    def __init__(self, kind: str, line: int, held: frozenset, data,
                 entry_scope: Optional[FunctionInfo]):
        self.kind = kind  # "acquire" | "call" | "guarded"
        self.line = line
        self.held = held
        self.data = data
        self.entry_scope = entry_scope


class LockOrderRule(FlowRule):
    """Cross-module deadlock cycles + flow-sensitive guarded-by."""

    id = "lock-order"
    severity = "error"
    description = (
        "the interprocedural lock-acquisition graph has a cycle "
        "(potential deadlock); also re-checks '# guarded-by:' "
        "annotations flow-sensitively under the legacy "
        "guarded-attr-outside-lock id"
    )

    def __init__(self) -> None:
        self._artifacts: Dict[str, object] = {}

    def artifacts(self) -> Dict[str, object]:
        return {"lock_order": self._artifacts} if self._artifacts else {}

    # ------------------------------------------------------------------
    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = _LockAnalysis(project)
        analysis.run()
        self._artifacts = analysis.graph_artifacts()
        for finding in analysis.findings(self):
            yield finding


class _LockAnalysis:
    def __init__(self, project: Project):
        self.project = project
        #: (ClassName|module, attr) -> kind, from declarations.
        self.declared: Dict[str, str] = {}
        #: lock id -> kind (declared, or "lock" for lockish guesses).
        self.kinds: Dict[str, str] = {}
        self.events: Dict[str, List[_Event]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.entry_may: Dict[str, frozenset] = {}
        self.entry_must: Dict[str, Optional[frozenset]] = {}
        #: edge (held, acquired) -> example "path:line" site.
        self.edges: Dict[Tuple[str, str], str] = {}
        self.cycles: List[List[str]] = []
        self._guard_findings: List[Tuple[str, int, str, str]] = []

    # -- declarations ---------------------------------------------------
    def _collect_declarations(self) -> None:
        for module in self.project.modules.values():
            aliases = module.aliases
            for stmt in module.source.tree.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        stmt.targets if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    kind = self._constructed_kind(stmt.value, aliases)
                    if kind is None:
                        continue
                    for target in targets:
                        if isinstance(target, ast.Name):
                            lock_id = f"{module.name}.{target.id}"
                            self.declared[lock_id] = kind
            for cls in module.classes.values():
                for method in cls.methods.values():
                    for stmt in ast.walk(method.node):
                        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                            continue
                        targets = (
                            stmt.targets if isinstance(stmt, ast.Assign)
                            else [stmt.target]
                        )
                        kind = self._constructed_kind(stmt.value, aliases)
                        if kind is None:
                            continue
                        for target in targets:
                            attr = is_self_attribute(target)
                            if attr is not None:
                                self.declared[f"{cls.name}.{attr}"] = kind
        self.kinds.update(self.declared)

    @staticmethod
    def _constructed_kind(value: Optional[ast.AST],
                          aliases: Dict[str, str]) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        name = dotted_name(value.func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        expansion = aliases.get(head)
        if expansion is not None:
            name = f"{expansion}.{rest}" if rest else expansion
        return _LOCK_CONSTRUCTORS.get(name)

    # -- lock identity --------------------------------------------------
    def _lock_id(self, function: FunctionInfo,
                 expr: ast.AST) -> Optional[str]:
        """Resolve a context-manager/acquire receiver to a lock id."""
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            receiver: Optional[ClassInfo] = None
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and function.class_name):
                class_name = function.class_name
            else:
                receiver = self.project.receiver_class(function, expr.value)
                if receiver is None:
                    return None
                class_name = receiver.name
            lock_id = f"{class_name}.{attr}"
            if lock_id in self.declared:
                return lock_id
            if _LOCKISH_RE.search(attr):
                self.kinds.setdefault(lock_id, "lock")
                return lock_id
            return None
        if isinstance(expr, ast.Name):
            lock_id = f"{function.module.name}.{expr.id}"
            if lock_id in self.declared:
                return lock_id
            return None
        return None

    # -- per-function event extraction ----------------------------------
    def run(self) -> None:
        self._collect_declarations()
        for function in self.project.functions():
            self.functions[function.qualname] = function
            self.events[function.qualname] = list(
                self._function_events(function)
            )
        self._solve_entry_sets()
        self._build_graph()

    def _guarded_attrs(self, function: FunctionInfo) -> Dict[str, str]:
        if not function.class_name:
            return {}
        cls = function.module.classes.get(function.class_name)
        if cls is None:
            return {}
        cached = getattr(cls, "_guarded_cache", None)
        if cached is not None:
            return cached
        guarded: Dict[str, str] = {}
        comments = function.module.source.comments
        for node in ast.walk(cls.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            attrs = [a for a in map(is_self_attribute, targets)
                     if a is not None]
            if not attrs:
                continue
            for line in range(node.lineno,
                              (node.end_lineno or node.lineno) + 1):
                comment = comments.get(line)
                if comment is None:
                    continue
                match = _GUARDED_BY_RE.search(comment)
                if match is not None:
                    for attr in attrs:
                        guarded[attr] = match.group(1)
                    break
        cls._guarded_cache = guarded
        return guarded

    def _function_events(self,
                         function: FunctionInfo) -> Iterator[_Event]:
        cfg = build_cfg(function.node)
        guarded = self._guarded_attrs(function)
        check_guards = function.name not in _CONSTRUCTION_METHODS

        def join(a: frozenset, b: frozenset) -> frozenset:
            return a & b

        def transfer(state: frozenset, stmt: ast.stmt) -> frozenset:
            for call in self._calls_in(stmt):
                target = call.func
                if (isinstance(target, ast.Attribute)
                        and target.attr in ("acquire", "release")):
                    lock = self._lock_id(function, target.value)
                    if lock is None:
                        continue
                    if target.attr == "acquire":
                        state = state | {lock}
                    else:
                        state = state - {lock}
            return state

        in_states = solve_forward(
            cfg, frozenset(), join, transfer, bottom=None
        )
        for block in cfg.blocks:
            acq_state = in_states.get(block.index)
            if acq_state is None:
                acq_state = frozenset()
            with_held = frozenset(
                lock for node in block.with_context
                for lock in self._with_locks(function, node)
            )
            for stmt in block.statements:
                held = with_held | acq_state
                if isinstance(stmt, _WithEnter):
                    for lock in self._with_locks(function, stmt.node):
                        yield _Event("acquire", stmt.lineno, held, lock,
                                     function)
                elif isinstance(stmt, _CondMarker):
                    if stmt.expr is not None:
                        yield from self._scan_expr(
                            function, stmt.expr, held, guarded,
                            check_guards, function,
                        )
                else:
                    for call in self._calls_in(stmt):
                        if (isinstance(call.func, ast.Attribute)
                                and call.func.attr == "acquire"):
                            lock = self._lock_id(function, call.func.value)
                            if lock is not None:
                                yield _Event("acquire", call.lineno, held,
                                             lock, function)
                    acq_state = transfer(acq_state, stmt)
                    yield from self._scan_stmt(
                        function, stmt, held, guarded, check_guards,
                        function,
                    )

    @staticmethod
    def _calls_in(stmt: ast.AST) -> Iterator[ast.Call]:
        """Calls in a statement, outside nested defs/lambdas."""
        stack = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _with_locks(self, function: FunctionInfo,
                    node: ast.AST) -> List[str]:
        locks = []
        for item in getattr(node, "items", []):
            lock = self._lock_id(function, item.context_expr)
            if lock is not None:
                locks.append(lock)
        return locks

    def _scan_stmt(self, function, stmt, held, guarded, check_guards,
                   entry_scope) -> Iterator[_Event]:
        """Events of one simple statement (descending into nested
        defs/lambdas with a reset held set and no entry facts)."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in stmt.body:
                yield from self._scan_stmt(
                    function, inner, frozenset(), guarded, check_guards,
                    None,
                )
            return
        yield from self._scan_expr(
            function, stmt, held, guarded, check_guards, entry_scope
        )

    def _scan_expr(self, function, root, held, guarded, check_guards,
                   entry_scope) -> Iterator[_Event]:
        stack = [(root, held, entry_scope)]
        while stack:
            node, node_held, scope = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                children = (node.body if isinstance(node.body, list)
                            else [node.body])
                for child in children:
                    stack.append((child, frozenset(), None))
                continue
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = node_held | frozenset(
                    self._with_locks(function, node)
                )
                for lock in self._with_locks(function, node):
                    yield _Event("acquire", node.lineno, node_held, lock,
                                 scope)
                for item in node.items:
                    stack.append((item.context_expr, node_held, scope))
                for child in node.body:
                    stack.append((child, inner, scope))
                continue
            if isinstance(node, ast.Call):
                callee = self.project.resolve_call(function, node)
                if callee is not None:
                    yield _Event("call", node.lineno, node_held,
                                 callee.qualname, scope)
            attr = is_self_attribute(node)
            if (check_guards and attr is not None and attr in guarded):
                yield _Event("guarded", node.lineno, node_held,
                             (attr, guarded[attr]), scope)
            for child in ast.iter_child_nodes(node):
                stack.append((child, node_held, scope))

    # -- interprocedural entry sets -------------------------------------
    def _call_sites(self) -> Dict[str, List[Tuple[str, frozenset, bool]]]:
        """callee qualname -> [(caller qualname, held, has_entry_scope)]."""
        sites: Dict[str, List[Tuple[str, frozenset, bool]]] = {}
        for qualname, events in self.events.items():
            for event in events:
                if event.kind != "call":
                    continue
                sites.setdefault(event.data, []).append(
                    (qualname, event.held, event.entry_scope is not None)
                )
        return sites

    def _solve_entry_sets(self) -> None:
        sites = self._call_sites()
        # May-held at entry: union over call sites, to a fixpoint.
        self.entry_may = {q: frozenset() for q in self.functions}
        changed = True
        iterations = 0
        while changed and iterations < len(self.functions) + 10:
            changed = False
            iterations += 1
            for callee, callers in sites.items():
                if callee not in self.entry_may:
                    continue
                merged: Set[str] = set(self.entry_may[callee])
                for caller, held, scoped in callers:
                    merged |= held
                    if scoped:
                        merged |= self.entry_may.get(caller, frozenset())
                if frozenset(merged) != self.entry_may[callee]:
                    self.entry_may[callee] = frozenset(merged)
                    changed = True
        # Must-held at entry: intersection over call sites; only private
        # never-referenced-as-value functions with >= 1 resolved site.
        eligible = {
            q for q, f in self.functions.items()
            if f.is_private and q in sites
            and not self.project.references_outside_calls(f)
        }
        self.entry_must = {
            q: (None if q in eligible else frozenset())
            for q in self.functions
        }
        changed = True
        iterations = 0
        while changed and iterations < len(self.functions) + 10:
            changed = False
            iterations += 1
            for callee in eligible:
                merged: Optional[frozenset] = None
                for caller, held, scoped in sites.get(callee, []):
                    caller_entry = (
                        self.entry_must.get(caller) if scoped else frozenset()
                    )
                    if caller_entry is None:
                        # Caller's entry set still TOP: defer.
                        continue
                    site_held = held | caller_entry
                    merged = (site_held if merged is None
                              else merged & site_held)
                if merged is not None and merged != self.entry_must[callee]:
                    self.entry_must[callee] = merged
                    changed = True
        for callee in eligible:
            if self.entry_must[callee] is None:
                self.entry_must[callee] = frozenset()

    # -- graph + findings -----------------------------------------------
    def _build_graph(self) -> None:
        for qualname, events in self.events.items():
            function = self.functions[qualname]
            display = function.module.source.display
            entry = self.entry_may.get(qualname, frozenset())
            for event in events:
                if event.kind != "acquire":
                    continue
                acquired = event.data
                context = event.held | (
                    entry if event.entry_scope is not None else frozenset()
                )
                site = f"{display}:{event.line}"
                self.kinds.setdefault(acquired, "lock")
                for held_lock in context:
                    if (held_lock == acquired
                            and self.kinds.get(acquired) == "rlock"):
                        continue  # reentrant: not an edge
                    self.edges.setdefault((held_lock, acquired), site)
        self.cycles = self._find_cycles()

    def _find_cycles(self) -> List[List[str]]:
        """Self-edges plus every SCC with more than one node."""
        graph: Dict[str, Set[str]] = {}
        for src, dst in self.edges:
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        cycles = [[node, node] for node in sorted(graph)
                  if node in graph.get(node, ())]
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]
        sccs: List[List[str]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(graph[root])))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack[succ] = True
                        work.append((succ, iter(sorted(graph[succ]))))
                        advanced = True
                        break
                    if on_stack.get(succ):
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        cycles.extend(sccs)
        return cycles

    def findings(self, rule: LockOrderRule) -> Iterator[Finding]:
        # Deadlock cycles, one finding per cycle at an example edge site.
        for cycle in self.cycles:
            if len(cycle) == 2 and cycle[0] == cycle[1]:
                lock = cycle[0]
                site = self.edges.get((lock, lock), "?:0")
                path, _, line = site.rpartition(":")
                yield rule.project_finding(
                    path, int(line or 1),
                    f"non-reentrant lock '{lock}' may be acquired while "
                    "already held (self-deadlock); use an RLock or drop "
                    "the nested acquisition",
                )
                continue
            members = set(cycle)
            example = None
            for (src, dst), site in sorted(self.edges.items()):
                if src in members and dst in members and src != dst:
                    example = ((src, dst), site)
                    break
            if example is None:
                continue
            (_, _), site = example
            path, _, line = site.rpartition(":")
            order = " -> ".join(cycle + [cycle[0]])
            yield rule.project_finding(
                path, int(line or 1),
                f"lock-order cycle {order}: two threads taking these "
                "locks in different orders can deadlock; pick one global "
                "order",
            )
        # Flow-sensitive guarded-by violations (legacy rule id).
        for qualname, events in self.events.items():
            function = self.functions[qualname]
            display = function.module.source.display
            entry_must = self.entry_must.get(qualname) or frozenset()
            seen: Set[Tuple[int, str]] = set()
            for event in events:
                if event.kind != "guarded":
                    continue
                attr, lock_name = event.data
                needed = (
                    f"{function.class_name}.{lock_name}"
                    if function.class_name else lock_name
                )
                context = event.held | (
                    entry_must if event.entry_scope is not None
                    else frozenset()
                )
                if needed in context:
                    continue
                key = (event.line, attr)
                if key in seen:
                    continue
                seen.add(key)
                yield rule.project_finding(
                    display, event.line,
                    f"'self.{attr}' is guarded by 'self.{lock_name}' but "
                    f"accessed outside a 'with self.{lock_name}:' block",
                    rule_id="guarded-attr-outside-lock",
                )

    # -- artifacts ------------------------------------------------------
    def graph_artifacts(self) -> Dict[str, object]:
        return {
            "nodes": [
                {"id": lock, "kind": self.kinds.get(lock, "lock")}
                for lock in sorted(
                    {n for edge in self.edges for n in edge}
                    | set(self.declared)
                )
            ],
            "edges": [
                {"held": src, "acquires": dst, "site": site}
                for (src, dst), site in sorted(self.edges.items())
            ],
            "cycles": self.cycles,
        }

"""Abstract dtype propagation through the kernel (``dtype-flow``).

The lexical ``float-dtype-mix`` rule only sees locals assigned
*directly* from an allocator call.  This pass closes the gap: dtypes
are abstract values propagated through assignments, ``.astype`` calls,
``np.asarray``/``np.frombuffer``/``np.arange`` conversions, arithmetic,
and — via call-graph return summaries — helper functions, all joined
over the per-function CFG.  Three findings come out of it:

* **float mixes through chains** — a float32 value meeting a float64
  value in arithmetic, even when either came through reassignment,
  a conversion, or a helper return (the direct-assignment case is left
  to ``float-dtype-mix`` so the two rules never double-report);
* **int32 multiply overflow** — products of int32 values stay int32 in
  numpy and wrap silently; row offsets must widen to int64 first;
* **unpinned allocations meeting pinned float32** — an allocation that
  inherited the platform-default dtype flowing into arithmetic with an
  explicitly float32 value upcasts the whole expression.

Scope matches the other kernel rules: only files under a ``kernel``
path component are analyzed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding
from repro.analysis.flow.base import FlowRule
from repro.analysis.flow.cfg import (
    _CondMarker,
    _WithEnter,
    build_cfg,
    solve_forward,
)
from repro.analysis.flow.symbols import FunctionInfo, Project
from repro.analysis.rules.kernel_safety import (
    _ALLOCATORS,
    _FLOAT_DTYPES,
    _dtype_of_keyword,
)

#: Conversions that pin (``dtype=``) or pass through a dtype.
_CONVERTERS = {"numpy.asarray", "numpy.array", "numpy.ascontiguousarray"}
_PINNING_CALLS = {"numpy.frombuffer", "numpy.arange", "numpy.full"}

_INT_DTYPES = {"int32", "int64", "uint32", "uint64", "intp"}

#: Abstract value: (dtype, origin).  ``origin`` records how the fact
#: was established — "direct" (allocator assignment the lexical rule
#: already sees), "flow" (reassignment/conversion/arith), "return"
#: (helper summary), "unpinned" (allocator without dtype=).
_Value = Tuple[str, str]


def _normalize(dtype: Optional[str]) -> Optional[str]:
    if dtype is None:
        return None
    short = dtype.split(".")[-1]
    return _FLOAT_DTYPES.get(short) or (
        short if short in _INT_DTYPES else None
    )


class DtypeFlowRule(FlowRule):
    """Flow-sensitive dtype discipline for the kernel."""

    id = "dtype-flow"
    severity = "warning"
    description = (
        "a dtype fact propagated through assignments, conversions or "
        "helper returns produces a silent float upcast, an int32 "
        "overflow product, or an unpinned allocation meeting pinned "
        "float32 arithmetic"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = _DtypeAnalysis(project)
        for display, line, message in analysis.run():
            yield self.project_finding(display, line, message)


class _DtypeAnalysis:
    def __init__(self, project: Project):
        self.project = project
        #: qualname -> return-dtype summary (or None when unknown/mixed).
        self.summaries: Dict[str, Optional[_Value]] = {}
        self.findings: Dict[Tuple[str, int, str], None] = {}

    def _kernel_functions(self) -> List[FunctionInfo]:
        functions = []
        for function in self.project.functions():
            parts = function.module.source.display.replace(
                "\\", "/"
            ).split("/")
            if "kernel" in parts:
                functions.append(function)
        return functions

    # ------------------------------------------------------------------
    def run(self) -> List[Tuple[str, int, str]]:
        functions = self._kernel_functions()
        # Fixpoint over return summaries: helper chains (a() returning
        # b()'s result) settle in as many rounds as the chain is deep.
        for _ in range(4):
            changed = False
            for function in functions:
                summary = self._return_summary(function)
                if self.summaries.get(function.qualname, "∅") != summary:
                    self.summaries[function.qualname] = summary
                    changed = True
            if not changed:
                break
        for function in functions:
            self._analyze(function, report=True)
        return list(self.findings)

    # ------------------------------------------------------------------
    def _return_summary(self, function: FunctionInfo) -> Optional[_Value]:
        env = self._analyze(function, report=False)
        returned: List[Optional[_Value]] = []
        for node in ast.walk(function.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not function.node:
                    continue
            if isinstance(node, ast.Return) and node.value is not None:
                returned.append(
                    self._expr_value(function, env, node.value,
                                     report=False)
                )
        known = {value for value in returned if value is not None}
        if returned and len(known) == 1 and None not in returned:
            dtype, _ = next(iter(known))
            return (dtype, "return")
        return None

    def _analyze(self, function: FunctionInfo,
                 report: bool) -> Dict[str, _Value]:
        """Run the dataflow; returns the exit-joined environment."""
        cfg = build_cfg(function.node)

        def join(a: Dict[str, _Value],
                 b: Dict[str, _Value]) -> Dict[str, _Value]:
            merged: Dict[str, _Value] = {}
            for name in a.keys() & b.keys():
                left, right = a[name], b[name]
                if left[0] == right[0]:
                    origin = (left[1] if left[1] == right[1] else "flow")
                    merged[name] = (left[0], origin)
            return merged

        def transfer(env: Dict[str, _Value],
                     stmt: ast.stmt) -> Dict[str, _Value]:
            return self._transfer(function, env, stmt, report=False)

        in_states = solve_forward(cfg, {}, join, transfer, bottom=None)
        final: Dict[str, _Value] = {}
        for block in cfg.blocks:
            env = dict(in_states.get(block.index) or {})
            for stmt in block.statements:
                env = self._transfer(function, env, stmt, report)
            for name, value in env.items():
                if name not in final:
                    final[name] = value
        return final

    # ------------------------------------------------------------------
    def _transfer(
        self,
        function: FunctionInfo,
        env: Dict[str, _Value],
        stmt: ast.stmt,
        report: bool,
    ) -> Dict[str, _Value]:
        if isinstance(stmt, (_CondMarker, _WithEnter)):
            expr = getattr(stmt, "expr", None)
            if expr is not None:
                self._expr_value(function, env, expr, report)
            return env
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return env  # nested defs get their own summary pass
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = (
                self._expr_value(function, env, stmt.value, report)
                if stmt.value is not None else None
            )
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            env = dict(env)
            for target in targets:
                if isinstance(target, ast.Name):
                    if value is not None:
                        env[target.id] = value
                    elif isinstance(stmt, ast.Assign):
                        env.pop(target.id, None)
            return env
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr_value(function, env, child, report)
        return env

    # ------------------------------------------------------------------
    def _expr_value(
        self,
        function: FunctionInfo,
        env: Dict[str, _Value],
        node: ast.AST,
        report: bool,
    ) -> Optional[_Value]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_value(function, env, node, report)
        if isinstance(node, ast.BinOp):
            return self._binop_value(function, env, node, report)
        if isinstance(node, (ast.Subscript, ast.UnaryOp)):
            child = (node.value if isinstance(node, ast.Subscript)
                     else node.operand)
            inner = self._expr_value(function, env, child, report)
            if inner is None:
                return None
            return (inner[0], "flow")
        if isinstance(node, ast.IfExp):
            self._expr_value(function, env, node.test, report)
            left = self._expr_value(function, env, node.body, report)
            right = self._expr_value(function, env, node.orelse, report)
            if left is not None and right is not None \
                    and left[0] == right[0]:
                return (left[0], "flow")
            return None
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr_value(function, env, child, report)
        return None

    def _call_value(
        self,
        function: FunctionInfo,
        env: Dict[str, _Value],
        call: ast.Call,
        report: bool,
    ) -> Optional[_Value]:
        arg_values = [
            self._expr_value(function, env, arg, report)
            for arg in call.args
        ]
        for keyword in call.keywords:
            self._expr_value(function, env, keyword.value, report)
        canonical = self.project.canonical_name(function, call.func)
        if canonical in _ALLOCATORS or canonical in _PINNING_CALLS:
            pinned = _normalize(_dtype_of_keyword(call))
            if pinned is not None:
                return (pinned, "direct")
            if canonical in {"numpy.zeros", "numpy.ones", "numpy.empty"}:
                return ("float64", "unpinned")
            return None
        if canonical in _CONVERTERS:
            pinned = _normalize(_dtype_of_keyword(call))
            if pinned is not None:
                return (pinned, "direct")
            if arg_values and arg_values[0] is not None:
                return (arg_values[0][0], "flow")
            return None
        if isinstance(call.func, ast.Attribute):
            if call.func.attr == "astype" and call.args:
                target = _normalize(
                    dotted_name_or_constant(call.args[0])
                )
                self._expr_value(function, env, call.func.value, report)
                if target is not None:
                    return (target, "direct")
                return None
            # Shape-preserving methods keep their receiver's dtype.
            if call.func.attr in {"copy", "reshape", "ravel",
                                  "transpose", "view"}:
                receiver = self._expr_value(function, env,
                                            call.func.value, report)
                if receiver is not None:
                    return (receiver[0], "flow")
                return None
        callee = self.project.resolve_call(function, call)
        if callee is not None:
            summary = self.summaries.get(callee.qualname)
            if summary is not None:
                return summary
        return None

    def _binop_value(
        self,
        function: FunctionInfo,
        env: Dict[str, _Value],
        node: ast.BinOp,
        report: bool,
    ) -> Optional[_Value]:
        left = self._expr_value(function, env, node.left, report)
        right = self._expr_value(function, env, node.right, report)
        if left is None or right is None:
            known = left or right
            return (known[0], "flow") if known is not None else None
        ldtype, lorigin = left
        rdtype, rorigin = right
        if report:
            self._check_mix(function, node, left, right)
        if ldtype == rdtype:
            return (ldtype, "flow")
        if {ldtype, rdtype} == {"float32", "float64"}:
            return ("float64", "flow")
        return None

    def _check_mix(
        self,
        function: FunctionInfo,
        node: ast.BinOp,
        left: _Value,
        right: _Value,
    ) -> None:
        display = function.module.source.display
        ldtype, lorigin = left
        rdtype, rorigin = right
        if {ldtype, rdtype} == {"float32", "float64"}:
            # Both operands directly allocator-assigned: the lexical
            # float-dtype-mix rule already reports that exact site.
            if {lorigin, rorigin} == {"direct"}:
                return
            if "unpinned" in (lorigin, rorigin):
                message = (
                    "an allocation without an explicit dtype= (platform "
                    "default float64) flows into arithmetic with pinned "
                    "float32; pin the allocation's dtype"
                )
            else:
                message = (
                    f"a {ldtype} value meets a {rdtype} value through "
                    "the dataflow (reassignment, conversion or helper "
                    "return); the product silently upcasts to float64"
                )
            self.findings[(display, node.lineno, message)] = None
            return
        if (
            ldtype == rdtype == "int32"
            and isinstance(node.op, ast.Mult)
        ):
            self.findings[(
                display,
                node.lineno,
                "product of two int32 values stays int32 in numpy and "
                "wraps silently on overflow; widen to int64 before "
                "multiplying",
            )] = None


def dotted_name_or_constant(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    from repro.analysis.rules.base import dotted_name

    return dotted_name(node)

"""Whole-program, flow-aware analysis passes for :mod:`repro.analysis`.

The per-file rule packs check one :class:`SourceFile` at a time; the
flow layer sees the whole ``src/repro`` tree at once:

* :mod:`repro.analysis.flow.symbols` builds a project-wide symbol
  table and call graph (module/class/function resolution, method
  resolution through ``self``, resolved imports);
* :mod:`repro.analysis.flow.cfg` builds per-function control-flow
  graphs and runs a small worklist dataflow solver over them — the
  abstract-state machinery every pass below reuses;
* three interprocedural passes register as ordinary rules:
  ``lock-order`` (:mod:`.lock_order`), ``wire-taint``
  (:mod:`.wire_taint`) and ``dtype-flow`` (:mod:`.dtype_flow`).

Flow rules subclass :class:`FlowRule` (``project = True``) and are
dispatched once per run with the whole :class:`~.symbols.Project`
instead of once per file; their findings still flow through the normal
pragma/baseline machinery.
"""

from __future__ import annotations

from repro.analysis.flow.base import FlowRule
from repro.analysis.flow.dtype_flow import DtypeFlowRule
from repro.analysis.flow.lock_order import LockOrderRule
from repro.analysis.flow.wire_taint import WireTaintRule

__all__ = [
    "FLOW_RULES",
    "DtypeFlowRule",
    "FlowRule",
    "LockOrderRule",
    "WireTaintRule",
]

#: The shipped flow pack, in catalog order.
FLOW_RULES = (
    LockOrderRule(),
    WireTaintRule(),
    DtypeFlowRule(),
)

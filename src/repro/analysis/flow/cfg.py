"""Per-function control-flow graphs and a small worklist solver.

Every flow pass shares this machinery: a function body is lowered to
basic blocks of simple statements with explicit successor edges, and
:func:`solve_forward` iterates transfer functions to a fixpoint over
them.  The lattice is supplied by the pass as a pair of callables —
``join(a, b)`` (the confluence operator: union for may-analyses like
taint, intersection for must-analyses like locks-held) and
``transfer(state, statement)`` (the per-statement abstract step).

Construction handles ``if``/``while``/``for``/``try``/``with``/
``match``-free Python (the repo does not use ``match``), plus
``return``/``raise``/``break``/``continue`` edges.  ``try`` bodies
conservatively edge into their handlers from the block entry, which
over-approximates exceptional flow — the right direction for both may-
and must-facts.  ``with`` blocks additionally record which blocks lie
inside which context managers, which the lock pass uses for held-set
tracking.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class Block:
    """One basic block: a run of simple statements plus successor ids."""

    def __init__(self, index: int):
        self.index = index
        self.statements: List[ast.stmt] = []
        self.successors: List[int] = []
        #: Stack of ``ast.With``/``ast.AsyncWith`` nodes lexically
        #: enclosing this block (innermost last).
        self.with_context: Tuple[ast.AST, ...] = ()


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        self.entry = self._new_block(()).index
        self.exit = self._new_block(()).index

    def _new_block(self, with_context: Tuple[ast.AST, ...]) -> Block:
        block = Block(len(self.blocks))
        block.with_context = with_context
        self.blocks.append(block)
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        return preds


class _Builder:
    """Lowers a statement list into a :class:`CFG`."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (break_target, continue_target) stack for loops.
        self._loops: List[Tuple[int, int]] = []

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        first = self.cfg._new_block(())
        self.cfg.add_edge(self.cfg.entry, first.index)
        last = self._lower_body(body, first, ())
        if last is not None:
            self.cfg.add_edge(last.index, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _lower_body(
        self,
        body: Sequence[ast.stmt],
        current: Block,
        ctx: Tuple[ast.AST, ...],
    ) -> Optional[Block]:
        """Lower ``body`` starting in ``current``; returns the block the
        fall-through path ends in, or ``None`` when every path leaves
        (return/raise/break/continue)."""
        for stmt in body:
            if current is None:
                # Unreachable code after a terminator: give it its own
                # island block so passes still see the statements.
                current = self.cfg._new_block(ctx)
            if isinstance(stmt, (ast.If,)):
                current = self._lower_if(stmt, current, ctx)
            elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
                current = self._lower_loop(stmt, current, ctx)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                current = self._lower_with(stmt, current, ctx)
            elif isinstance(stmt, ast.Try):
                current = self._lower_try(stmt, current, ctx)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                current.statements.append(stmt)
                self.cfg.add_edge(current.index, self.cfg.exit)
                current = None
            elif isinstance(stmt, ast.Break):
                current.statements.append(stmt)
                if self._loops:
                    self.cfg.add_edge(current.index, self._loops[-1][0])
                current = None
            elif isinstance(stmt, ast.Continue):
                current.statements.append(stmt)
                if self._loops:
                    self.cfg.add_edge(current.index, self._loops[-1][1])
                current = None
            else:
                current.statements.append(stmt)
        return current

    def _lower_if(self, stmt: ast.If, current: Block,
                  ctx: Tuple[ast.AST, ...]) -> Optional[Block]:
        current.statements.append(_CondMarker(stmt))
        after = self.cfg._new_block(ctx)
        then_entry = self.cfg._new_block(ctx)
        self.cfg.add_edge(current.index, then_entry.index)
        then_exit = self._lower_body(stmt.body, then_entry, ctx)
        if then_exit is not None:
            self.cfg.add_edge(then_exit.index, after.index)
        if stmt.orelse:
            else_entry = self.cfg._new_block(ctx)
            self.cfg.add_edge(current.index, else_entry.index)
            else_exit = self._lower_body(stmt.orelse, else_entry, ctx)
            if else_exit is not None:
                self.cfg.add_edge(else_exit.index, after.index)
        else:
            self.cfg.add_edge(current.index, after.index)
        return after

    def _lower_loop(self, stmt: ast.stmt, current: Block,
                    ctx: Tuple[ast.AST, ...]) -> Block:
        current.statements.append(_CondMarker(stmt))
        after = self.cfg._new_block(ctx)
        body_entry = self.cfg._new_block(ctx)
        self.cfg.add_edge(current.index, body_entry.index)
        self.cfg.add_edge(current.index, after.index)
        self._loops.append((after.index, current.index))
        body_exit = self._lower_body(stmt.body, body_entry, ctx)
        self._loops.pop()
        if body_exit is not None:
            self.cfg.add_edge(body_exit.index, current.index)
        if getattr(stmt, "orelse", None):
            else_exit = self._lower_body(stmt.orelse, after, ctx)
            return else_exit if else_exit is not None else after
        return after

    def _lower_with(self, stmt: ast.AST, current: Block,
                    ctx: Tuple[ast.AST, ...]) -> Optional[Block]:
        current.statements.append(_WithEnter(stmt))
        inner_ctx = ctx + (stmt,)
        body_entry = self.cfg._new_block(inner_ctx)
        self.cfg.add_edge(current.index, body_entry.index)
        body_exit = self._lower_body(stmt.body, body_entry, inner_ctx)
        after = self.cfg._new_block(ctx)
        if body_exit is not None:
            self.cfg.add_edge(body_exit.index, after.index)
            return after
        return None

    def _lower_try(self, stmt: ast.Try, current: Block,
                   ctx: Tuple[ast.AST, ...]) -> Optional[Block]:
        after = self.cfg._new_block(ctx)
        body_entry = self.cfg._new_block(ctx)
        self.cfg.add_edge(current.index, body_entry.index)
        body_exit = self._lower_body(stmt.body, body_entry, ctx)
        else_exit = body_exit
        if stmt.orelse and body_exit is not None:
            else_entry = self.cfg._new_block(ctx)
            self.cfg.add_edge(body_exit.index, else_entry.index)
            else_exit = self._lower_body(stmt.orelse, else_entry, ctx)
        handler_exits: List[Optional[Block]] = []
        for handler in stmt.handlers:
            handler_entry = self.cfg._new_block(ctx)
            # Exceptional flow approximation: the handler can run with
            # any prefix of the try body executed.
            self.cfg.add_edge(body_entry.index, handler_entry.index)
            if body_exit is not None:
                self.cfg.add_edge(body_exit.index, handler_entry.index)
            handler_exits.append(
                self._lower_body(handler.body, handler_entry, ctx)
            )
        exits = [e for e in [else_exit, *handler_exits] if e is not None]
        if stmt.finalbody:
            final_entry = self.cfg._new_block(ctx)
            for block in exits:
                self.cfg.add_edge(block.index, final_entry.index)
            if not exits:
                self.cfg.add_edge(body_entry.index, final_entry.index)
            final_exit = self._lower_body(stmt.finalbody, final_entry, ctx)
            if final_exit is not None:
                self.cfg.add_edge(final_exit.index, after.index)
                return after
            return None
        if not exits:
            return None
        for block in exits:
            self.cfg.add_edge(block.index, after.index)
        return after


class _CondMarker(ast.stmt):
    """Wrapper statement exposing a compound statement's test/iter
    expression to transfer functions without its body."""

    _fields = ()

    def __init__(self, node: ast.stmt):
        super().__init__()
        self.node = node
        self.expr = getattr(node, "test", None)
        if self.expr is None:
            self.expr = getattr(node, "iter", None)
        self.lineno = node.lineno
        self.col_offset = node.col_offset


class _WithEnter(ast.stmt):
    """Wrapper marking a ``with`` statement's context-manager entry."""

    _fields = ()

    def __init__(self, node: ast.AST):
        super().__init__()
        self.node = node
        self.lineno = node.lineno
        self.col_offset = node.col_offset


def build_cfg(function: ast.AST) -> CFG:
    """CFG of a ``FunctionDef``/``AsyncFunctionDef`` body."""
    return _Builder().build(function.body)


def solve_forward(
    cfg: CFG,
    init,
    join: Callable,
    transfer: Callable,
    bottom=None,
):
    """Forward worklist dataflow over ``cfg``.

    ``init`` is the entry state; unreached blocks start at ``bottom``
    (``None`` means "no information yet" and ``join(None, x) == x``).
    ``transfer(state, statement) -> state`` must be monotone for
    termination; states must support ``==``.

    Returns ``{block_index: in_state}`` at the fixpoint.
    """
    in_states: Dict[int, object] = {block.index: bottom
                                    for block in cfg.blocks}
    in_states[cfg.entry] = init
    worklist = [cfg.entry]
    guard = 0
    limit = 50 * max(1, len(cfg.blocks)) ** 2
    while worklist:
        guard += 1
        if guard > limit:  # pathological lattices: bail out safely
            break
        index = worklist.pop(0)
        state = in_states[index]
        if state is None:
            continue
        for stmt in cfg.blocks[index].statements:
            state = transfer(state, stmt)
        for succ in cfg.blocks[index].successors:
            current = in_states[succ]
            merged = state if current is None else join(current, state)
            if merged != current:
                in_states[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)
    return in_states

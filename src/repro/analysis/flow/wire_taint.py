"""Wire-to-kernel taint tracking (``wire-taint``).

Untrusted bytes enter the system at exactly two places — the serve
layer's HTTP request decode and the cluster's length-prefixed TCP
frame reads — and must pass a protocol codec/validation function
before they reach the engine or the filesystem.  This pass proves it:

* **Sources** — return values of
  ``repro.cluster.protocol.read_frame`` and
  ``repro.serve.http.read_request``; any value derived from an
  :class:`~repro.serve.http.HttpRequest` (attribute reads, ``.json()``)
  is tainted, whether the request came from ``read_request`` or a
  parameter annotated ``HttpRequest``.
* **Sanitizers** — the protocol codecs and validators
  (``SearchRequest.from_json`` and friends, ``RoutingTable.from_json``,
  the ``expect_*`` helpers of :mod:`repro.cluster.protocol`,
  ``parse_table_id``), plus any project function whose ``def`` line
  carries a ``# taint: sanitizer`` comment.  A sanitizer's return
  value is clean.
* **Sinks** — engine entry points (``search``/``search_many``/
  ``search_shard``/``search_shard_batch``/``topk_search``/
  ``add_table``/``remove_table``/``explain``), the persistent-index
  loaders of :mod:`repro.core.kernel.storage`, and filesystem path
  arguments (``open``, ``np.memmap``).

A tainted value reaching a sink argument is an **error**.  Taint is a
may-analysis: it propagates through assignments, subscripts, f-strings,
containers, and calls to unknown functions, joins by union at CFG
merges, and crosses function boundaries through a call-graph worklist
(a project function called with a tainted argument is re-analyzed with
that parameter tainted).  Lambdas and nested functions are analyzed in
the enclosing taint environment, so a handler closing over a raw URL
segment cannot smuggle it past the check.  Implicit flows (branching
on a tainted value) are deliberately out of scope.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import Finding
from repro.analysis.flow.base import FlowRule
from repro.analysis.flow.cfg import (
    _CondMarker,
    _WithEnter,
    build_cfg,
    solve_forward,
)
from repro.analysis.flow.symbols import FunctionInfo, Project
from repro.analysis.rules.base import dotted_name

_SANITIZER_PRAGMA_RE = re.compile(r"#\s*taint:\s*sanitizer\b")

#: Canonical names whose return value is tainted wire input.
SOURCE_FUNCTIONS = {
    "repro.cluster.protocol.read_frame",
    "repro.serve.http.read_request",
}

#: Parameter annotations marking a tainted carrier object: every
#: attribute read or method call on it yields tainted data.
CARRIER_TYPES = {"HttpRequest"}

#: Canonical names of validation/codec functions whose return is clean.
SANITIZER_FUNCTIONS = {
    "repro.serve.protocol.SearchRequest.from_json",
    "repro.serve.protocol.ExplainRequest.from_json",
    "repro.serve.protocol.TableUpsertRequest.from_json",
    "repro.serve.protocol.parse_table_id",
    "repro.cluster.protocol.RoutingTable.from_json",
    "repro.cluster.protocol.expect_type",
    "repro.cluster.protocol.expect_epoch",
    "repro.cluster.protocol.expect_worker_id",
    "repro.cluster.protocol.expect_worker_ids",
    "repro.cluster.protocol.expect_endpoint",
    "repro.cluster.protocol.expect_segment_path",
}

#: Method names that reach the engine: calling any of these with a
#: tainted argument is a finding regardless of receiver resolution.
SINK_METHODS = {
    "search",
    "search_many",
    "search_shard",
    "search_shard_batch",
    "topk_search",
    "add_table",
    "remove_table",
    "explain",
}

#: Canonical function names that are sinks on every argument.
SINK_FUNCTIONS = {
    "repro.core.kernel.storage.load_index",
    "repro.core.kernel.storage.save_index",
    "repro.core.kernel.storage.inspect_index",
}

#: Canonical names that are sinks on their *path* argument only.
PATH_SINKS = {"open": 0, "numpy.memmap": 0, "os.makedirs": 0}


class _Env:
    """Immutable taint environment: the set of tainted local names.

    Two name spaces share it: plain locals, and ``carrier:<name>`` for
    carrier objects whose *derived* values (not the object itself) are
    tainted.
    """

    __slots__ = ("names",)

    def __init__(self, names: FrozenSet[str] = frozenset()):
        self.names = names

    def __eq__(self, other) -> bool:
        return isinstance(other, _Env) and self.names == other.names

    def __hash__(self) -> int:
        return hash(self.names)

    def with_names(self, names: Set[str]) -> "_Env":
        return _Env(self.names | frozenset(names)) if names else self

    def without(self, name: str) -> "_Env":
        return _Env(self.names - {name})


class WireTaintRule(FlowRule):
    """Wire input must pass a protocol codec before engine/filesystem."""

    id = "wire-taint"
    severity = "error"
    description = (
        "a value read from the wire (HTTP body, cluster frame) reaches "
        "an engine or filesystem sink without passing a protocol "
        "codec/validation function"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        analysis = _TaintAnalysis(project)
        for display, line, message in analysis.run():
            yield self.project_finding(display, line, message)


class _TaintAnalysis:
    def __init__(self, project: Project):
        self.project = project
        self.sanitizers = set(SANITIZER_FUNCTIONS)
        self._collect_annotated_sanitizers()
        #: qualname -> frozenset of tainted parameter names discovered.
        self.tainted_params: Dict[str, FrozenSet[str]] = {}
        self.findings: Dict[Tuple[str, int, str], None] = {}

    def _collect_annotated_sanitizers(self) -> None:
        for function in self.project.functions():
            comments = function.module.source.comments
            lines = [function.node.lineno]
            lines.extend(d.lineno for d in function.node.decorator_list)
            if any(
                _SANITIZER_PRAGMA_RE.search(comments.get(line, ""))
                for line in lines
            ):
                self.sanitizers.add(self._qualified(function))

    @staticmethod
    def _qualified(function: FunctionInfo) -> str:
        return function.qualname.replace(":", ".")

    # ------------------------------------------------------------------
    def run(self) -> List[Tuple[str, int, str]]:
        worklist: List[FunctionInfo] = []
        for function in self.project.functions():
            self.tainted_params[function.qualname] = frozenset()
            worklist.append(function)
        seen_states: Dict[str, FrozenSet[str]] = {}
        guard = 0
        while worklist and guard < 10000:
            guard += 1
            function = worklist.pop(0)
            state = self.tainted_params[function.qualname]
            if seen_states.get(function.qualname) == state:
                continue
            seen_states[function.qualname] = state
            for callee, params in self._analyze(function, state):
                merged = self.tainted_params[callee.qualname] | params
                if merged != self.tainted_params[callee.qualname]:
                    self.tainted_params[callee.qualname] = merged
                    if callee not in worklist:
                        worklist.append(callee)
        return [
            (display, line, message)
            for (display, line, message) in self.findings
        ]

    # ------------------------------------------------------------------
    def _analyze(
        self, function: FunctionInfo, tainted_params: FrozenSet[str]
    ) -> List[Tuple[FunctionInfo, FrozenSet[str]]]:
        """Analyze one function; returns (callee, tainted params) facts."""
        propagations: List[Tuple[FunctionInfo, FrozenSet[str]]] = []
        init_names: Set[str] = set(tainted_params)
        for arg in (function.node.args.args
                    + function.node.args.kwonlyargs
                    + function.node.args.posonlyargs):
            annotation = arg.annotation
            if annotation is not None:
                name = dotted_name(annotation)
                if name and name.split(".")[-1] in CARRIER_TYPES:
                    init_names.add(f"carrier:{arg.arg}")
        init = _Env(frozenset(init_names))
        cfg = build_cfg(function.node)

        def join(a: _Env, b: _Env) -> _Env:
            return _Env(a.names | b.names)

        def transfer(env: _Env, stmt: ast.stmt) -> _Env:
            return self._transfer(function, env, stmt, propagations)

        in_states = solve_forward(cfg, init, join, transfer, bottom=None)
        # Re-walk every block at its fixpoint in-state to emit findings
        # (the solver's transfer already collected propagation facts,
        # but findings need the final states too — dedup via the dict).
        for block in cfg.blocks:
            env = in_states.get(block.index)
            if env is None:
                env = _Env()
            for stmt in block.statements:
                env = self._transfer(function, env, stmt, propagations,
                                     report=True)
        return propagations

    # ------------------------------------------------------------------
    def _transfer(
        self,
        function: FunctionInfo,
        env: _Env,
        stmt: ast.stmt,
        propagations: List[Tuple[FunctionInfo, FrozenSet[str]]],
        report: bool = False,
    ) -> _Env:
        if isinstance(stmt, _WithEnter):
            for item in getattr(stmt.node, "items", []):
                self._check_expr(function, env, item.context_expr,
                                 propagations, report)
            return env
        if isinstance(stmt, _CondMarker):
            if stmt.expr is not None:
                self._check_expr(function, env, stmt.expr,
                                 propagations, report)
            return env
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: analyze its body in the enclosing environment
            # (closure taint), params treated as clean.
            inner = env
            for node in stmt.body:
                inner = self._transfer(function, inner, node,
                                       propagations, report)
            return env
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            tainted = (
                value is not None
                and self._check_expr(function, env, value,
                                     propagations, report)
            )
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                for name in self._target_names(target):
                    if tainted or (isinstance(stmt, ast.AugAssign)
                                   and name in env.names):
                        env = env.with_names({name})
                    elif isinstance(stmt, ast.Assign):
                        env = env.without(name)
            return env
        if isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor,
                             ast.With, ast.AsyncWith, ast.Try)):
            # Raw compound statements only occur inside nested defs
            # (the CFG lowers top-level ones); approximate by walking
            # every sub-statement in sequence.
            for field_name in ("items",):
                for item in getattr(stmt, field_name, []):
                    self._check_expr(function, env, item.context_expr,
                                     propagations, report)
            for attr in ("test", "iter"):
                sub = getattr(stmt, attr, None)
                if sub is not None:
                    self._check_expr(function, env, sub,
                                     propagations, report)
            for body_attr in ("body", "orelse", "finalbody"):
                for sub in getattr(stmt, body_attr, []):
                    if isinstance(sub, ast.stmt):
                        env = self._transfer(function, env, sub,
                                             propagations, report)
            for handler in getattr(stmt, "handlers", []):
                for sub in handler.body:
                    env = self._transfer(function, env, sub,
                                         propagations, report)
            return env
        # Plain expression/return/raise/assert statements.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._check_expr(function, env, child,
                                 propagations, report)
        return env

    @staticmethod
    def _target_names(target: ast.AST) -> Iterator[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from _TaintAnalysis._target_names(element)
        elif isinstance(target, ast.Starred):
            yield from _TaintAnalysis._target_names(target.value)

    # ------------------------------------------------------------------
    def _check_expr(
        self,
        function: FunctionInfo,
        env: _Env,
        node: ast.AST,
        propagations: List[Tuple[FunctionInfo, FrozenSet[str]]],
        report: bool,
    ) -> bool:
        """Taintedness of an expression; checks sinks along the way."""
        if isinstance(node, ast.Name):
            return node.id in env.names
        if isinstance(node, ast.Lambda):
            # Analyze the body in the enclosing environment (params
            # clean); the lambda expression itself is not tainted.
            self._check_expr(function, env, node.body, propagations,
                             report)
            return False
        if isinstance(node, ast.Attribute):
            base_tainted = self._check_expr(function, env, node.value,
                                            propagations, report)
            if self._is_carrier(env, node.value):
                return True
            return base_tainted
        if isinstance(node, ast.Call):
            return self._check_call(function, env, node, propagations,
                                    report)
        if isinstance(node, (ast.Subscript, ast.Starred, ast.Await,
                             ast.UnaryOp, ast.FormattedValue)):
            return any(
                self._check_expr(function, env, child, propagations,
                                 report)
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            )
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.JoinedStr,
                             ast.Compare, ast.IfExp, ast.Tuple, ast.List,
                             ast.Set, ast.Dict)):
            tainted = False
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    if self._check_expr(function, env, child,
                                        propagations, report):
                        tainted = True
            if isinstance(node, ast.Compare):
                return False  # comparisons yield booleans, not data
            return tainted
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            # A tainted iterable taints the loop variables, but the
            # comprehension's own taint is the element's alone — a
            # sanitizer applied per element yields a clean container.
            iter_tainted = False
            for generator in node.generators:
                if self._check_expr(function, env, generator.iter,
                                    propagations, report):
                    iter_tainted = True
            local = env
            if iter_tainted:
                for generator in node.generators:
                    local = local.with_names(
                        set(self._target_names(generator.target))
                    )
            tainted = False
            for sub in ([node.elt] if hasattr(node, "elt")
                        else [node.key, node.value]):
                if self._check_expr(function, local, sub, propagations,
                                    report):
                    tainted = True
            return tainted
        if isinstance(node, ast.Constant):
            return False
        # Anything else: walk children, propagate any taint.
        return any(
            self._check_expr(function, env, child, propagations, report)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    def _is_carrier(self, env: _Env, node: ast.AST) -> bool:
        return (isinstance(node, ast.Name)
                and f"carrier:{node.id}" in env.names)

    # ------------------------------------------------------------------
    def _check_call(
        self,
        function: FunctionInfo,
        env: _Env,
        call: ast.Call,
        propagations: List[Tuple[FunctionInfo, FrozenSet[str]]],
        report: bool,
    ) -> bool:
        arg_taints: List[Tuple[Optional[str], bool]] = []
        for arg in call.args:
            value = arg.value if isinstance(arg, ast.Starred) else arg
            arg_taints.append(
                (None,
                 self._check_expr(function, env, value, propagations,
                                  report))
            )
        for keyword in call.keywords:
            arg_taints.append(
                (keyword.arg,
                 self._check_expr(function, env, keyword.value,
                                  propagations, report))
            )
        any_tainted = any(tainted for _, tainted in arg_taints)
        canonical = self.project.canonical_name(function, call.func)
        # Deferred-call indirection: ``functools.partial(f, x)`` and
        # ``loop.run_in_executor(pool, f, x)`` invoke ``f`` later with
        # the bound arguments — analyze the underlying call directly so
        # taint crosses the indirection.
        deferred = self._deferred_call(canonical, call)
        if deferred is not None:
            self._check_call(function, env, deferred, propagations,
                             report)
        # Receiver taint: method calls on tainted objects yield taint.
        receiver_tainted = False
        if isinstance(call.func, ast.Attribute):
            receiver_tainted = self._check_expr(
                function, env, call.func.value, propagations, False
            )
            if self._is_carrier(env, call.func.value):
                receiver_tainted = True
        # Sanitizers: clean return, regardless of argument taint.
        if canonical is not None and (
            canonical in self.sanitizers
            or self._resolves_to_sanitizer(function, call)
        ):
            return False
        # Sources.
        if canonical in SOURCE_FUNCTIONS:
            return True
        # Sinks.
        if report and any_tainted:
            self._report_sink(function, call, canonical, arg_taints)
        # Project calls: propagate taint into the callee's params.
        callee = self.project.resolve_call(function, call)
        if callee is not None:
            if self._qualified(callee) in self.sanitizers:
                return False
            if any_tainted:
                tainted_names = self._map_args_to_params(
                    callee, call, arg_taints
                )
                if tainted_names:
                    propagations.append((callee, tainted_names))
            # Return taint: a callee analyzed with tainted params (or a
            # source inside) may return taint; approximate by "any
            # tainted arg taints the return" for project calls too.
            return any_tainted or self._returns_source(callee)
        return any_tainted or receiver_tainted

    @staticmethod
    def _deferred_call(canonical: Optional[str],
                       call: ast.Call) -> Optional[ast.Call]:
        """The underlying call bound by a deferred-call wrapper."""
        target: Optional[ast.expr] = None
        bound: List[ast.expr] = []
        if canonical == "functools.partial" and call.args:
            target = call.args[0]
            bound = list(call.args[1:])
        elif (isinstance(call.func, ast.Attribute)
              and call.func.attr == "run_in_executor"
              and len(call.args) >= 2):
            target = call.args[1]
            bound = list(call.args[2:])
        if target is None or isinstance(target, (ast.Lambda,
                                                 ast.Constant)):
            return None
        synthetic = ast.Call(func=target, args=bound,
                             keywords=list(call.keywords))
        ast.copy_location(synthetic, call)
        ast.fix_missing_locations(synthetic)
        return synthetic

    def _resolves_to_sanitizer(self, function: FunctionInfo,
                               call: ast.Call) -> bool:
        callee = self.project.resolve_call(function, call)
        return (callee is not None
                and self._qualified(callee) in self.sanitizers)

    _returns_source_cache: Dict[str, bool] = {}

    def _returns_source(self, callee: FunctionInfo) -> bool:
        """Whether the callee's body calls a source function directly."""
        cached = self._returns_source_cache.get(callee.qualname)
        if cached is not None:
            return cached
        result = False
        for node in ast.walk(callee.node):
            if isinstance(node, ast.Call):
                canonical = self.project.canonical_name(callee, node.func)
                if canonical in SOURCE_FUNCTIONS:
                    result = True
                    break
        self._returns_source_cache[callee.qualname] = result
        return result

    @staticmethod
    def _map_args_to_params(
        callee: FunctionInfo,
        call: ast.Call,
        arg_taints: List[Tuple[Optional[str], bool]],
    ) -> FrozenSet[str]:
        params = callee.params()
        offset = 1 if params[:1] == ["self"] and isinstance(
            call.func, ast.Attribute
        ) else 0
        tainted: Set[str] = set()
        positional = [t for name, t in arg_taints if name is None]
        for index, is_tainted in enumerate(positional):
            slot = index + offset
            if is_tainted and slot < len(params):
                tainted.add(params[slot])
        for name, is_tainted in arg_taints:
            if name is not None and is_tainted and name in params:
                tainted.add(name)
        return frozenset(tainted)

    # ------------------------------------------------------------------
    def _report_sink(
        self,
        function: FunctionInfo,
        call: ast.Call,
        canonical: Optional[str],
        arg_taints: List[Tuple[Optional[str], bool]],
    ) -> None:
        display = function.module.source.display
        sink_name: Optional[str] = None
        if canonical in SINK_FUNCTIONS:
            sink_name = canonical
        elif canonical in PATH_SINKS:
            position = PATH_SINKS[canonical]
            positional = [t for name, t in arg_taints if name is None]
            path_tainted = (
                (position < len(positional) and positional[position])
                or any(name in ("file", "filename", "path") and tainted
                       for name, tainted in arg_taints)
            )
            if path_tainted:
                sink_name = canonical
        elif (isinstance(call.func, ast.Attribute)
              and call.func.attr in SINK_METHODS):
            sink_name = call.func.attr
        elif (isinstance(call.func, ast.Name)
              and call.func.id in SINK_METHODS):
            sink_name = call.func.id
        if sink_name is None:
            return
        key = (
            display,
            call.lineno,
            f"wire-tainted value reaches sink '{sink_name}' without "
            "passing a protocol codec/validation function; validate it "
            "with the serve/cluster protocol helpers first",
        )
        self.findings[key] = None

"""``repro.analysis`` — from-scratch static analysis for this codebase.

A pure-stdlib AST lint engine with a project-specific rule pack:
lock discipline (``# guarded-by:`` annotations), asyncio hygiene,
determinism (seeded RNGs, stable iteration order, no wall-clock in
scoring), kernel dtype safety, and API hygiene.  See
``docs/static-analysis.md`` for the catalog and workflow.

Run it as ``python -m repro.analysis`` or ``thetis lint``.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineEntry,
    find_baseline_file,
)
from repro.analysis.engine import (
    SEVERITIES,
    Finding,
    LintEngine,
    LintReport,
    SourceFile,
)
from repro.analysis.rules import ALL_RULES, Rule, get_rules, rules_by_id

__all__ = [
    "ALL_RULES",
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "SEVERITIES",
    "SourceFile",
    "find_baseline_file",
    "get_rules",
    "rules_by_id",
]

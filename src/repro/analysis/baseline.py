"""Baseline suppression for :mod:`repro.analysis`.

A baseline records *accepted* findings so the analyzer can gate only on
new ones.  Every entry must carry a non-empty ``reason`` — a baseline
without a justification is a lint failure waiting to be forgotten, so
the loader rejects it outright.

Format (``.lint-baseline.json`` at the repository root)::

    {
      "entries": [
        {
          "rule": "foreign-exception",
          "path": "src/repro/serve/metrics.py",
          "message": "raises builtin 'ValueError' ...",
          "reason": "public API contract pinned by tests"
        }
      ]
    }

Matching is by ``(rule, path, message)`` — deliberately line-free, so
unrelated edits above a baselined finding do not invalidate it.  One
entry suppresses every identical finding in its file (identical
messages in one file describe the same defect class).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.exceptions import AnalysisError

#: Conventional baseline file name, discovered upward from the lint
#: target (see :func:`find_baseline_file`).
BASELINE_FILENAME = ".lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding plus the justification for accepting it."""

    rule: str
    path: str
    message: str
    reason: str

    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)


@dataclass
class Baseline:
    """The set of accepted findings; tracks which entries matched."""

    entries: List[BaselineEntry]
    source: Optional[Path] = None
    _used: Set[Tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            document = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}")
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path} is not valid JSON: {exc}")
        raw_entries = document.get("entries")
        if not isinstance(raw_entries, list):
            raise AnalysisError(
                f"baseline {path} must contain an 'entries' list"
            )
        entries: List[BaselineEntry] = []
        for index, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise AnalysisError(
                    f"baseline {path} entry {index} is not an object"
                )
            missing = {"rule", "path", "message", "reason"} - set(raw)
            if missing:
                raise AnalysisError(
                    f"baseline {path} entry {index} is missing "
                    f"{sorted(missing)}"
                )
            if not str(raw["reason"]).strip():
                raise AnalysisError(
                    f"baseline {path} entry {index} has an empty 'reason': "
                    "every baselined finding needs a justification"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    reason=str(raw["reason"]),
                )
            )
        return cls(entries=entries, source=Path(path))

    # ------------------------------------------------------------------
    def matches(self, finding) -> bool:
        """Whether ``finding`` is baselined (and mark its entry used)."""
        fingerprint = finding.fingerprint()
        for entry in self.entries:
            if entry.fingerprint() == fingerprint:
                self._used.add(fingerprint)
                return True
        return False

    def stale_entries(self) -> List[Tuple[str, str, str]]:
        """Entries that matched nothing — candidates for deletion."""
        return [
            entry.fingerprint()
            for entry in self.entries
            if entry.fingerprint() not in self._used
        ]


def find_baseline_file(start: Path) -> Optional[Path]:
    """Search ``start`` and its ancestors for :data:`BASELINE_FILENAME`.

    ``start`` may be a file (its directory is used) or a directory.
    Returns ``None`` when no baseline exists anywhere up the tree.
    """
    origin = Path(start).resolve()
    if origin.is_file():
        origin = origin.parent
    for directory in (origin, *origin.parents):
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return None

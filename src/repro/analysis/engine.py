"""Core of the ``repro.analysis`` lint engine.

A from-scratch, pure-stdlib static analyzer: no external linters, just
:mod:`ast` + :mod:`tokenize`.  The engine owns everything that is not a
rule — file discovery, parsing, comment extraction, pragma suppression,
baseline application, and severity gating — so each rule in
:mod:`repro.analysis.rules` is a small ``check(SourceFile)`` generator.

Suppression layers (outermost wins first):

1. **Inline pragmas** — ``# lint: disable=rule-a,rule-b`` on the
   offending line suppresses those rules for that line; the same pragma
   on a ``def``/``class`` line suppresses them for the whole body.
   ``# lint: disable-file=rule-a`` anywhere suppresses a rule for the
   whole file.  ``all`` is accepted as a rule name.
2. **Baseline file** — known findings recorded with a justification in
   a JSON baseline (see :mod:`repro.analysis.baseline`) are reported as
   *baselined*, not as failures.  New findings always gate.

Rules see one :class:`SourceFile` per file, which carries the parsed
tree, raw lines, and every comment keyed by line (rules use this for
``# guarded-by:`` annotations).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import Baseline
from repro.exceptions import AnalysisError

#: Severity levels, least to most severe.  Gating compares indices.
SEVERITIES = ("info", "warning", "error")

#: Directories never descended into during discovery.
SKIPPED_DIRS = {"__pycache__", ".git", ".hg", ".venv", "node_modules"}

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[\w,\- ]+)"
)


def severity_index(severity: str) -> int:
    """Rank of ``severity`` in :data:`SEVERITIES` (higher = worse)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise AnalysisError(
            f"unknown severity {severity!r}: use one of {SEVERITIES}"
        )


@dataclass(frozen=True)
class Finding:
    """One diagnostic: rule id, severity, location, human message."""

    rule: str
    severity: str
    path: str
    line: int
    message: str

    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers drift, messages rarely do."""
        return (self.rule, self.path, self.message)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity}: "
            f"[{self.rule}] {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class SourceFile:
    """A parsed Python file plus everything rules need to inspect it."""

    def __init__(self, path: Path, display: str, text: str):
        self.path = path
        self.display = display
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=display)
        self.comments: Dict[int, str] = self._scan_comments(text)

    @staticmethod
    def _scan_comments(text: str) -> Dict[int, str]:
        """Map line number -> comment text, via the real tokenizer.

        Using :mod:`tokenize` (not a substring scan) means a ``#``
        inside a string literal is never mistaken for a comment.
        """
        comments: Dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError):
            # The file will already have failed ast.parse; a partial
            # comment map is the best we can do.
            pass
        return comments

    def parts(self) -> Tuple[str, ...]:
        """Path components of the display path (for rule scoping)."""
        return Path(self.display).parts


#: Process-wide parse cache: resolved path -> (key, SourceFile) where
#: key is (mtime_ns, size, display).  Parsing plus comment tokenizing
#: dominates lint wall-time; repeated runs in one process (tests, the
#: prune-baseline double pass) hit the cache instead.
_PARSE_CACHE: Dict[str, Tuple[Tuple[int, int, str], SourceFile]] = {}


def load_source(path: Path, display: str) -> SourceFile:
    """Parse ``path`` into a :class:`SourceFile`, memoized by
    ``(path, mtime, size)`` so unchanged files parse once per process."""
    resolved = str(Path(path).resolve())
    try:
        stat = Path(path).stat()
        key = (stat.st_mtime_ns, stat.st_size, display)
    except OSError:
        key = None
    if key is not None:
        cached = _PARSE_CACHE.get(resolved)
        if cached is not None and cached[0] == key:
            return cached[1]
    source = SourceFile(
        Path(path), display, Path(path).read_text(encoding="utf-8")
    )
    if key is not None:
        _PARSE_CACHE[resolved] = (key, source)
    return source


class _Suppressions:
    """Pragma-derived suppression state for one file."""

    def __init__(self, source: SourceFile):
        self.file_wide: Set[str] = set()
        self.by_line: Dict[int, Set[str]] = {}
        self.spans: List[Tuple[int, int, Set[str]]] = []
        for line, comment in source.comments.items():
            match = _PRAGMA_RE.search(comment)
            if match is None:
                continue
            rules = {
                name.strip()
                for name in match.group("rules").split(",")
                if name.strip()
            }
            if match.group("kind") == "disable-file":
                self.file_wide |= rules
            else:
                self.by_line.setdefault(line, set()).update(rules)
        # A pragma on a def/class line covers the whole definition.
        # Decorated definitions anchor on any decorator line too: the
        # pragma naturally lands next to whichever line the author is
        # looking at, and the span must start at the first decorator so
        # findings reported against decorator lines are also covered.
        for node in ast.walk(source.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                decorators = getattr(node, "decorator_list", [])
                anchors = [node.lineno] + [d.lineno for d in decorators]
                rules: Set[str] = set()
                for line in anchors:
                    rules |= self.by_line.get(line, set())
                if rules:
                    end = node.end_lineno or node.lineno
                    self.spans.append((min(anchors), end, rules))

    def suppresses(self, finding: Finding) -> bool:
        for rules in (
            self.file_wide,
            self.by_line.get(finding.line, ()),
        ):
            if rules and (finding.rule in rules or "all" in rules):
                return True
        for start, end, rules in self.spans:
            if start <= finding.line <= end and (
                finding.rule in rules or "all" in rules
            ):
                return True
        return False


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: List[Finding]
    baselined: List[Finding]
    stale_baseline: List[Tuple[str, str, str]]
    files_checked: int
    #: JSON-able data published by project-wide passes (e.g. the
    #: lock-order pass's acquisition graph).
    artifacts: Dict[str, object] = field(default_factory=dict)

    def counts(self) -> Dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def worst(self) -> Optional[str]:
        worst: Optional[str] = None
        for finding in self.findings:
            if worst is None or (
                severity_index(finding.severity) > severity_index(worst)
            ):
                worst = finding.severity
        return worst

    def gates(self, fail_on: str) -> bool:
        """Whether the run fails at the ``fail_on`` severity threshold."""
        if fail_on == "never":
            return False
        threshold = severity_index(fail_on)
        return any(
            severity_index(finding.severity) >= threshold
            for finding in self.findings
        )


class LintEngine:
    """File discovery + per-rule dispatch + suppression + baseline."""

    def __init__(self, rules: Sequence, baseline: Optional[Baseline] = None):
        if not rules:
            raise AnalysisError("engine needs at least one rule")
        seen: Set[str] = set()
        for rule in rules:
            if rule.id in seen:
                raise AnalysisError(f"duplicate rule id {rule.id!r}")
            seen.add(rule.id)
        self.rules = tuple(rules)
        self.baseline = baseline if baseline is not None else Baseline.empty()

    # ------------------------------------------------------------------
    @staticmethod
    def discover(paths: Iterable[Path]) -> List[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        found: Set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_file():
                found.add(path)
            elif path.is_dir():
                for candidate in path.rglob("*.py"):
                    if not SKIPPED_DIRS & set(candidate.parts):
                        found.add(candidate)
            else:
                raise AnalysisError(f"no such file or directory: {path}")
        return sorted(found)

    @staticmethod
    def display_path(path: Path) -> str:
        """Stable, cwd-relative posix path used in findings/baselines."""
        try:
            relative = Path(path).resolve().relative_to(Path.cwd().resolve())
            return relative.as_posix()
        except ValueError:
            return Path(path).as_posix()

    # ------------------------------------------------------------------
    def check_source(
        self,
        source: SourceFile,
        suppressions: Optional[_Suppressions] = None,
    ) -> List[Finding]:
        """All pragma-filtered findings of every applicable rule."""
        if suppressions is None:
            suppressions = _Suppressions(source)
        findings: List[Finding] = []
        for rule in self.rules:
            if not rule.applies(source):
                continue
            for finding in rule.check(source):
                if not suppressions.suppresses(finding):
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
        return findings

    def _process_file(
        self, path: Path
    ) -> Tuple[Optional[SourceFile], Optional[_Suppressions], List[Finding]]:
        """Parse one file and run the per-file rules over it."""
        display = self.display_path(path)
        try:
            source = load_source(path, display)
        except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
            finding = Finding(
                rule="parse-error",
                severity="error",
                path=display,
                line=getattr(exc, "lineno", None) or 1,
                message=f"could not parse file: {exc}",
            )
            return (None, None, [finding])
        suppressions = _Suppressions(source)
        return (source, suppressions,
                self.check_source(source, suppressions))

    def run(self, paths: Iterable[Path], jobs: int = 1) -> LintReport:
        """Lint ``paths`` (files or directories) and apply the baseline.

        Per-file rules run first (optionally across ``jobs`` worker
        threads — parsing releases the GIL poorly but tokenizing and
        rule checks interleave well enough to help on large trees);
        project-wide rules then run once over every successfully parsed
        file.  Output ordering is deterministic regardless of ``jobs``.
        """
        files = self.discover(paths)
        if jobs > 1 and len(files) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=jobs) as pool:
                outcomes = list(pool.map(self._process_file, files))
        else:
            outcomes = [self._process_file(path) for path in files]
        collected: List[Finding] = []
        sources: List[SourceFile] = []
        suppressions_by_path: Dict[str, _Suppressions] = {}
        for source, suppressions, findings in outcomes:
            collected.extend(findings)
            if source is not None and suppressions is not None:
                sources.append(source)
                suppressions_by_path[source.display] = suppressions
        artifacts: Dict[str, object] = {}
        project_rules = [
            rule for rule in self.rules if getattr(rule, "project", False)
        ]
        if project_rules and sources:
            # Imported here: the flow package depends on this module.
            from repro.analysis.flow.symbols import Project

            project = Project(sources)
            project_findings: List[Finding] = []
            for rule in project_rules:
                for finding in rule.check_project(project):
                    suppressions = suppressions_by_path.get(finding.path)
                    if suppressions is None or not suppressions.suppresses(
                        finding
                    ):
                        project_findings.append(finding)
                artifacts.update(rule.artifacts())
            project_findings.sort(
                key=lambda f: (f.path, f.line, f.rule, f.message)
            )
            collected.extend(project_findings)
        active: List[Finding] = []
        baselined: List[Finding] = []
        for finding in collected:
            if self.baseline.matches(finding):
                baselined.append(finding)
            else:
                active.append(finding)
        return LintReport(
            findings=active,
            baselined=baselined,
            stale_baseline=self.baseline.stale_entries(),
            files_checked=len(files),
            artifacts=artifacts,
        )

"""Concurrency rules: lock discipline and asyncio hygiene.

The system's thread-safety story rests on a handful of locks guarding
mutable state (similarity caches, worker pools, serve snapshots and
metrics).  These rules make that discipline machine-checked:

``guarded-attr-outside-lock``
    Instance attributes annotated ``# guarded-by: <lock>`` on their
    assignment must only be touched inside ``with self.<lock>:``.
    ``__init__`` and ``__setstate__`` are exempt (the object is not yet
    shared while it is being constructed or unpickled).  Intentionally
    lock-free fast paths carry an inline pragma plus a comment saying
    *why* the race is benign.

``lock-in-async``
    A synchronous ``with <something>lock:`` inside ``async def`` blocks
    the event loop for every other request; use an ``asyncio`` lock or
    move the work to an executor.

``blocking-call-in-async``
    Known blocking calls (``time.sleep``, ``open``, ``subprocess.*``,
    sync sockets/urllib) inside ``async def`` stall the serve path.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set

from repro.analysis.engine import Finding, SourceFile
from repro.analysis.rules.base import (
    Rule,
    canonical_call_name,
    dotted_name,
    import_aliases,
    is_self_attribute,
)

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")

#: Methods where guarded attributes may be touched freely: the instance
#: is not visible to other threads yet.
_CONSTRUCTION_METHODS = {"__init__", "__setstate__", "__new__"}

#: Call targets that block the thread (canonical dotted names).
_BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen.wait",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
}

_LOCKISH_RE = re.compile(r"(?:^|_)(?:r?lock|mutex|semaphore)$", re.IGNORECASE)


def _looks_like_lock(expr: ast.AST) -> bool:
    """Heuristic: the context-manager expression names a lock."""
    name = dotted_name(expr)
    if name is None:
        if isinstance(expr, ast.Call):
            return _looks_like_lock(expr.func)
        return False
    last = name.split(".")[-1]
    if last in ("acquire", "acquire_lock"):
        return True
    return bool(_LOCKISH_RE.search(last))


class GuardedAttributeRule(Rule):
    """Enforce ``# guarded-by: <lock>`` annotations lexically."""

    id = "guarded-attr-outside-lock"
    severity = "error"
    description = (
        "an attribute annotated '# guarded-by: <lock>' is read or "
        "written outside a 'with self.<lock>:' block"
    )

    # ------------------------------------------------------------------
    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _own_nodes(self, class_node: ast.ClassDef) -> Iterator[ast.AST]:
        """Walk the class without descending into nested classes."""
        stack: List[ast.AST] = list(class_node.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, ast.ClassDef):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _guarded_attrs(
        self, source: SourceFile, class_node: ast.ClassDef
    ) -> Dict[str, str]:
        """attr name -> lock name, from assignment-line annotations."""
        guarded: Dict[str, str] = {}
        for node in self._own_nodes(class_node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            attrs = [
                attr for attr in map(is_self_attribute, targets)
                if attr is not None
            ]
            if not attrs:
                continue
            for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                comment = source.comments.get(line)
                if comment is None:
                    continue
                match = _GUARDED_BY_RE.search(comment)
                if match is not None:
                    for attr in attrs:
                        guarded[attr] = match.group(1)
                    break
        return guarded

    def _check_class(
        self, source: SourceFile, class_node: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = self._guarded_attrs(source, class_node)
        if not guarded:
            return
        for member in class_node.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if member.name in _CONSTRUCTION_METHODS:
                continue
            for statement in member.body:
                yield from self._visit(source, statement, guarded, frozenset())

    def _held_after(self, node: ast.With, held: frozenset) -> frozenset:
        acquired: Set[str] = set()
        for item in node.items:
            attr = is_self_attribute(item.context_expr)
            if attr is not None:
                acquired.add(attr)
        return held | frozenset(acquired)

    def _visit(
        self,
        source: SourceFile,
        node: ast.AST,
        guarded: Dict[str, str],
        held: frozenset,
    ) -> Iterator[Finding]:
        if isinstance(node, ast.With):
            new_held = self._held_after(node, held)
            for item in node.items:
                yield from self._visit(source, item, guarded, held)
            for statement in node.body:
                yield from self._visit(source, statement, guarded, new_held)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested function runs later, possibly without the lock:
            # locks held lexically here give no guarantee at call time.
            children = (
                node.body if isinstance(node.body, list) else [node.body]
            )
            for child in children:
                yield from self._visit(source, child, guarded, frozenset())
            return
        attr = is_self_attribute(node)
        if attr is not None and attr in guarded:
            lock = guarded[attr]
            if lock not in held:
                yield self.finding(
                    source,
                    node,
                    f"'self.{attr}' is guarded by 'self.{lock}' but "
                    f"accessed outside a 'with self.{lock}:' block",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._visit(source, child, guarded, held)


class LockInAsyncRule(Rule):
    """Flag synchronous lock acquisition inside ``async def``."""

    id = "lock-in-async"
    severity = "error"
    description = (
        "a synchronous (threading) lock is acquired inside an async "
        "function, blocking the event loop"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for child in ast.walk(node):
                if isinstance(child, ast.With):
                    for item in child.items:
                        if _looks_like_lock(item.context_expr):
                            name = dotted_name(item.context_expr) or "<lock>"
                            yield self.finding(
                                source,
                                child,
                                f"synchronous lock '{name}' acquired inside "
                                f"'async def {node.name}' blocks the event "
                                "loop; use asyncio.Lock or an executor",
                            )


class BlockingCallInAsyncRule(Rule):
    """Flag known blocking calls inside ``async def`` bodies."""

    id = "blocking-call-in-async"
    severity = "error"
    description = (
        "a blocking call (time.sleep, open, subprocess, sync IO) is "
        "made directly inside an async function"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            # Nested *sync* defs are excluded: they typically run in an
            # executor, which is exactly the recommended fix.
            for child in self._walk_async_body(node):
                if not isinstance(child, ast.Call):
                    continue
                target = canonical_call_name(child.func, aliases)
                if target is None:
                    continue
                if target == "open" or target in _BLOCKING_CALLS:
                    yield self.finding(
                        source,
                        child,
                        f"blocking call '{target}' inside "
                        f"'async def {node.name}' stalls the event loop; "
                        "use asyncio equivalents or run_in_executor",
                    )

    @staticmethod
    def _walk_async_body(root: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        stack: List[ast.AST] = list(root.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

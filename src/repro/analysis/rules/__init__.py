"""Rule registry for :mod:`repro.analysis`.

``ALL_RULES`` is the shipped rule pack; :func:`get_rules` resolves a
user-supplied subset of rule ids (the CLI's ``--rules``).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.rules.base import Rule
from repro.analysis.rules.concurrency import (
    BlockingCallInAsyncRule,
    GuardedAttributeRule,
    LockInAsyncRule,
)
from repro.analysis.rules.determinism import (
    UnorderedSetOrderRule,
    UnseededRandomRule,
    WallClockInScoringRule,
)
from repro.analysis.rules.hygiene import (
    AllConsistencyRule,
    DeadPrivateHelperRule,
    ForeignExceptionRule,
    UnusedImportRule,
)
from repro.analysis.rules.kernel_safety import (
    FloatDtypeMixRule,
    MemmapExplicitRule,
    MissingDtypeRule,
    NpArrayCopyRule,
)
from repro.exceptions import AnalysisError

__all__ = [
    "ALL_RULES",
    "Rule",
    "get_rules",
    "rules_by_id",
]

#: The shipped rule pack, in catalog order.
ALL_RULES: Tuple[Rule, ...] = (
    # concurrency
    GuardedAttributeRule(),
    LockInAsyncRule(),
    BlockingCallInAsyncRule(),
    # determinism
    UnseededRandomRule(),
    UnorderedSetOrderRule(),
    WallClockInScoringRule(),
    # kernel safety
    MissingDtypeRule(),
    NpArrayCopyRule(),
    FloatDtypeMixRule(),
    MemmapExplicitRule(),
    # API hygiene
    AllConsistencyRule(),
    ForeignExceptionRule(),
    UnusedImportRule(),
    DeadPrivateHelperRule(),
)


def rules_by_id() -> Dict[str, Rule]:
    """Mapping of rule id -> rule instance for the shipped pack."""
    return {rule.id: rule for rule in ALL_RULES}


def get_rules(ids: Sequence[str]) -> Tuple[Rule, ...]:
    """Resolve ``ids`` against the registry, preserving catalog order."""
    registry = rules_by_id()
    unknown = [rule_id for rule_id in ids if rule_id not in registry]
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s) {unknown}: known rules are "
            f"{sorted(registry)}"
        )
    wanted = set(ids)
    return tuple(rule for rule in ALL_RULES if rule.id in wanted)

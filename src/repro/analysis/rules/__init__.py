"""Rule registry for :mod:`repro.analysis`.

``ALL_RULES`` is the shipped per-file (syntax) rule pack; the flow
pack lives in :mod:`repro.analysis.flow` and is resolved lazily here
(it depends on the engine, which the rules must not import at module
load).  :func:`get_rules` resolves a user-supplied subset of rule ids
(the CLI's ``--rules``); :func:`rules_for_passes` assembles the pass
groups the CLI's ``--passes`` selects between.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.analysis.rules.base import Rule
from repro.analysis.rules.concurrency import (
    BlockingCallInAsyncRule,
    GuardedAttributeRule,
    LockInAsyncRule,
)
from repro.analysis.rules.determinism import (
    UnorderedSetOrderRule,
    UnseededRandomRule,
    WallClockInScoringRule,
)
from repro.analysis.rules.hygiene import (
    AllConsistencyRule,
    DeadPrivateHelperRule,
    ForeignExceptionRule,
    UnusedImportRule,
)
from repro.analysis.rules.kernel_safety import (
    FloatDtypeMixRule,
    MemmapExplicitRule,
    MissingDtypeRule,
    NpArrayCopyRule,
)
from repro.exceptions import AnalysisError

__all__ = [
    "ALL_RULES",
    "PASS_GROUPS",
    "Rule",
    "flow_rules",
    "get_rules",
    "rules_by_id",
    "rules_for_passes",
]

#: The shipped rule pack, in catalog order.
ALL_RULES: Tuple[Rule, ...] = (
    # concurrency
    GuardedAttributeRule(),
    LockInAsyncRule(),
    BlockingCallInAsyncRule(),
    # determinism
    UnseededRandomRule(),
    UnorderedSetOrderRule(),
    WallClockInScoringRule(),
    # kernel safety
    MissingDtypeRule(),
    NpArrayCopyRule(),
    FloatDtypeMixRule(),
    MemmapExplicitRule(),
    # API hygiene
    AllConsistencyRule(),
    ForeignExceptionRule(),
    UnusedImportRule(),
    DeadPrivateHelperRule(),
)


#: Pass-group names the CLI accepts for ``--passes``.
PASS_GROUPS = ("syntax", "flow", "all")


def flow_rules() -> Tuple[Rule, ...]:
    """The whole-program flow pack (imported lazily; see module doc)."""
    from repro.analysis.flow import FLOW_RULES

    return FLOW_RULES


def rules_for_passes(passes: str) -> Tuple[Rule, ...]:
    """The rule set one ``--passes`` selection runs.

    ``syntax`` is the per-file pack alone.  ``flow`` is the
    whole-program pack alone.  ``all`` (the default) is both — minus
    the lexical ``guarded-attr-outside-lock`` rule, which the
    flow-sensitive lock-order pass supersedes (it re-emits the same
    rule id with flow-accurate held-lock tracking, so running both
    would double-report every violation).
    """
    if passes == "syntax":
        return ALL_RULES
    if passes == "flow":
        return flow_rules()
    if passes == "all":
        superseded = {"guarded-attr-outside-lock"}
        kept = tuple(
            rule for rule in ALL_RULES if rule.id not in superseded
        )
        return kept + flow_rules()
    raise AnalysisError(
        f"unknown pass group {passes!r}: use one of {PASS_GROUPS}"
    )


def rules_by_id() -> Dict[str, Rule]:
    """Mapping of rule id -> rule instance, syntax and flow packs both.

    The lexical ``guarded-attr-outside-lock`` rule wins its id (an
    explicit ``--rules guarded-attr-outside-lock`` means the per-file
    rule); the flow pack contributes the ids only it defines.
    """
    registry = {rule.id: rule for rule in flow_rules()}
    registry.update({rule.id: rule for rule in ALL_RULES})
    return registry


def get_rules(ids: Sequence[str]) -> Tuple[Rule, ...]:
    """Resolve ``ids`` against the registry, preserving catalog order."""
    registry = rules_by_id()
    unknown = [rule_id for rule_id in ids if rule_id not in registry]
    if unknown:
        raise AnalysisError(
            f"unknown rule id(s) {unknown}: known rules are "
            f"{sorted(registry)}"
        )
    wanted = set(ids)
    catalog = ALL_RULES + flow_rules()
    return tuple(rule for rule in catalog if rule.id in wanted)

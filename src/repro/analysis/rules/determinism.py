"""Determinism rules: bit-stable rankings need bit-stable inputs.

The engine's parity guarantees (parallel merge == sequential ranking,
vectorized == scalar to 1e-9) and the paper's reproducibility claims
only hold when nothing nondeterministic leaks into scoring:

``unseeded-random``
    Module-level ``random.*`` / ``numpy.random.*`` calls draw from
    process-global, unseeded state.  Every RNG in the codebase is an
    explicitly seeded ``np.random.default_rng(seed)`` / ``Random(seed)``
    instance; this rule keeps it that way.

``unordered-set-order``
    Python ``set`` iteration order depends on string-hash randomization
    across processes.  Feeding a set directly into an order-sensitive
    sink (``list``, ``tuple``, ``enumerate``, ``iter``, ``str.join``)
    makes rankings differ run to run.  ``sorted(set(...))`` is the
    deterministic idiom and is never flagged.  Scoped to ``core``/
    ``lsh`` where ordering feeds tie-breaks and signatures.

``wall-clock-in-scoring``
    ``time.time()`` in scoring paths couples scores (or tie-breaks) to
    the clock.  Durations belong to ``time.perf_counter`` — which the
    profiling code already uses and which this rule allows.  Scoped to
    ``core``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import Finding, SourceFile
from repro.analysis.rules.base import (
    Rule,
    canonical_call_name,
    import_aliases,
)

#: RNG constructors that are deterministic *when given a seed*.
_SEEDABLE = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

#: Always-deterministic / non-drawing helpers under the random modules.
_RANDOM_SAFE = {"random.SystemRandom", "random.getstate", "random.setstate"}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter"}


class UnseededRandomRule(Rule):
    """Flag draws from process-global or unseeded RNG state."""

    id = "unseeded-random"
    severity = "error"
    description = (
        "module-level random.* / numpy.random.* usage (or a seedless "
        "generator constructor) makes runs irreproducible"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call_name(node.func, aliases)
            if target is None or target in _RANDOM_SAFE:
                continue
            if target in _SEEDABLE:
                if not node.args and not node.keywords:
                    yield self.finding(
                        source,
                        node,
                        f"'{target}()' without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
                continue
            if target.startswith("random.") or target.startswith(
                "numpy.random."
            ):
                yield self.finding(
                    source,
                    node,
                    f"'{target}' draws from process-global RNG state; use "
                    "a seeded numpy.random.default_rng(seed) / "
                    "random.Random(seed) instance",
                )


class UnorderedSetOrderRule(Rule):
    """Flag set iteration feeding order-sensitive sinks."""

    id = "unordered-set-order"
    severity = "warning"
    description = (
        "a set is materialized into an ordered container without "
        "sorting; iteration order varies across processes"
    )
    scope = ()  # applies() overridden below

    #: Any of these path components puts a file in scope.
    scoped_to = ("core", "lsh")

    def applies(self, source: SourceFile) -> bool:
        parts = source.parts()
        return any(component in parts for component in self.scoped_to)

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            first = node.args[0]
            if not self._is_set_expr(first):
                continue
            sink: Optional[str] = None
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_BUILTINS
            ):
                sink = node.func.id
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            ):
                sink = "str.join"
            if sink is not None:
                yield self.finding(
                    source,
                    node,
                    f"set iteration order feeds '{sink}'; wrap the set in "
                    "sorted(...) to make the order deterministic",
                )


class WallClockInScoringRule(Rule):
    """Flag wall-clock reads inside the scoring core."""

    id = "wall-clock-in-scoring"
    severity = "warning"
    description = (
        "wall-clock time (time.time, datetime.now) read in a scoring "
        "path; use time.perf_counter for durations"
    )
    scope = ("core",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call_name(node.func, aliases)
            if target in _WALL_CLOCK:
                yield self.finding(
                    source,
                    node,
                    f"'{target}' couples scoring to the wall clock; use "
                    "time.perf_counter for durations (profiling) and keep "
                    "scores time-free",
                )

"""API-hygiene rules: exports, exceptions, and dead code.

``all-mismatch``
    Every name in ``__all__`` must actually be defined or imported at
    module top level — a stale export breaks ``from pkg import *`` and
    misleads readers about the public surface.

``foreign-exception``
    The library promises "catch :class:`~repro.exceptions.ReproError`
    and you have caught everything we raise".  Raising bare stdlib
    exceptions (or ad-hoc exception classes defined outside
    ``repro.exceptions``) silently breaks that contract.  Idiomatic
    control-flow exceptions (``NotImplementedError`` for abstract
    methods, ``StopIteration`` ...) are allowed.

``unused-import``
    Imports never referenced (by name, attribute root, or ``__all__``
    string) are dead weight and hide real dependencies.

``dead-private-helper``
    A module-level ``_private`` function or class referenced nowhere in
    its module is unreachable — delete it rather than let it rot.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.engine import Finding, SourceFile
from repro.analysis.rules.base import Rule

#: Stdlib exceptions that are idiomatic to raise from library code.
_ALLOWED_BUILTINS = {
    "NotImplementedError",
    "StopIteration",
    "StopAsyncIteration",
    "AssertionError",
    "KeyboardInterrupt",
    "SystemExit",
    "GeneratorExit",
}

#: Builtin exception names (flagged unless allowed above).
_BUILTIN_EXCEPTIONS = {
    name
    for name, value in vars(builtins).items()
    if isinstance(value, type) and issubclass(value, BaseException)
}


def _module_all(tree: ast.Module) -> Optional[List[str]]:
    """The string elements of a top-level ``__all__`` list, if present."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                return [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
    return None


def _top_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module top level (defs, classes, assigns, imports)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        names.add(element.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.If, ast.Try)):
            # One level of conditional definition (TYPE_CHECKING, etc.).
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    names.add(child.name)
                elif isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        if alias.name != "*":
                            names.add(
                                alias.asname or alias.name.split(".")[0]
                            )
    return names


class AllConsistencyRule(Rule):
    """``__all__`` names must exist at module top level."""

    id = "all-mismatch"
    severity = "error"
    description = "__all__ exports a name the module never defines"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        exported = _module_all(source.tree)
        if exported is None:
            return
        defined = _top_level_names(source.tree)
        seen: Set[str] = set()
        for name in exported:
            if name in seen:
                yield self.finding(
                    source,
                    source.tree,
                    f"__all__ lists {name!r} more than once",
                )
            seen.add(name)
            if name not in defined:
                yield self.finding(
                    source,
                    source.tree,
                    f"__all__ exports {name!r} but the module never "
                    "defines or imports it",
                )


class ForeignExceptionRule(Rule):
    """Raised exceptions must come from ``repro.exceptions``."""

    id = "foreign-exception"
    severity = "warning"
    description = (
        "an exception raised here is not exported from "
        "repro.exceptions, breaking the catch-ReproError contract"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.display.replace("\\", "/").endswith("repro/exceptions.py"):
            return
        repro_names: Set[str] = set()
        local_classes: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro.exceptions":
                    for alias in node.names:
                        repro_names.add(alias.asname or alias.name)
            elif isinstance(node, ast.ClassDef):
                local_classes.add(node.name)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if not isinstance(exc, ast.Name):
                continue  # re-raised locals / dotted names: out of scope
            name = exc.id
            if name in repro_names or name in _ALLOWED_BUILTINS:
                continue
            if name in local_classes:
                yield self.finding(
                    source,
                    node,
                    f"raises locally-defined exception '{name}'; define "
                    "it in repro.exceptions so callers can catch "
                    "ReproError",
                )
            elif name in _BUILTIN_EXCEPTIONS:
                yield self.finding(
                    source,
                    node,
                    f"raises builtin '{name}'; raise a repro.exceptions "
                    "class so callers can catch ReproError",
                )


class UnusedImportRule(Rule):
    """Imports that nothing in the module references."""

    id = "unused-import"
    severity = "warning"
    description = "an imported name is never used in the module"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        imported: Dict[str, ast.AST] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    imported.setdefault(name, node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported.setdefault(alias.asname or alias.name, node)
        if not imported:
            return
        used: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
        exported = _module_all(source.tree)
        if exported:
            used.update(exported)
        for name, node in imported.items():
            if name not in used:
                yield self.finding(
                    source,
                    node,
                    f"'{name}' is imported but never used",
                )


class DeadPrivateHelperRule(Rule):
    """Module-level ``_private`` defs referenced nowhere."""

    id = "dead-private-helper"
    severity = "warning"
    description = (
        "a module-level private function/class is never referenced "
        "in its module"
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        privates: Dict[str, ast.AST] = {}
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if node.name.startswith("_") and not node.name.startswith(
                    "__"
                ):
                    privates[node.name] = node
        if not privates:
            return
        references: Dict[str, List[int]] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name):
                references.setdefault(node.id, []).append(node.lineno)
            elif isinstance(node, ast.Attribute):
                references.setdefault(node.attr, []).append(node.lineno)
        exported = set(_module_all(source.tree) or ())
        for name, node in privates.items():
            if name in exported:
                continue
            uses = [
                line
                for line in references.get(name, [])
                if line != node.lineno
            ]
            if not uses:
                yield self.finding(
                    source,
                    node,
                    f"private helper '{name}' is never referenced; "
                    "remove it",
                )

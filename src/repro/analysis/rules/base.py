"""Rule protocol and shared AST helpers for the lint rule packs."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from repro.analysis.engine import Finding, SourceFile


class Rule:
    """One named check over a :class:`~repro.analysis.engine.SourceFile`.

    Subclasses set the class attributes and implement :meth:`check` as
    a generator of :class:`Finding`.  ``scope`` restricts a rule to
    files whose path contains every listed component (e.g. the kernel
    rules only run under ``core/kernel``); an empty scope runs
    everywhere.
    """

    id: str = ""
    severity: str = "warning"
    description: str = ""
    #: Path components that must all appear in the file path.
    scope: Tuple[str, ...] = ()

    def applies(self, source: SourceFile) -> bool:
        parts = source.parts()
        return all(component in parts for component in self.scope)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: SourceFile, node: ast.AST,
                message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=source.display,
            line=getattr(node, "lineno", 1),
            message=message,
        )


# ----------------------------------------------------------------------
# AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted prefix, from import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as npr`` maps ``npr -> numpy.random``; ``import os.path``
    maps ``os -> os``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def canonical_call_name(func: ast.AST,
                        aliases: Dict[str, str]) -> Optional[str]:
    """Alias-normalized dotted name of a call target.

    With ``import numpy as np``, the call ``np.random.rand(...)``
    canonicalizes to ``numpy.random.rand``.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    expansion = aliases.get(head)
    if expansion is None:
        return name
    return f"{expansion}.{rest}" if rest else expansion


def is_self_attribute(node: ast.AST) -> Optional[str]:
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def walk_skipping(root: ast.AST, *skip_types) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nodes of ``skip_types``.

    The root itself is never skipped, so a visitor can walk a function
    body while staying out of nested definitions.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, tuple(skip_types)):
                continue
            stack.append(child)

"""Kernel-safety rules for the vectorized scoring substrate.

The ``core/kernel`` arrays are compiled once, marked read-only, and
shared across thread shards; parity with the scalar engine is promised
to 1e-9.  Three classes of silent numpy behavior can break that without
failing a single test loudly:

``missing-dtype``
    ``np.zeros/ones/empty/full`` without an explicit ``dtype=`` pick
    platform defaults; an index array that comes out ``int32`` on one
    platform and ``int64`` on another changes overflow and memory
    behavior.  Kernel allocations spell their dtype.

``np-array-copy``
    ``np.array(x)`` *always copies*.  Applied to an interned index
    array where a view was intended, it silently doubles memory and
    detaches the copy from the read-only interning.  Use
    ``np.asarray(x)`` (no copy when possible) or pass ``copy=``
    explicitly to show the copy is wanted.

``float-dtype-mix``
    Arithmetic between float32 and float64 locals upcasts silently —
    half the operands lose the precision the 1e-9 parity bound assumes.
    Tracked per function over locals with statically-known float
    dtypes.

``memmap-explicit``
    ``np.memmap`` defaults are a trap for a persistent format:
    ``dtype`` defaults to uint8 *today* (easy to rely on by accident),
    ``mode`` defaults to ``'r+'`` (a reader that silently opens the
    index writable), and omitting ``offset``/``shape`` maps "whatever
    the file currently holds".  The on-disk kernel format
    (``core/kernel/storage.py``) promises byte-stable layouts, so every
    memmap spells all four out.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.engine import Finding, SourceFile
from repro.analysis.rules.base import (
    Rule,
    canonical_call_name,
    dotted_name,
    import_aliases,
)

_ALLOCATORS = {
    "numpy.zeros",
    "numpy.ones",
    "numpy.empty",
    "numpy.full",
}

_FLOAT_DTYPES = {
    "numpy.float32": "float32",
    "numpy.float64": "float64",
    "float32": "float32",
    "float64": "float64",
}


def _dtype_of_keyword(node: ast.Call) -> Optional[str]:
    """The ``dtype=`` keyword as a normalized string, if resolvable."""
    for keyword in node.keywords:
        if keyword.arg != "dtype":
            continue
        value = keyword.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        name = dotted_name(value)
        if name is not None:
            return name.split(".", 1)[-1] if name.startswith("np.") else name
    return None


class MissingDtypeRule(Rule):
    """Require explicit ``dtype=`` on kernel array allocations."""

    id = "missing-dtype"
    severity = "warning"
    description = (
        "a numpy allocation in the kernel has no explicit dtype=, "
        "inheriting platform-dependent defaults"
    )
    scope = ("kernel",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call_name(node.func, aliases)
            if target not in _ALLOCATORS:
                continue
            if any(keyword.arg == "dtype" for keyword in node.keywords):
                continue
            short = target.split(".")[-1]
            yield self.finding(
                source,
                node,
                f"'np.{short}' without an explicit dtype=; kernel "
                "allocations must pin their dtype",
            )


class NpArrayCopyRule(Rule):
    """Prefer ``np.asarray`` over ``np.array`` on existing arrays."""

    id = "np-array-copy"
    severity = "warning"
    description = (
        "np.array(...) over an existing array always copies; use "
        "np.asarray or pass copy= explicitly"
    )
    scope = ("kernel",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            target = canonical_call_name(node.func, aliases)
            if target != "numpy.array":
                continue
            if any(keyword.arg == "copy" for keyword in node.keywords):
                continue
            # Fresh containers (list/tuple/comprehension literals) are
            # not copies of anything; only flag pre-existing objects.
            first = node.args[0]
            if isinstance(first, (ast.Name, ast.Attribute, ast.Subscript)):
                origin = dotted_name(first) or "<expression>"
                yield self.finding(
                    source,
                    node,
                    f"'np.array({origin})' copies unconditionally; use "
                    "np.asarray to share a view of interned index arrays "
                    "(or copy= to mark the copy intentional)",
                )


class MemmapExplicitRule(Rule):
    """Require dtype/mode/offset/shape keywords on ``np.memmap``."""

    id = "memmap-explicit"
    severity = "warning"
    description = (
        "np.memmap without explicit dtype=, mode=, offset= and shape= "
        "keywords relies on defaults that break the persistent-format "
        "contract (uint8, writable 'r+', whole-file extent)"
    )
    scope = ("kernel",)

    _REQUIRED = ("dtype", "mode", "offset", "shape")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            target = canonical_call_name(node.func, aliases)
            if target != "numpy.memmap":
                continue
            passed = {keyword.arg for keyword in node.keywords}
            missing = [
                name for name in self._REQUIRED if name not in passed
            ]
            if not missing:
                continue
            yield self.finding(
                source,
                node,
                "'np.memmap' must pass "
                + ", ".join(f"{name}=" for name in missing)
                + " explicitly; mapping a persistent index with default "
                "dtype/mode/extent reads (or writes!) bytes the header "
                "never promised",
            )


class FloatDtypeMixRule(Rule):
    """Flag arithmetic mixing float32 and float64 locals."""

    id = "float-dtype-mix"
    severity = "warning"
    description = (
        "arithmetic between float32 and float64 locals silently "
        "upcasts, invalidating precision assumptions"
    )
    scope = ("kernel",)

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node, aliases)

    def _check_function(
        self,
        source: SourceFile,
        function: ast.AST,
        aliases: Dict[str, str],
    ) -> Iterator[Finding]:
        widths: Dict[str, str] = {}
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            width = self._known_float_width(node.value, aliases)
            if width is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    widths[target.id] = width
        if not widths:
            return
        for node in ast.walk(function):
            if not isinstance(node, ast.BinOp):
                continue
            left = self._operand_width(node.left, widths)
            right = self._operand_width(node.right, widths)
            if left and right and left != right:
                yield self.finding(
                    source,
                    node,
                    f"mixing {left} and {right} operands silently upcasts "
                    "to float64; align the dtypes explicitly",
                )

    def _known_float_width(
        self, value: ast.AST, aliases: Dict[str, str]
    ) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        target = canonical_call_name(value.func, aliases)
        if target not in _ALLOCATORS:
            return None
        dtype = _dtype_of_keyword(value)
        if dtype is None:
            # zeros/ones/empty default to float64 (full infers, skip it).
            return "float64" if target != "numpy.full" else None
        normalized = dtype.split(".")[-1]
        return _FLOAT_DTYPES.get(normalized) or _FLOAT_DTYPES.get(dtype)

    @staticmethod
    def _operand_width(node: ast.AST, widths: Dict[str, str]) -> Optional[str]:
        if isinstance(node, ast.Name):
            return widths.get(node.id)
        return None

"""A from-scratch inverted index over short text documents.

The paper links GitTables mentions to KG entities by building Lucene
indexes over entity labels and running keyword search (Section 7.4).
This module provides the equivalent substrate: a token-based inverted
index with TF-IDF-weighted overlap scoring, used by the label linker and
reused by the BM25 baseline's document store.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Tuple

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase and split ``text`` into alphanumeric tokens."""
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]


class InvertedIndex:
    """Maps tokens to the documents containing them.

    Documents are arbitrary hashable identifiers with associated text;
    scoring is a normalized TF-IDF overlap, sufficient for entity-label
    resolution (short, name-like documents).
    """

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._doc_lengths: Dict[str, int] = {}

    def add(self, doc_id: str, text: str) -> None:
        """Index ``text`` under ``doc_id`` (additive for repeated calls)."""
        tokens = tokenize(text)
        counts = Counter(tokens)
        for token, count in counts.items():
            posting = self._postings[token]
            posting[doc_id] = posting.get(doc_id, 0) + count
        self._doc_lengths[doc_id] = self._doc_lengths.get(doc_id, 0) + len(tokens)

    def add_many(self, documents: Iterable[Tuple[str, str]]) -> None:
        """Index an iterable of ``(doc_id, text)`` pairs."""
        for doc_id, text in documents:
            self.add(doc_id, text)

    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    def document_frequency(self, token: str) -> int:
        """Number of documents containing ``token``."""
        return len(self._postings.get(token, ()))

    def postings(self, token: str) -> Dict[str, int]:
        """Return ``{doc_id: term frequency}`` for ``token``."""
        return dict(self._postings.get(token, ()))

    def candidates(self, query: str) -> List[str]:
        """Return doc ids sharing at least one token with ``query``."""
        seen: Dict[str, None] = {}
        for token in tokenize(query):
            for doc_id in self._postings.get(token, ()):
                seen.setdefault(doc_id)
        return list(seen)

    def search(self, query: str, top_k: int = 10) -> List[Tuple[str, float]]:
        """Return the ``top_k`` documents by TF-IDF overlap with ``query``.

        Scores are normalized by document length so that an exact label
        match outranks a long document that merely contains the tokens.
        Ties break deterministically by doc id.
        """
        query_tokens = tokenize(query)
        if not query_tokens or not self._doc_lengths:
            return []
        n_docs = self.num_documents
        scores: Dict[str, float] = defaultdict(float)
        for token in set(query_tokens):
            posting = self._postings.get(token)
            if not posting:
                continue
            idf = math.log(1.0 + n_docs / len(posting))
            for doc_id, term_freq in posting.items():
                scores[doc_id] += idf * term_freq
        if not scores:
            return []
        ranked = sorted(
            (
                (doc_id, score / (1.0 + math.log(1.0 + self._doc_lengths[doc_id])))
                for doc_id, score in scores.items()
            ),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:top_k]

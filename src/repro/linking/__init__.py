"""Entity linking: the partial mapping Phi, label linker, noise models."""

from repro.linking.contextual import ContextualLinker
from repro.linking.inverted_index import InvertedIndex, tokenize
from repro.linking.io import (
    load_mapping,
    mapping_from_dict,
    mapping_to_dict,
    save_mapping,
)
from repro.linking.linker import LabelLinker
from repro.linking.mapping import CellRef, EntityMapping
from repro.linking.noise import NoisyLinker, coverage_of, reduce_coverage

__all__ = [
    "EntityMapping",
    "CellRef",
    "LabelLinker",
    "ContextualLinker",
    "InvertedIndex",
    "tokenize",
    "mapping_to_dict",
    "mapping_from_dict",
    "save_mapping",
    "load_mapping",
    "NoisyLinker",
    "reduce_coverage",
    "coverage_of",
]

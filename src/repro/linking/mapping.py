"""The partial mapping ``Phi`` of Definition 2.1.

An :class:`EntityMapping` records which data-lake cells mention which KG
entities: the forward direction maps a cell coordinate
``(table_id, row, column)`` to an entity URI, the inverse maps an entity
URI to the set of cells mentioning it.  The mapping is *partial* by
design — most cells of a real lake are not linked — and the library is
required to behave well at any coverage level (Section 7.5).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.exceptions import LinkingError

CellRef = Tuple[str, int, int]  # (table_id, row index, column index)


class EntityMapping:
    """Bidirectional partial mapping between cells and KG entities."""

    def __init__(self) -> None:
        self._cell_to_entity: Dict[CellRef, str] = {}
        self._entity_to_cells: Dict[str, Set[CellRef]] = defaultdict(set)
        self._table_entities: Dict[str, Set[str]] = defaultdict(set)
        self._table_cells: Dict[str, Set[CellRef]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def link(self, table_id: str, row: int, column: int, uri: str) -> None:
        """Record that cell ``(row, column)`` of ``table_id`` mentions ``uri``.

        Re-linking an already linked cell to a different entity is an
        error: a cell holds one mention.
        """
        if row < 0 or column < 0:
            raise LinkingError("cell coordinates must be non-negative")
        ref: CellRef = (table_id, row, column)
        existing = self._cell_to_entity.get(ref)
        if existing is not None and existing != uri:
            raise LinkingError(
                f"cell {ref} already linked to {existing!r}, cannot relink to {uri!r}"
            )
        self._cell_to_entity[ref] = uri
        self._entity_to_cells[uri].add(ref)
        self._table_entities[table_id].add(uri)
        self._table_cells[table_id].add(ref)

    def unlink(self, table_id: str, row: int, column: int) -> Optional[str]:
        """Remove the link of a cell; returns the URI it pointed to, if any."""
        ref: CellRef = (table_id, row, column)
        uri = self._cell_to_entity.pop(ref, None)
        if uri is None:
            return None
        self._entity_to_cells[uri].discard(ref)
        if not self._entity_to_cells[uri]:
            del self._entity_to_cells[uri]
        self._table_cells[table_id].discard(ref)
        # Rebuild the table's entity set only if the entity vanished there.
        if not any(
            self._cell_to_entity.get(other) == uri
            for other in self._table_cells[table_id]
        ):
            self._table_entities[table_id].discard(uri)
        return uri

    def unlink_table(self, table_id: str) -> int:
        """Remove every link of ``table_id``; returns how many were cut.

        Supports dynamic data lakes: dropping a table must also drop its
        contribution to entity postings and frequencies.
        """
        refs = sorted(self._table_cells.get(table_id, ()))
        for table, row, column in refs:
            self.unlink(table, row, column)
        self._table_cells.pop(table_id, None)
        self._table_entities.pop(table_id, None)
        return len(refs)

    # ------------------------------------------------------------------
    # Forward direction (Phi)
    # ------------------------------------------------------------------
    def entity_at(self, table_id: str, row: int, column: int) -> Optional[str]:
        """Return the entity URI linked at a cell, or ``None``."""
        return self._cell_to_entity.get((table_id, row, column))

    def entity_row(self, table_id: str, row: int, num_columns: int) -> List[Optional[str]]:
        """Return the row's per-column entity URIs (``None`` where unlinked).

        This is how the search algorithm views a table tuple: only the
        entity mentions extracted by ``Phi`` (Section 4.1).
        """
        return [
            self._cell_to_entity.get((table_id, row, column))
            for column in range(num_columns)
        ]

    def entities_in_table(self, table_id: str) -> FrozenSet[str]:
        """Return the distinct entity URIs mentioned anywhere in a table."""
        return frozenset(self._table_entities.get(table_id, ()))

    def entities_in_column(self, table_id: str, column: int) -> List[str]:
        """Return entity URIs linked in one column (with duplicates)."""
        return [
            self._cell_to_entity[ref]
            for ref in sorted(self._table_cells.get(table_id, ()))
            if ref[2] == column
        ]

    # ------------------------------------------------------------------
    # Inverse direction (Phi^-1)
    # ------------------------------------------------------------------
    def cells_of(self, uri: str) -> FrozenSet[CellRef]:
        """Return all cells linked to ``uri`` (the inverse mapping)."""
        return frozenset(self._entity_to_cells.get(uri, ()))

    def tables_with_entity(self, uri: str) -> FrozenSet[str]:
        """Return identifiers of tables containing a mention of ``uri``."""
        return frozenset(ref[0] for ref in self._entity_to_cells.get(uri, ()))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def linked_cell_count(self, table_id: str) -> int:
        """Number of linked cells in ``table_id``."""
        return len(self._table_cells.get(table_id, ()))

    def table_frequency(self, uri: str) -> int:
        """Number of distinct tables mentioning ``uri``.

        This is the document frequency driving the informativeness
        weight ``I(e)`` of Section 5.2.
        """
        return len(self.tables_with_entity(uri))

    def all_entities(self) -> Iterator[str]:
        """Iterate over every linked entity URI."""
        return iter(self._entity_to_cells.keys())

    def all_links(self) -> Iterator[Tuple[CellRef, str]]:
        """Iterate over ``(cell, uri)`` pairs."""
        return iter(self._cell_to_entity.items())

    def __len__(self) -> int:
        return len(self._cell_to_entity)

    def __contains__(self, ref: CellRef) -> bool:
        return ref in self._cell_to_entity

    def copy(self) -> "EntityMapping":
        """Return a deep copy (used by coverage-degradation simulators)."""
        clone = EntityMapping()
        for (table_id, row, column), uri in self._cell_to_entity.items():
            clone.link(table_id, row, column, uri)
        return clone

    def merge(self, other: "EntityMapping") -> None:
        """Add every link from ``other`` into this mapping."""
        for (table_id, row, column), uri in other.all_links():
            self.link(table_id, row, column, uri)

"""Label-based entity linking between table cells and KG entities.

The semantic data lake of Definition 2.1 only requires *entity linking*,
never schema alignment.  :class:`LabelLinker` resolves cell values to KG
entities through an inverted index over entity labels and aliases — the
same mechanism the paper uses to link GitTables mentions via Lucene
keyword search — and emits an :class:`~repro.linking.mapping.EntityMapping`.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.kg.graph import KnowledgeGraph
from repro.linking.inverted_index import InvertedIndex, tokenize
from repro.linking.mapping import EntityMapping


class LabelLinker:
    """Resolves string cell values to KG entities by label matching.

    Resolution strategy, in priority order:

    1. exact (case-insensitive) match on an entity label or alias;
    2. best inverted-index hit whose normalized score reaches
       ``min_score`` (fuzzy matching for partial mentions).

    Parameters
    ----------
    graph:
        The reference knowledge graph.
    min_score:
        Score threshold below which fuzzy candidates are rejected; at the
        default the linker is conservative, preferring precision as good
        entity linkers do.
    fuzzy:
        Disable to restrict linking to exact label/alias matches.
    """

    def __init__(self, graph: KnowledgeGraph, min_score: float = 1.0, fuzzy: bool = True):
        self.graph = graph
        self.min_score = min_score
        self.fuzzy = fuzzy
        self._exact: Dict[str, str] = {}
        self._index = InvertedIndex()
        self._build()

    def _build(self) -> None:
        for entity in self.graph.entities():
            surface_forms = [entity.label, *entity.aliases]
            for form in surface_forms:
                if not form:
                    continue
                key = form.strip().lower()
                # First writer wins: deterministic given graph insertion order.
                self._exact.setdefault(key, entity.uri)
            text = " ".join(form for form in surface_forms if form)
            if text:
                self._index.add(entity.uri, text)

    def link_value(self, value: object) -> Optional[str]:
        """Return the URI the cell value resolves to, or ``None``.

        Only string values are candidates: numbers and nulls are never
        entity mentions.
        """
        if not isinstance(value, str):
            return None
        key = value.strip().lower()
        if not key:
            return None
        uri = self._exact.get(key)
        if uri is not None:
            return uri
        if not self.fuzzy or not tokenize(value):
            return None
        hits = self._index.search(value, top_k=1)
        if hits and hits[0][1] >= self.min_score:
            return hits[0][0]
        return None

    def link_table(self, table: Table, mapping: Optional[EntityMapping] = None) -> EntityMapping:
        """Link every resolvable cell of ``table``; returns the mapping."""
        if mapping is None:
            mapping = EntityMapping()
        for row_index, row in enumerate(table.rows):
            for col_index, value in enumerate(row):
                uri = self.link_value(value)
                if uri is not None:
                    mapping.link(table.table_id, row_index, col_index, uri)
        return mapping

    def link_lake(self, lake: DataLake) -> EntityMapping:
        """Link every table of ``lake`` into one mapping."""
        mapping = EntityMapping()
        for table in lake:
            self.link_table(table, mapping)
        return mapping

"""Persistence for entity mappings.

WT-style benchmarks ship their entity links as standalone files; this
module gives :class:`~repro.linking.mapping.EntityMapping` the same
round-trip so corpora, links, and KGs can be stored and reloaded
independently (and the CLI can pass them between commands).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.linking.mapping import EntityMapping

PathLike = Union[str, Path]


def mapping_to_dict(mapping: EntityMapping) -> dict:
    """Return a JSON-serializable snapshot of every link."""
    return {
        "version": 1,
        "links": [
            [table_id, row, column, uri]
            for (table_id, row, column), uri in sorted(mapping.all_links())
        ],
    }


def mapping_from_dict(payload: dict) -> EntityMapping:
    """Rebuild an :class:`EntityMapping` from :func:`mapping_to_dict`."""
    mapping = EntityMapping()
    for table_id, row, column, uri in payload.get("links", []):
        mapping.link(table_id, int(row), int(column), uri)
    return mapping


def save_mapping(mapping: EntityMapping, path: PathLike) -> None:
    """Write ``mapping`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(mapping_to_dict(mapping)),
                          encoding="utf-8")


def load_mapping(path: PathLike) -> EntityMapping:
    """Load a mapping previously written by :func:`save_mapping`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return mapping_from_dict(payload)

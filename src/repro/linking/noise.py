"""Entity-linking degradation simulators for the Section 7.5 experiments.

Two distortions are studied in the paper:

* *coverage reduction* — fewer cells are linked at all (Figure 6 caps the
  per-table coverage);
* *noisy linking* — a realistic linker (EMBLOOKUP, F1 = 0.21) links some
  cells to the wrong entity and misses others entirely.

Both transformations operate on an existing gold
:class:`~repro.linking.mapping.EntityMapping` and are deterministic given
a seed.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph
from repro.linking.mapping import CellRef, EntityMapping


def reduce_coverage(
    mapping: EntityMapping,
    max_coverage: float,
    cell_counts: Dict[str, int],
    seed: int = 0,
) -> EntityMapping:
    """Return a copy of ``mapping`` with per-table coverage capped.

    For each table whose linked fraction exceeds ``max_coverage``, a
    uniformly random subset of its links is kept so the fraction falls to
    the cap.  ``cell_counts`` maps table id to its total cell count.
    """
    if not 0.0 <= max_coverage <= 1.0:
        raise ConfigurationError("max_coverage must be within [0, 1]")
    rng = np.random.default_rng(seed)
    links_by_table: Dict[str, List[CellRef]] = defaultdict(list)
    uris: Dict[CellRef, str] = {}
    for ref, uri in mapping.all_links():
        links_by_table[ref[0]].append(ref)
        uris[ref] = uri
    reduced = EntityMapping()
    for table_id in sorted(links_by_table):
        refs = sorted(links_by_table[table_id])
        total_cells = cell_counts.get(table_id, 0)
        if total_cells <= 0:
            continue
        allowed = int(max_coverage * total_cells)
        if len(refs) > allowed:
            keep_indices = rng.choice(len(refs), size=allowed, replace=False)
            refs = [refs[i] for i in sorted(keep_indices)]
        for ref in refs:
            reduced.link(ref[0], ref[1], ref[2], uris[ref])
    return reduced


def coverage_of(mapping: EntityMapping, cell_counts: Dict[str, int]) -> Dict[str, float]:
    """Return each table's linked-cell fraction."""
    return {
        table_id: (mapping.linked_cell_count(table_id) / count if count else 0.0)
        for table_id, count in cell_counts.items()
    }


class NoisyLinker:
    """Corrupts a gold mapping to emulate a low-F1 automatic entity linker.

    Parameters
    ----------
    graph:
        Source of replacement entities for wrong links.
    recall:
        Fraction of gold links the noisy linker finds at all.
    precision:
        Among found links, the fraction pointing at the *correct* entity;
        the rest are redirected to a random other entity (preferring one
        sharing a type, as real embedding-based linkers confuse
        same-type entities most often).
    seed:
        Determinism seed.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        recall: float = 0.6,
        precision: float = 0.35,
        seed: int = 0,
    ):
        if not 0.0 <= recall <= 1.0:
            raise ConfigurationError("recall must be within [0, 1]")
        if not 0.0 <= precision <= 1.0:
            raise ConfigurationError("precision must be within [0, 1]")
        self.graph = graph
        self.recall = recall
        self.precision = precision
        self._rng = np.random.default_rng(seed)
        self._all_uris: Sequence[str] = list(graph.uris())
        self._by_type: Dict[str, List[str]] = defaultdict(list)
        for entity in graph.entities():
            for type_name in entity.types:
                self._by_type[type_name].append(entity.uri)

    def _wrong_entity(self, correct_uri: str) -> Optional[str]:
        """Pick a plausible wrong entity (same-type when possible)."""
        entity = self.graph.find(correct_uri)
        pool: Sequence[str] = ()
        if entity is not None and entity.types:
            type_name = sorted(entity.types)[int(self._rng.integers(len(entity.types)))]
            pool = [uri for uri in self._by_type.get(type_name, ()) if uri != correct_uri]
        if not pool:
            pool = [uri for uri in self._all_uris if uri != correct_uri]
        if not pool:
            return None
        return pool[int(self._rng.integers(len(pool)))]

    def corrupt(self, gold: EntityMapping) -> EntityMapping:
        """Return a new mapping with recall/precision-limited links."""
        noisy = EntityMapping()
        for ref, uri in sorted(gold.all_links()):
            if self._rng.random() > self.recall:
                continue  # linker missed this mention entirely
            if self._rng.random() <= self.precision:
                noisy.link(ref[0], ref[1], ref[2], uri)
            else:
                wrong = self._wrong_entity(uri)
                if wrong is not None:
                    noisy.link(ref[0], ref[1], ref[2], wrong)
        return noisy

    def f1(self, gold: EntityMapping, noisy: EntityMapping) -> float:
        """Measure the cell-level F1 of ``noisy`` against ``gold``."""
        gold_links = dict(gold.all_links())
        noisy_links = dict(noisy.all_links())
        if not noisy_links or not gold_links:
            return 0.0
        correct = sum(
            1 for ref, uri in noisy_links.items() if gold_links.get(ref) == uri
        )
        precision = correct / len(noisy_links)
        recall = correct / len(gold_links)
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

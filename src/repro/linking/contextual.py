"""Context-aware entity linking: disambiguation by column coherence.

Labels are ambiguous — two KGs entities may share the surface form
"Springfield".  :class:`ContextualLinker` resolves such mentions using
the *column* they appear in: table columns are typically homogeneous,
so the candidate whose type set best agrees with the column's
unambiguous neighbors wins.  (The paper treats entity linking as an
orthogonal, pluggable step; this linker is the natural upgrade over
first-come-first-served label resolution and demonstrates the plug-in
point.)

Two passes per table:

1. link every cell whose surface form maps to exactly one entity;
2. for ambiguous cells, pick the candidate maximizing type overlap
   with the entities already linked in the same column (falling back
   to the earliest-inserted candidate on ties or empty columns).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.kg.graph import KnowledgeGraph
from repro.linking.mapping import EntityMapping
from repro.similarity.types import jaccard


class ContextualLinker:
    """Column-coherence disambiguation over exact label matches.

    Parameters
    ----------
    graph:
        The reference knowledge graph.
    min_agreement:
        Minimum type-set Jaccard between a candidate and the column's
        dominant types for a disambiguated link to be created; below
        it, the earliest-registered candidate is used (the behaviour of
        :class:`~repro.linking.linker.LabelLinker`).
    """

    def __init__(self, graph: KnowledgeGraph, min_agreement: float = 0.0):
        self.graph = graph
        self.min_agreement = min_agreement
        self._candidates: Dict[str, List[str]] = defaultdict(list)
        for entity in graph.entities():
            for form in (entity.label, *entity.aliases):
                if form:
                    self._candidates[form.strip().lower()].append(entity.uri)

    # ------------------------------------------------------------------
    def candidates_for(self, value: object) -> List[str]:
        """All entity URIs whose label/alias exactly matches ``value``."""
        if not isinstance(value, str):
            return []
        return list(self._candidates.get(value.strip().lower(), ()))

    def _column_type_profile(
        self, linked_uris: List[str]
    ) -> Counter:
        profile: Counter = Counter()
        for uri in linked_uris:
            entity = self.graph.find(uri)
            if entity is not None:
                profile.update(entity.types)
        return profile

    def _disambiguate(
        self, candidates: List[str], profile: Counter
    ) -> str:
        if len(candidates) == 1 or not profile:
            return candidates[0]
        dominant = frozenset(
            t for t, c in profile.items() if c >= max(profile.values()) / 2
        )
        best_uri, best_score = candidates[0], -1.0
        for uri in candidates:
            entity = self.graph.find(uri)
            types = entity.types if entity is not None else frozenset()
            score = jaccard(types, dominant)
            if score > best_score:
                best_uri, best_score = uri, score
        if best_score < self.min_agreement:
            return candidates[0]
        return best_uri

    # ------------------------------------------------------------------
    def link_table(
        self, table: Table, mapping: Optional[EntityMapping] = None
    ) -> EntityMapping:
        """Two-pass linking of one table; returns the mapping."""
        if mapping is None:
            mapping = EntityMapping()
        ambiguous: List[Tuple[int, int, List[str]]] = []
        by_column: Dict[int, List[str]] = defaultdict(list)
        # Pass 1: unambiguous mentions anchor the column profiles.
        for row_index, row in enumerate(table.rows):
            for col_index, value in enumerate(row):
                candidates = self.candidates_for(value)
                if not candidates:
                    continue
                if len(candidates) == 1:
                    mapping.link(table.table_id, row_index, col_index,
                                 candidates[0])
                    by_column[col_index].append(candidates[0])
                else:
                    ambiguous.append((row_index, col_index, candidates))
        # Pass 2: resolve ambiguity against the column profile.
        for row_index, col_index, candidates in ambiguous:
            profile = self._column_type_profile(by_column[col_index])
            chosen = self._disambiguate(candidates, profile)
            mapping.link(table.table_id, row_index, col_index, chosen)
            by_column[col_index].append(chosen)
        return mapping

    def link_lake(self, lake: DataLake) -> EntityMapping:
        """Link every table of ``lake`` into one mapping."""
        mapping = EntityMapping()
        for table in lake:
            self.link_table(table, mapping)
        return mapping

"""Exception hierarchy for the Thetis reproduction library.

All library errors derive from :class:`ReproError` so that callers can
catch the whole family with a single ``except`` clause while still being
able to discriminate specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KnowledgeGraphError(ReproError):
    """Raised for malformed or inconsistent knowledge-graph operations."""


class UnknownEntityError(KnowledgeGraphError):
    """Raised when an entity URI is not present in the knowledge graph."""

    def __init__(self, uri: str):
        super().__init__(f"unknown entity: {uri!r}")
        self.uri = uri


class UnknownTypeError(KnowledgeGraphError):
    """Raised when a type name is not present in the taxonomy."""

    def __init__(self, name: str):
        super().__init__(f"unknown type: {name!r}")
        self.name = name


class DataLakeError(ReproError):
    """Raised for malformed tables or data-lake operations."""


class DuplicateTableError(DataLakeError):
    """Raised when adding a table whose identifier already exists."""

    def __init__(self, table_id: str):
        super().__init__(f"table id already present in lake: {table_id!r}")
        self.table_id = table_id


class LinkingError(ReproError):
    """Raised for invalid entity-linking operations."""


class EmbeddingError(ReproError):
    """Raised for embedding-store and training failures."""


class DimensionMismatchError(EmbeddingError):
    """Raised when vectors of incompatible dimensionality are combined."""

    def __init__(self, expected: int, got: int):
        super().__init__(f"expected dimension {expected}, got {got}")
        self.expected = expected
        self.got = got


class SearchError(ReproError):
    """Raised for invalid search queries or engine configuration."""


class IndexStorageError(ReproError):
    """Raised for unreadable, truncated, or mismatched on-disk indexes.

    Covers format/version mismatches, truncated or misaligned array
    payloads, and indexes persisted for a different similarity
    configuration than the one asking to load them.  Callers that can
    recompile (the vectorized engine's cold-start path) treat this as
    "fall back to compiling from the lake"; explicit CLI loads surface
    it to the user.
    """


class ThetisClosedError(ReproError):
    """Raised when a closed :class:`~repro.system.Thetis` is used.

    ``Thetis.close()`` releases the worker pools for good; a serving
    layer that keeps references to retired engine snapshots must get a
    clear error — not a crash on a dead pool — if a stray call slips
    through after the swap.
    """

    def __init__(self, operation: str = "operation"):
        super().__init__(
            f"Thetis instance is closed; {operation} is no longer available"
        )
        self.operation = operation


class ServeError(ReproError):
    """Base class for errors raised by the online serving layer."""


class ProtocolError(ServeError):
    """Raised for malformed serving requests (HTTP 400)."""


class BadRequestError(ServeError):
    """Raised while parsing an HTTP request; carries the status code.

    Unlike :class:`ProtocolError` (always a 400), the parser
    distinguishes oversized requests (413) from malformed ones (400),
    so the status travels with the exception.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServerOverloadedError(ServeError):
    """Raised when the admission queue is full (HTTP 503).

    The server fast-fails instead of queueing unboundedly, so clients
    can back off while in-flight queries still complete.
    """

    def __init__(self, depth: int, limit: int):
        super().__init__(
            f"server overloaded: queue depth {depth} at limit {limit}"
        )
        self.depth = depth
        self.limit = limit


class RequestTimeoutError(ServeError):
    """Raised when a request exceeds its per-request deadline (HTTP 504)."""

    def __init__(self, timeout: float):
        super().__init__(f"request timed out after {timeout:.3f}s")
        self.timeout = timeout


class ClusterError(ServeError):
    """Base class for errors raised by the scatter-gather cluster layer.

    Raised for transport failures between the coordinator and a worker
    (refused connections, mid-request EOFs, per-shard timeouts) and for
    cluster misconfiguration.  The coordinator converts these into
    hedged retries and degraded responses rather than surfacing them to
    clients as 500s.
    """


class ClusterProtocolError(ClusterError):
    """Raised for malformed frames on the worker wire protocol.

    Covers oversized or truncated length-prefixed frames, bodies that
    are not JSON objects, and messages missing their ``type`` field.
    """


class StaleEpochError(ClusterError):
    """Raised when a worker receives a request for an unknown epoch.

    Shard assignment is a pure function of the routing epoch's
    membership; a worker that cannot resolve the request's epoch must
    refuse rather than score the wrong shard.  The coordinator re-pushes
    the routing table and retries.
    """

    def __init__(self, requested: int, current: int):
        super().__init__(
            f"routing epoch {requested} is unknown to this worker "
            f"(current epoch: {current})"
        )
        self.requested = requested
        self.current = current


class EmptyQueryError(SearchError):
    """Raised when a query contains no usable entity tuples."""


class ConfigurationError(ReproError):
    """Raised when a component is configured with invalid parameters."""


class AnalysisError(ReproError):
    """Raised by :mod:`repro.analysis` for invalid lint configuration.

    Covers unknown rule ids/severities, unreadable or malformed
    baseline files (including entries missing their mandatory
    ``reason``), and nonexistent lint targets.  Findings are *not*
    exceptions — they are data returned in a
    :class:`~repro.analysis.engine.LintReport`.
    """

"""Signature schemes: how entities become LSH-hashable vectors.

The LSEI is generic over a :class:`SignatureScheme` that turns an entity
URI (or a group of URIs, for the column/query aggregation variants of
Section 6.2) into a fixed-width integer signature:

* :class:`TypeSignatureScheme` — MinHash over type-pair shingles, with
  the >50 %-table-frequency type filter;
* :class:`EmbeddingSignatureScheme` — random-hyperplane sign bits over
  RDF2Vec vectors (aggregation = mean vector).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set

import numpy as np

from repro.embeddings.store import EmbeddingStore
from repro.kg.graph import KnowledgeGraph
from repro.linking.mapping import EntityMapping
from repro.lsh.hyperplane import HyperplaneHasher
from repro.lsh.minhash import MinHasher, TypeShingler

#: Paper default: drop types present in more than half of all tables.
DEFAULT_TYPE_FILTER_THRESHOLD = 0.5


def frequent_types(
    mapping: EntityMapping,
    graph: KnowledgeGraph,
    table_ids: Iterable[str],
    threshold: float = DEFAULT_TYPE_FILTER_THRESHOLD,
) -> FrozenSet[str]:
    """Return types occurring in more than ``threshold`` of all tables.

    A type "occurs in" a table when any entity linked in the table
    carries it.  These near-universal types (``owl:Thing`` in DBpedia)
    carry no discriminative signal and are excluded from type signatures
    (Section 6.1).
    """
    ids = list(table_ids)
    if not ids:
        return frozenset()
    counts: Dict[str, int] = {}
    for table_id in ids:
        table_types: Set[str] = set()
        for uri in mapping.entities_in_table(table_id):
            entity = graph.find(uri)
            if entity is not None:
                table_types.update(entity.types)
        for type_name in table_types:
            counts[type_name] = counts.get(type_name, 0) + 1
    cutoff = threshold * len(ids)
    return frozenset(name for name, count in counts.items() if count > cutoff)


class SignatureScheme(ABC):
    """Maps entities (and groups of entities) to LSH signatures."""

    @property
    @abstractmethod
    def num_vectors(self) -> int:
        """Signature width (permutation/projection vector count)."""

    @abstractmethod
    def entity_signature(self, uri: str) -> Optional[np.ndarray]:
        """Signature of one entity, ``None`` when it cannot be hashed."""

    @abstractmethod
    def group_signature(self, uris: Sequence[str]) -> Optional[np.ndarray]:
        """Aggregated signature of a group (column or whole query)."""

    @property
    def name(self) -> str:
        """Short identifier used in benchmark reports."""
        return type(self).__name__


class TypeSignatureScheme(SignatureScheme):
    """MinHash over type-pair shingles (the paper's type LSEI).

    Parameters
    ----------
    graph:
        Source of type annotations.
    num_vectors:
        Number of MinHash permutations (signature width).
    excluded_types:
        Types filtered before shingling; pass :func:`frequent_types`
        output to mirror the paper.
    seed:
        Permutation seed.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        num_vectors: int,
        excluded_types: Iterable[str] = (),
        seed: int = 0,
    ):
        self.graph = graph
        self._hasher = MinHasher(num_vectors, seed=seed)
        type_names = sorted(graph.all_type_names())
        self._shingler = TypeShingler(type_names, excluded=excluded_types)

    @property
    def num_vectors(self) -> int:
        return self._hasher.num_hashes

    def _types_of(self, uri: str) -> FrozenSet[str]:
        entity = self.graph.find(uri)
        if entity is None:
            return frozenset()
        return entity.types

    def entity_signature(self, uri: str) -> Optional[np.ndarray]:
        shingles = self._shingler.shingles(self._types_of(uri))
        if not shingles:
            return None
        return self._hasher.signature(shingles)

    def group_signature(self, uris: Sequence[str]) -> Optional[np.ndarray]:
        """Merge the group's type sets into one shingle set (Section 6.2)."""
        merged: Set[str] = set()
        for uri in uris:
            merged.update(self._types_of(uri))
        shingles = self._shingler.shingles(merged)
        if not shingles:
            return None
        return self._hasher.signature(shingles)

    @property
    def name(self) -> str:
        return "types"


class EmbeddingSignatureScheme(SignatureScheme):
    """Random-hyperplane signatures over entity embeddings."""

    def __init__(self, store: EmbeddingStore, num_vectors: int, seed: int = 0):
        self.store = store
        self._hasher = HyperplaneHasher(num_vectors, store.dimensions, seed=seed)

    @property
    def num_vectors(self) -> int:
        return self._hasher.num_planes

    def entity_signature(self, uri: str) -> Optional[np.ndarray]:
        if uri not in self.store:
            return None
        return self._hasher.signature(self.store.vector(uri))

    def group_signature(self, uris: Sequence[str]) -> Optional[np.ndarray]:
        """Average the group's vectors before hashing (Section 6.2)."""
        mean = self.store.mean_vector(uris)
        if mean is None:
            return None
        return self._hasher.signature(mean)

    @property
    def name(self) -> str:
        return "embeddings"

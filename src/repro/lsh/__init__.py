"""LSH prefiltering: MinHash / hyperplane signatures and the LSEI."""

from repro.lsh.config import PAPER_CONFIGS, RECOMMENDED_CONFIG, LSHConfig
from repro.lsh.hyperplane import HyperplaneHasher
from repro.lsh.index import LSHIndex, TablePrefilter
from repro.lsh.minhash import MinHasher, TypeShingler, pair_shingles
from repro.lsh.multiprobe import MultiProbePrefilter, probe_band_keys
from repro.lsh.tuning import LSHTuner, TuningOutcome
from repro.lsh.schemes import (
    DEFAULT_TYPE_FILTER_THRESHOLD,
    EmbeddingSignatureScheme,
    SignatureScheme,
    TypeSignatureScheme,
    frequent_types,
)

__all__ = [
    "LSHConfig",
    "PAPER_CONFIGS",
    "RECOMMENDED_CONFIG",
    "MinHasher",
    "TypeShingler",
    "pair_shingles",
    "HyperplaneHasher",
    "LSHIndex",
    "TablePrefilter",
    "LSHTuner",
    "MultiProbePrefilter",
    "probe_band_keys",
    "TuningOutcome",
    "SignatureScheme",
    "TypeSignatureScheme",
    "EmbeddingSignatureScheme",
    "frequent_types",
    "DEFAULT_TYPE_FILTER_THRESHOLD",
]

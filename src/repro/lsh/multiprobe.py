"""Multi-probe LSH querying for hyperplane signatures.

The paper's Table 4 shows embedding-LSH filtering weakly: similar
vectors often differ in a single sign bit per band, landing one bucket
apart.  Multi-probe LSH (Lv et al., VLDB 2007) recovers those misses
at query time — besides the query's own bucket, each band also probes
the buckets reachable by flipping a small number of signature bits —
trading a few extra lookups for recall without growing the index.

This module implements the probing *sequence* (Hamming-ball expansion
over a band's bits) and a :class:`MultiProbePrefilter` wrapper that
drives a built :class:`~repro.lsh.index.TablePrefilter` with it.  Only
bit signatures (hyperplane schemes) benefit: MinHash values are not
perturbable in a principled way, so type-based prefiltering is best
served by the vote threshold instead.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Iterator, List, Set, Tuple

import numpy as np

from repro.core.query import Query
from repro.exceptions import ConfigurationError
from repro.lsh.index import TablePrefilter


def probe_band_keys(
    band: Tuple[int, ...], max_flips: int
) -> Iterator[Tuple[int, ...]]:
    """Yield the band key and its Hamming-ball neighbors.

    Keys are emitted in increasing flip count (the query's own bucket
    first), matching the multi-probe intuition that closer buckets are
    likelier to hold true neighbors.  Only meaningful for 0/1 bands.
    """
    if max_flips < 0:
        raise ConfigurationError("max_flips must be >= 0")
    yield band
    positions = range(len(band))
    for flips in range(1, max_flips + 1):
        for flipped in combinations(positions, flips):
            probe = list(band)
            for position in flipped:
                probe[position] = 1 - probe[position]
            yield tuple(probe)


class MultiProbePrefilter:
    """Recall-boosted querying over a built hyperplane prefilter.

    Parameters
    ----------
    prefilter:
        A :class:`TablePrefilter` built with an embedding
        (hyperplane-bit) signature scheme.  The underlying index is
        reused as-is; only the lookup changes.
    max_flips:
        Hamming radius probed per band (1 multiplies lookups by
        ``band_size + 1``; 2 is rarely worth it).
    """

    def __init__(self, prefilter: TablePrefilter, max_flips: int = 1):
        if max_flips < 0:
            raise ConfigurationError("max_flips must be >= 0")
        self.prefilter = prefilter
        self.max_flips = max_flips

    # ------------------------------------------------------------------
    def _probe_votes(self, signature: np.ndarray) -> Counter:
        """Distinct co-bucketed keys across all probed buckets."""
        index = self.prefilter._index
        size = index.config.band_size
        keys: Set[str] = set()
        for band_number in range(index.config.num_bands):
            band = tuple(
                int(v)
                for v in signature[band_number * size:(band_number + 1) * size]
            )
            bucket_dict = index._bands[band_number]
            for probe in probe_band_keys(band, self.max_flips):
                keys.update(bucket_dict.get(probe, ()))
        votes: Counter = Counter()
        for key in keys:
            votes.update(self.prefilter._postings.get(key, ()))
        return votes

    def candidate_tables(self, query: Query, votes: int = 1) -> Set[str]:
        """Multi-probe candidate set (same contract as the prefilter)."""
        if votes < 1:
            raise ConfigurationError("votes must be >= 1")
        scheme = self.prefilter.scheme
        signatures: List[np.ndarray] = []
        for uri in sorted(query.entities()):
            signature = scheme.entity_signature(uri)
            if signature is not None:
                signatures.append(signature)
        if not signatures:
            return set(self.prefilter.indexed_tables)
        candidates: Set[str] = set()
        for signature in signatures:
            table_votes = self._probe_votes(signature)
            candidates.update(
                table_id
                for table_id, count in table_votes.items()
                if count >= votes
            )
        return candidates

    def reduction(self, total_tables: int, candidates) -> float:
        """Delegates to the wrapped prefilter's measurement."""
        return self.prefilter.reduction(total_tables, candidates)

"""The Locality-Sensitive Entity-Index (LSEI) and table prefiltering.

Signatures are split into bands; each band hashes into its own group of
buckets, and keys landing in the same bucket of any band are candidate
neighbors (Section 6.1).  For table search, each indexed key carries
postings to the tables it appears in; a query entity's lookup returns a
*bag* of tables (duplicates preserved across bands and across bucket
co-members), enabling the vote-threshold filtering of Section 6.2.

Two indexing granularities exist:

* entity mode — every linked entity is indexed, postings = tables that
  mention it;
* column-aggregated mode — every (table, column) group is indexed under
  the scheme's group signature, postings = that table (Section 6.2).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.query import Query
from repro.exceptions import ConfigurationError
from repro.linking.mapping import EntityMapping
from repro.lsh.config import LSHConfig
from repro.lsh.schemes import SignatureScheme

BucketKey = Tuple[int, ...]


class LSHIndex:
    """Banded signature index from keys to buckets of keys."""

    def __init__(self, config: LSHConfig):
        self.config = config
        self._bands: List[Dict[BucketKey, List[str]]] = [
            defaultdict(list) for _ in range(config.num_bands)
        ]
        self._signatures: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: str) -> bool:
        return key in self._signatures

    def _band_keys(self, signature: np.ndarray) -> List[BucketKey]:
        size = self.config.band_size
        if signature.shape[0] != self.config.num_vectors:
            raise ConfigurationError(
                f"signature width {signature.shape[0]} does not match "
                f"config {self.config}"
            )
        return [
            tuple(int(v) for v in signature[band * size : (band + 1) * size])
            for band in range(self.config.num_bands)
        ]

    def add(self, key: str, signature: np.ndarray) -> None:
        """Insert ``key`` into one bucket per band."""
        if key in self._signatures:
            return
        self._signatures[key] = signature
        for band, bucket_key in enumerate(self._band_keys(signature)):
            self._bands[band][bucket_key].append(key)

    def remove(self, key: str) -> None:
        """Drop ``key``'s signature and bucket memberships.

        Unknown keys are a no-op.  Buckets left empty are deleted so
        :meth:`bucket_count` stays an honest occupancy gauge.
        """
        signature = self._signatures.pop(key, None)
        if signature is None:
            return
        for band, bucket_key in enumerate(self._band_keys(signature)):
            bucket = self._bands[band].get(bucket_key)
            if bucket is None:
                continue
            try:
                bucket.remove(key)
            except ValueError:
                pass
            if not bucket:
                del self._bands[band][bucket_key]

    def lookup_signature(self, signature: np.ndarray) -> List[List[str]]:
        """Return, per band, the co-bucketed keys for ``signature``."""
        results: List[List[str]] = []
        for band, bucket_key in enumerate(self._band_keys(signature)):
            results.append(list(self._bands[band].get(bucket_key, ())))
        return results

    def lookup(self, key: str) -> List[List[str]]:
        """Per-band co-bucketed keys of an already-indexed ``key``."""
        signature = self._signatures.get(key)
        if signature is None:
            return [[] for _ in range(self.config.num_bands)]
        return self.lookup_signature(signature)

    def bucket_count(self) -> int:
        """Total number of non-empty buckets across bands."""
        return sum(len(band) for band in self._bands)


class TablePrefilter:
    """LSEI-based search-space reduction for semantic table search.

    Parameters
    ----------
    scheme:
        Entity signature scheme (types or embeddings).
    config:
        Banding configuration.
    mapping:
        The entity linking; provides both the entities to index and the
        entity -> table postings.
    column_aggregation:
        When true, index one aggregated signature per (table, column)
        entity group instead of one per entity (Section 6.2).
    """

    def __init__(
        self,
        scheme: SignatureScheme,
        config: LSHConfig,
        mapping: EntityMapping,
        column_aggregation: bool = False,
    ):
        if scheme.num_vectors != config.num_vectors:
            raise ConfigurationError(
                f"scheme width {scheme.num_vectors} does not match "
                f"config {config}"
            )
        self.scheme = scheme
        self.config = config
        self.mapping = mapping
        self.column_aggregation = column_aggregation
        self._index = LSHIndex(config)
        self._postings: Dict[str, Set[str]] = {}
        self._indexed_tables: Set[str] = set()
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self.column_aggregation:
            self._build_column_aggregated()
        else:
            self._build_per_entity()

    def _build_per_entity(self) -> None:
        for uri in sorted(self.mapping.all_entities()):
            tables = self.mapping.tables_with_entity(uri)
            if not tables:
                continue
            # Track every linked table so the filter can degrade to a
            # no-op (rather than an empty search space) when entities
            # cannot be hashed at all.
            self._indexed_tables.update(tables)
            signature = self.scheme.entity_signature(uri)
            if signature is None:
                continue
            self._index.add(uri, signature)
            self._postings[uri] = set(tables)

    def _build_column_aggregated(self) -> None:
        # Group linked cells by (table, column).
        groups: Dict[Tuple[str, int], List[str]] = defaultdict(list)
        for (table_id, _row, column), uri in sorted(self.mapping.all_links()):
            groups[(table_id, column)].append(uri)
        for (table_id, column), uris in groups.items():
            self._indexed_tables.add(table_id)
            signature = self.scheme.group_signature(uris)
            if signature is None:
                continue
            key = f"{table_id}#{column}"
            self._index.add(key, signature)
            self._postings[key] = {table_id}

    # ------------------------------------------------------------------
    # Dynamic-lake maintenance
    # ------------------------------------------------------------------
    def add_table(self, table_id: str) -> None:
        """Index a table that was linked into the mapping after build.

        New entities receive signatures and buckets; known entities just
        gain a posting.  In column-aggregated mode the table's column
        groups are signed and inserted.
        """
        entities = self.mapping.entities_in_table(table_id)
        if not entities:
            return
        self._indexed_tables.add(table_id)
        if self.column_aggregation:
            groups: Dict[int, List[str]] = defaultdict(list)
            for (tid, _row, column), uri in sorted(self.mapping.all_links()):
                if tid == table_id:
                    groups[column].append(uri)
            for column, uris in groups.items():
                key = f"{table_id}#{column}"
                # Drop any previous generation of this key first: the
                # index ignores duplicate adds, and a (table, column)
                # group's signature must always reflect the *current*
                # mapping contents.
                self._index.remove(key)
                signature = self.scheme.group_signature(uris)
                if signature is None:
                    self._postings.pop(key, None)
                    continue
                self._index.add(key, signature)
                self._postings[key] = {table_id}
            return
        for uri in sorted(entities):
            posting = self._postings.get(uri)
            if posting is not None:
                posting.add(table_id)
                continue
            signature = self.scheme.entity_signature(uri)
            if signature is None:
                continue
            self._index.add(uri, signature)
            self._postings[uri] = {table_id}

    def remove_table(self, table_id: str) -> None:
        """Drop a table from every posting list.

        In per-entity mode, entity signatures stay in the bucket
        structure (they are shared with other tables and depend only on
        the entity); only the postings shrink, so removed tables can
        never be returned as candidates.

        In column-aggregated mode the ``table#column`` keys belong to
        this table alone, so they are pruned outright — postings,
        signatures, and bucket memberships.  Leaving them behind would
        leak keys forever, over-count :meth:`num_indexed_keys`, and —
        because :meth:`LSHIndex.add` ignores already-present keys — make
        a later re-add of the same table id silently reuse the stale
        signatures instead of re-hashing its current columns.
        """
        self._indexed_tables.discard(table_id)
        if self.column_aggregation:
            stale = [
                key for key in self._postings
                if key.startswith(f"{table_id}#")
            ]
            for key in stale:
                del self._postings[key]
                self._index.remove(key)
            return
        for posting in self._postings.values():
            posting.discard(table_id)

    # ------------------------------------------------------------------
    @property
    def indexed_tables(self) -> FrozenSet[str]:
        """Tables reachable through at least one indexed key."""
        return frozenset(self._indexed_tables)

    def num_indexed_keys(self) -> int:
        """Number of indexed signatures (entities or column groups)."""
        return len(self._index)

    def _table_votes_for_signature(self, signature: np.ndarray) -> Counter:
        """Table votes from one signature lookup.

        Each *distinct* co-bucketed key contributes all its posted
        tables once, so a table's vote count is the number of similar
        entities it contains.  (The paper counts raw bucket occurrences
        — duplicates across bands included; with synthetic corpora many
        entities share identical type sets and therefore collide in
        every band, which would make band multiplicity a constant factor
        and the vote threshold inert.  Counting distinct keys keeps the
        threshold meaningful; on signature-diverse corpora the two
        schemes order tables the same way.)
        """
        keys: set = set()
        for bucket in self._index.lookup_signature(signature):
            keys.update(bucket)
        votes: Counter = Counter()
        for key in keys:
            votes.update(self._postings.get(key, ()))
        return votes

    def candidate_tables(
        self,
        query: Query,
        votes: int = 1,
        aggregate_query: bool = False,
    ) -> Set[str]:
        """Return the reduced table set for ``query`` (Section 6.2).

        Parameters
        ----------
        query:
            The entity-tuple query.
        votes:
            Minimum number of occurrences a table needs in a single
            entity lookup's bag to survive (paper tests 1 and 3).
        aggregate_query:
            Treat the whole query as a single aggregated signature
            (the 1-tuple reduction of Section 6.2).

        Notes
        -----
        Entities that cannot be hashed (untyped / unembedded) contribute
        no candidates; if *no* query entity is hashable the filter
        returns every indexed table rather than silently returning an
        empty search space.
        """
        if votes < 1:
            raise ConfigurationError("votes must be >= 1")
        if len(self._index) == 0:
            # Degenerate corpus (nothing hashable): filtering is a no-op.
            return set(self._indexed_tables)
        lookups: List[Optional[np.ndarray]] = []
        if aggregate_query:
            uris = self._query_uris(query)
            lookups.append(self.scheme.group_signature(uris))
        else:
            for uri in sorted(query.entities()):
                lookups.append(self.scheme.entity_signature(uri))
        usable = [sig for sig in lookups if sig is not None]
        if not usable:
            return set(self._indexed_tables)
        candidates: Set[str] = set()
        for signature in usable:
            table_votes = self._table_votes_for_signature(signature)
            candidates.update(
                table_id
                for table_id, count in table_votes.items()
                if count >= votes
            )
        return candidates

    @staticmethod
    def _query_uris(query: Query) -> List[str]:
        seen: List[str] = []
        known: Set[str] = set()
        for entity_tuple in query:
            for uri in entity_tuple:
                if uri not in known:
                    known.add(uri)
                    seen.append(uri)
        return seen

    def reduction(self, total_tables: int, candidates: Iterable[str]) -> float:
        """Search-space reduction fraction (the Table 4 measurement)."""
        count = len(set(candidates))
        if total_tables <= 0:
            return 0.0
        return max(0.0, 1.0 - count / total_tables)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the built index.

        The signature scheme itself is not serialized (it references
        the KG or the embedding store); pass an equivalent scheme to
        :meth:`from_dict` so query-side signatures keep matching.
        """
        return {
            "version": 1,
            "config": {
                "num_vectors": self.config.num_vectors,
                "band_size": self.config.band_size,
            },
            "column_aggregation": self.column_aggregation,
            "signatures": {
                key: [int(v) for v in signature]
                for key, signature in self._index._signatures.items()
            },
            "postings": {
                key: sorted(tables) for key, tables in self._postings.items()
            },
            "indexed_tables": sorted(self._indexed_tables),
        }

    def save(self, path) -> None:
        """Write the built index to ``path`` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict()), encoding="utf-8")

    @classmethod
    def from_dict(
        cls,
        payload: dict,
        scheme: SignatureScheme,
        mapping: EntityMapping,
    ) -> "TablePrefilter":
        """Rebuild a prefilter from :meth:`to_dict` output.

        ``scheme`` must be constructed with the same seed and width as
        the one that built the snapshot; ``mapping`` is only needed for
        later incremental updates.
        """
        config = LSHConfig(
            payload["config"]["num_vectors"],
            payload["config"]["band_size"],
        )
        prefilter = cls.__new__(cls)
        prefilter.scheme = scheme
        prefilter.config = config
        prefilter.mapping = mapping
        prefilter.column_aggregation = payload.get(
            "column_aggregation", False
        )
        prefilter._index = LSHIndex(config)
        for key, values in payload.get("signatures", {}).items():
            prefilter._index.add(key, np.asarray(values, dtype=np.int64))
        prefilter._postings = {
            key: set(tables)
            for key, tables in payload.get("postings", {}).items()
        }
        prefilter._indexed_tables = set(payload.get("indexed_tables", ()))
        return prefilter

    @classmethod
    def load(cls, path, scheme: SignatureScheme,
             mapping: EntityMapping) -> "TablePrefilter":
        """Load an index previously written by :meth:`save`."""
        import json
        from pathlib import Path

        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(payload, scheme, mapping)

"""MinHash signatures over integer shingle sets.

The type-based LSEI (Section 6.1) represents each entity as the set of
*pairs* of its type indices — the paper's ``|T| x |T|`` bit vector with
ones at pair positions — and min-hashes that set.  Pairs are encoded as
single integers ``i * |T| + j`` (for ``i <= j``), and each of the ``k``
permutations is a universal hash ``(a * x + b) mod p`` over a Mersenne
prime, evaluated with numpy in one shot.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

_PRIME = (1 << 61) - 1  # Mersenne prime > any shingle id we produce


def pair_shingles(type_indices: Iterable[int], num_types: int) -> FrozenSet[int]:
    """Encode the type-pair bit positions of an entity as integers.

    Includes the diagonal pairs ``(i, i)`` so single-typed entities still
    have a non-empty shingle set.
    """
    indices = sorted(set(type_indices))
    shingles = set()
    for pos, i in enumerate(indices):
        for j in indices[pos:]:
            shingles.add(i * num_types + j)
    return frozenset(shingles)


class MinHasher:
    """Computes ``k``-wide MinHash signatures of integer sets."""

    def __init__(self, num_hashes: int, seed: int = 0):
        if num_hashes < 1:
            raise ConfigurationError("num_hashes must be >= 1")
        self.num_hashes = num_hashes
        rng = np.random.default_rng(seed)
        # a must be non-zero for (a*x + b) mod p to permute.
        self._a = rng.integers(1, _PRIME, size=num_hashes, dtype=np.int64)
        self._b = rng.integers(0, _PRIME, size=num_hashes, dtype=np.int64)

    def signature(self, shingles: Iterable[int]) -> Optional[np.ndarray]:
        """Return the MinHash signature, or ``None`` for an empty set."""
        values = np.fromiter((int(s) for s in shingles), dtype=np.int64)
        if values.size == 0:
            return None
        # (k, s) hash grid; object dtype avoided by staying under 2^63
        # via Python-int math only when values could overflow.  Shingle
        # ids are < num_types^2 (< 2^40 in practice) so int64 is safe.
        hashed = (self._a[:, None] * values[None, :] + self._b[:, None]) % _PRIME
        return hashed.min(axis=1)

    def estimate_jaccard(self, sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimate Jaccard similarity from two signatures."""
        if sig_a.shape != sig_b.shape:
            raise ConfigurationError("signatures must have equal length")
        return float(np.mean(sig_a == sig_b))


class TypeShingler:
    """Maps entity type sets to shingle sets under a shared type index.

    Parameters
    ----------
    type_names:
        The corpus type vocabulary; indices are assigned in the given
        order (callers sort for determinism).
    excluded:
        Types filtered out before shingling (the >50 %-frequency filter
        of Section 6.1).
    """

    def __init__(self, type_names: Sequence[str], excluded: Iterable[str] = ()):
        self._excluded = frozenset(excluded)
        self._index = {
            name: i for i, name in enumerate(type_names) if name not in self._excluded
        }
        self.num_types = len(type_names)

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._index

    def shingles(self, types: Iterable[str]) -> FrozenSet[int]:
        """Return shingles for a type set (excluded/unknown types drop)."""
        indices = [self._index[t] for t in types if t in self._index]
        if not indices:
            return frozenset()
        return pair_shingles(indices, self.num_types)

"""LSH configuration auto-tuning.

The paper selects its configurations "after testing various
configurations on a smaller subset of the corpus" (Section 7.3).  The
tuner automates exactly that loop: for every candidate configuration it
measures the search-space reduction and the NDCG retention against the
brute-force ranking on a sample of queries, then picks the
highest-reduction configuration whose quality retention passes a
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.query import Query
from repro.core.search import TableSearchEngine
from repro.eval.metrics import ndcg_at_k, summarize
from repro.exceptions import ConfigurationError
from repro.lsh.config import PAPER_CONFIGS, LSHConfig
from repro.lsh.index import TablePrefilter
from repro.lsh.schemes import SignatureScheme

SchemeFactory = Callable[[int], SignatureScheme]


@dataclass(frozen=True)
class TuningOutcome:
    """Measured behaviour of one LSH configuration on the sample."""

    config: LSHConfig
    votes: int
    mean_reduction: float
    ndcg_retention: float  # filtered NDCG / brute-force NDCG

    def format_row(self) -> str:
        """One report line for tuner output."""
        return (
            f"{str(self.config):>10} votes={self.votes}  "
            f"reduction={self.mean_reduction:6.1%}  "
            f"retention={self.ndcg_retention:6.1%}"
        )


class LSHTuner:
    """Sweeps LSH configurations against a sample of queries.

    Parameters
    ----------
    engine:
        The exact engine providing brute-force reference rankings.
    scheme_factory:
        ``num_vectors -> SignatureScheme`` (each configuration needs a
        signature of its own width).
    k:
        Ranking cut-off used for the quality-retention measurement.
    """

    def __init__(
        self,
        engine: TableSearchEngine,
        scheme_factory: SchemeFactory,
        k: int = 10,
    ):
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        self.engine = engine
        self.scheme_factory = scheme_factory
        self.k = k

    def evaluate(
        self,
        config: LSHConfig,
        queries: Sequence[Query],
        votes: int = 1,
        reference: Optional[Dict[int, List[str]]] = None,
    ) -> TuningOutcome:
        """Measure one configuration on the query sample."""
        scheme = self.scheme_factory(config.num_vectors)
        prefilter = TablePrefilter(scheme, config, self.engine.mapping)
        total = len(self.engine.lake)
        reductions: List[float] = []
        retentions: List[float] = []
        for index, query in enumerate(queries):
            if reference is not None and index in reference:
                brute_ids = reference[index]
            else:
                brute_ids = self.engine.search(query, k=self.k).table_ids()
                if reference is not None:
                    reference[index] = brute_ids
            # The brute-force ranking acts as (binary-graded) truth.
            gains = {tid: 1.0 for tid in brute_ids}
            candidates = prefilter.candidate_tables(query, votes=votes)
            reductions.append(prefilter.reduction(total, candidates))
            filtered = self.engine.search(
                query, k=self.k, candidates=candidates
            )
            retentions.append(
                ndcg_at_k(filtered.table_ids(self.k), gains, self.k)
            )
        return TuningOutcome(
            config=config,
            votes=votes,
            mean_reduction=summarize(reductions)["mean"],
            ndcg_retention=summarize(retentions)["mean"],
        )

    def sweep(
        self,
        queries: Sequence[Query],
        configs: Sequence[LSHConfig] = PAPER_CONFIGS,
        votes_options: Sequence[int] = (1, 3),
    ) -> List[TuningOutcome]:
        """Evaluate every (config, votes) pair; descending reduction."""
        if not queries:
            raise ConfigurationError("need at least one sample query")
        reference: Dict[int, List[str]] = {}
        outcomes = [
            self.evaluate(config, queries, votes, reference)
            for config in configs
            for votes in votes_options
        ]
        return sorted(
            outcomes,
            key=lambda o: (-o.mean_reduction, -o.ndcg_retention),
        )

    def recommend(
        self,
        queries: Sequence[Query],
        configs: Sequence[LSHConfig] = PAPER_CONFIGS,
        votes_options: Sequence[int] = (1, 3),
        min_retention: float = 0.9,
    ) -> TuningOutcome:
        """Pick the strongest filter that keeps quality above the bar.

        Falls back to the best-retention configuration when nothing
        reaches ``min_retention`` (better a weak filter than a silent
        quality cliff).
        """
        outcomes = self.sweep(queries, configs, votes_options)
        for outcome in outcomes:  # already sorted by reduction
            if outcome.ndcg_retention >= min_retention:
                return outcome
        return max(outcomes, key=lambda o: o.ndcg_retention)

"""LSH configuration: signature length and banding (Section 6.1).

A configuration ``(X, Y)`` uses ``X`` permutation/projection vectors and
band size ``Y``, giving ``X / Y`` bucket groups of ``2^Y`` potential
buckets each.  The paper evaluates (32, 8), (128, 8), and (30, 10) and
selects (30, 10) — few bands with large band size maximize search-space
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LSHConfig:
    """Number of permutation/projection vectors and the band size."""

    num_vectors: int
    band_size: int

    def __post_init__(self) -> None:
        if self.num_vectors < 1:
            raise ConfigurationError("num_vectors must be >= 1")
        if self.band_size < 1:
            raise ConfigurationError("band_size must be >= 1")
        if self.num_vectors % self.band_size != 0:
            raise ConfigurationError(
                f"num_vectors ({self.num_vectors}) must be divisible by "
                f"band_size ({self.band_size})"
            )

    @property
    def num_bands(self) -> int:
        """Number of bucket groups (bands)."""
        return self.num_vectors // self.band_size

    def __str__(self) -> str:
        return f"({self.num_vectors}, {self.band_size})"


#: The three configurations evaluated in Section 7.3.
PAPER_CONFIGS = (
    LSHConfig(32, 8),
    LSHConfig(128, 8),
    LSHConfig(30, 10),
)

#: The configuration the paper recommends after Table 3/4.
RECOMMENDED_CONFIG = LSHConfig(30, 10)

"""Random-hyperplane LSH for embedding vectors (Section 6.1).

Each of ``k`` random projection vectors splits the embedding space into
a positive and a negative half; an entity's signature is the bit vector
of which side its embedding falls on.  Signatures of cosine-similar
vectors agree on most bits (Charikar's SimHash family).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError


class HyperplaneHasher:
    """Computes sign-bit signatures under ``k`` Gaussian hyperplanes."""

    def __init__(self, num_planes: int, dimensions: int, seed: int = 0):
        if num_planes < 1:
            raise ConfigurationError("num_planes must be >= 1")
        if dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        self.num_planes = num_planes
        self.dimensions = dimensions
        rng = np.random.default_rng(seed)
        self._planes = rng.standard_normal((num_planes, dimensions))

    def signature(self, vector: np.ndarray) -> Optional[np.ndarray]:
        """Return the 0/1 signature of ``vector`` (``None`` for zeros).

        A zero vector carries no directional information, so it is
        treated like a missing embedding rather than being hashed to an
        arbitrary all-negative bucket.
        """
        vec = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vec.shape[0] != self.dimensions:
            raise DimensionMismatchError(self.dimensions, vec.shape[0])
        if not np.any(vec):
            return None
        return (self._planes @ vec > 0.0).astype(np.int64)

    def signatures(self, matrix: np.ndarray) -> np.ndarray:
        """Vectorized signatures for an ``(n, D)`` matrix of embeddings."""
        mat = np.asarray(matrix, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.dimensions:
            raise DimensionMismatchError(self.dimensions, mat.shape[-1])
        return (mat @ self._planes.T > 0.0).astype(np.int64)

    def estimate_cosine(self, sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Estimate cosine similarity from the bit-agreement fraction.

        ``cos(theta) ~ cos(pi * (1 - agreement))`` under the SimHash
        collision probability.
        """
        if sig_a.shape != sig_b.shape:
            raise ConfigurationError("signatures must have equal length")
        agreement = float(np.mean(sig_a == sig_b))
        return float(np.cos(np.pi * (1.0 - agreement)))

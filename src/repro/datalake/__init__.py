"""Data-lake substrate: tables, repositories, IO, and statistics."""

from repro.datalake.io import (
    lake_from_dict,
    lake_to_dict,
    load_lake,
    load_lake_csv_dir,
    load_table_csv,
    save_lake,
    save_lake_csv_dir,
    save_table_csv,
)
from repro.datalake.lake import DataLake
from repro.datalake.profiling import (
    ColumnKind,
    ColumnProfile,
    TableProfile,
    profile_column,
    profile_table,
)
from repro.datalake.stats import CorpusStatistics, corpus_statistics
from repro.datalake.table import CellValue, Table

__all__ = [
    "Table",
    "CellValue",
    "DataLake",
    "CorpusStatistics",
    "corpus_statistics",
    "save_table_csv",
    "load_table_csv",
    "save_lake",
    "load_lake",
    "lake_to_dict",
    "lake_from_dict",
    "load_lake_csv_dir",
    "save_lake_csv_dir",
    "ColumnKind",
    "ColumnProfile",
    "TableProfile",
    "profile_column",
    "profile_table",
]

"""The data-lake repository: a keyed collection of tables.

Matching Section 2.1, a data lake is simply a set of tables with no
referential constraints between them; the repository therefore offers
only identity lookup, iteration, and bulk statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.exceptions import DataLakeError, DuplicateTableError
from repro.datalake.table import Table


class DataLake:
    """An ordered, keyed collection of :class:`~repro.datalake.table.Table`.

    Iteration order is insertion order, which keeps experiments
    deterministic.
    """

    def __init__(self, tables: Optional[Iterable[Table]] = None):
        self._tables: Dict[str, Table] = {}
        if tables is not None:
            for table in tables:
                self.add(table)

    def add(self, table: Table) -> None:
        """Insert ``table``; raises on duplicate identifiers."""
        if table.table_id in self._tables:
            raise DuplicateTableError(table.table_id)
        self._tables[table.table_id] = table

    def add_all(self, tables: Iterable[Table]) -> None:
        """Insert every table from ``tables``."""
        for table in tables:
            self.add(table)

    def get(self, table_id: str) -> Table:
        """Return the table with ``table_id`` or raise :class:`DataLakeError`."""
        try:
            return self._tables[table_id]
        except KeyError:
            raise DataLakeError(f"no table with id {table_id!r}") from None

    def find(self, table_id: str) -> Optional[Table]:
        """Return the table with ``table_id`` or ``None``."""
        return self._tables.get(table_id)

    def remove(self, table_id: str) -> Table:
        """Remove and return the table with ``table_id``."""
        try:
            return self._tables.pop(table_id)
        except KeyError:
            raise DataLakeError(f"no table with id {table_id!r}") from None

    def __contains__(self, table_id: str) -> bool:
        return table_id in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_ids(self) -> List[str]:
        """Return all table identifiers in insertion order."""
        return list(self._tables.keys())

    def subset(self, table_ids: Iterable[str]) -> "DataLake":
        """Return a new lake restricted to ``table_ids``.

        Unknown identifiers are ignored, which lets LSH prefilter output
        (which may reference stale tables) drive a search directly.
        """
        lake = DataLake()
        for table_id in table_ids:
            table = self._tables.get(table_id)
            if table is not None and table.table_id not in lake:
                lake.add(table)
        return lake

    def total_rows(self) -> int:
        """Total number of tuples across all tables."""
        return sum(t.num_rows for t in self._tables.values())

    def total_cells(self) -> int:
        """Total number of cells across all tables."""
        return sum(t.num_cells for t in self._tables.values())

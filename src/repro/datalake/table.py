"""The table model of Section 2.1.

A table is a set of tuples (rows) sharing the same schema, i.e. the same
ordered list of attributes.  Cell values come from an infinite set of
strings and numbers plus the special null value, represented here by
``None``.  Tables carry optional free-form metadata (page title, caption)
that keyword baselines such as BM25 may index but that Thetis itself
deliberately ignores.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import DataLakeError

CellValue = Optional[Any]  # str | int | float | None (the null value)


class Table:
    """An immutable-by-convention relational table.

    Parameters
    ----------
    table_id:
        Unique identifier within a data lake.
    attributes:
        Ordered column names (the schema ``A_i``).
    rows:
        Sequence of rows; each row must have exactly one value per
        attribute.  Values are strings, numbers, or ``None``.
    metadata:
        Optional descriptive metadata (e.g. ``{"caption": ...}``).
    """

    __slots__ = ("table_id", "attributes", "rows", "metadata")

    def __init__(
        self,
        table_id: str,
        attributes: Sequence[str],
        rows: Sequence[Sequence[CellValue]],
        metadata: Optional[Dict[str, Any]] = None,
    ):
        if not table_id:
            raise DataLakeError("table_id must be non-empty")
        if not attributes:
            raise DataLakeError(f"table {table_id!r} must have at least one attribute")
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise DataLakeError(f"table {table_id!r} has duplicate attribute names")
        materialized: List[Tuple[CellValue, ...]] = []
        for index, row in enumerate(rows):
            row_tuple = tuple(row)
            if len(row_tuple) != len(attrs):
                raise DataLakeError(
                    f"table {table_id!r} row {index} has {len(row_tuple)} "
                    f"values, expected {len(attrs)}"
                )
            materialized.append(row_tuple)
        self.table_id = table_id
        self.attributes = attrs
        self.rows = materialized
        self.metadata = dict(metadata) if metadata else {}

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of tuples in the table."""
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        """Number of attributes in the schema."""
        return len(self.attributes)

    @property
    def num_cells(self) -> int:
        """Total number of cells (rows x columns)."""
        return self.num_rows * self.num_columns

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Tuple[CellValue, ...]]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return (
            f"Table({self.table_id!r}, {self.num_rows} rows x "
            f"{self.num_columns} cols)"
        )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def cell(self, row: int, column: int) -> CellValue:
        """Return the value at ``(row, column)`` (0-based indices)."""
        try:
            return self.rows[row][column]
        except IndexError:
            raise DataLakeError(
                f"cell ({row}, {column}) out of range for {self!r}"
            ) from None

    def column_index(self, attribute: str) -> int:
        """Return the position of ``attribute`` in the schema."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise DataLakeError(
                f"table {self.table_id!r} has no attribute {attribute!r}"
            ) from None

    def column(self, column: int) -> List[CellValue]:
        """Return all values of the column at position ``column``."""
        if not 0 <= column < self.num_columns:
            raise DataLakeError(
                f"column {column} out of range for {self!r}"
            )
        return [row[column] for row in self.rows]

    def column_by_name(self, attribute: str) -> List[CellValue]:
        """Return all values of the named column."""
        return self.column(self.column_index(attribute))

    def text_values(self) -> List[str]:
        """Return every non-null cell rendered as text.

        This is the document view used by keyword baselines; table
        metadata values are included as the paper's *text queries* match
        against captions and cell contents alike.
        """
        texts = [str(v) for row in self.rows for v in row if v is not None]
        texts.extend(str(v) for v in self.metadata.values() if v is not None)
        return texts

    def non_null_cells(self) -> int:
        """Count cells holding an actual value."""
        return sum(1 for row in self.rows for v in row if v is not None)

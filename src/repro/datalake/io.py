"""Data-lake persistence: CSV per table and a JSON bundle for whole lakes.

CSV is the lingua franca of real data lakes (GitTables is a CSV corpus),
so individual tables round-trip through standard CSV files.  For whole
corpora the JSON bundle format is far faster to load and preserves value
types and metadata exactly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Optional, Union

from repro.datalake.lake import DataLake
from repro.datalake.table import CellValue, Table

PathLike = Union[str, Path]

_NULL_TOKEN = ""


def _render_cell(value: CellValue) -> str:
    if value is None:
        return _NULL_TOKEN
    return str(value)


def _parse_cell(text: str) -> CellValue:
    """Best-effort typed parse: int, then float, then string, '' -> null."""
    if text == _NULL_TOKEN:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def save_table_csv(table: Table, path: PathLike) -> None:
    """Write ``table`` to ``path`` as a CSV file with a header row."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.attributes)
        for row in table.rows:
            writer.writerow([_render_cell(v) for v in row])


def load_table_csv(path: PathLike, table_id: Optional[str] = None) -> Table:
    """Read a CSV file with a header row into a :class:`Table`.

    ``table_id`` defaults to the file stem.
    """
    path = Path(path)
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"CSV file {path} is empty (no header row)")
    header, body = rows[0], rows[1:]
    parsed = [[_parse_cell(cell) for cell in row] for row in body]
    return Table(table_id or path.stem, header, parsed)


def lake_to_dict(lake: DataLake) -> dict:
    """Return a JSON-serializable dictionary for ``lake``."""
    return {
        "version": 1,
        "tables": [
            {
                "id": t.table_id,
                "attributes": list(t.attributes),
                "rows": [list(row) for row in t.rows],
                "metadata": t.metadata,
            }
            for t in lake
        ],
    }


def lake_from_dict(payload: dict) -> DataLake:
    """Rebuild a :class:`DataLake` from :func:`lake_to_dict` output."""
    lake = DataLake()
    for record in payload.get("tables", []):
        lake.add(
            Table(
                record["id"],
                record["attributes"],
                record["rows"],
                metadata=record.get("metadata"),
            )
        )
    return lake


def save_lake(lake: DataLake, path: PathLike) -> None:
    """Write ``lake`` to ``path`` as a JSON bundle."""
    Path(path).write_text(json.dumps(lake_to_dict(lake)), encoding="utf-8")


def load_lake(path: PathLike) -> DataLake:
    """Load a lake previously written by :func:`save_lake`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return lake_from_dict(payload)


def save_lake_csv_dir(lake: DataLake, directory: PathLike) -> None:
    """Write every table of ``lake`` as ``<table_id>.csv`` in a directory.

    Table ids containing path separators are rejected rather than
    silently creating nested directories.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    for table in lake:
        if "/" in table.table_id or "\\" in table.table_id:
            raise ValueError(
                f"table id {table.table_id!r} is not a valid file name"
            )
        save_table_csv(table, target / f"{table.table_id}.csv")


def load_lake_csv_dir(directory: PathLike) -> DataLake:
    """Load every ``*.csv`` file in ``directory`` into one lake.

    Files are loaded in sorted-name order for determinism; each table id
    is the file stem.
    """
    lake = DataLake()
    paths: List[Path] = sorted(Path(directory).glob("*.csv"))
    for path in paths:
        lake.add(load_table_csv(path))
    return lake

"""Corpus statistics in the shape of the paper's Table 2.

For each benchmark the paper reports the number of tables, mean rows,
mean columns, and mean entity-link coverage (fraction of cells linked to
a KG entity).  :func:`corpus_statistics` computes the same summary for
any lake, optionally using an entity mapping for the coverage column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalake.lake import DataLake


@dataclass(frozen=True)
class CorpusStatistics:
    """Summary row matching the columns of the paper's Table 2."""

    num_tables: int
    mean_rows: float
    mean_columns: float
    mean_coverage: float

    def format_row(self, name: str) -> str:
        """Render in the style of Table 2 for benchmark harness output."""
        return (
            f"{name:<12} T={self.num_tables:>9,}  R={self.mean_rows:>7.1f}  "
            f"C={self.mean_columns:>5.1f}  Cov={self.mean_coverage * 100:>5.1f}%"
        )


def corpus_statistics(lake: DataLake, mapping=None) -> CorpusStatistics:
    """Compute Table-2 style statistics for ``lake``.

    Parameters
    ----------
    lake:
        The data lake to summarize.
    mapping:
        Optional :class:`~repro.linking.mapping.EntityMapping`; when
        provided, mean coverage is the per-table mean fraction of cells
        linked to a KG entity, as in the paper.  Without a mapping the
        coverage column is reported as 0.
    """
    num_tables = len(lake)
    if num_tables == 0:
        return CorpusStatistics(0, 0.0, 0.0, 0.0)
    total_rows = 0
    total_columns = 0
    coverage_sum = 0.0
    for table in lake:
        total_rows += table.num_rows
        total_columns += table.num_columns
        if mapping is not None and table.num_cells > 0:
            linked = mapping.linked_cell_count(table.table_id)
            coverage_sum += linked / table.num_cells
    return CorpusStatistics(
        num_tables=num_tables,
        mean_rows=total_rows / num_tables,
        mean_columns=total_columns / num_tables,
        mean_coverage=coverage_sum / num_tables if mapping is not None else 0.0,
    )

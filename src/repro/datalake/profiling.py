"""Column profiling for data-lake tables.

Data-lake systems routinely profile ingested tables to drive indexing
decisions; here, profiles answer the questions the search stack cares
about: which columns are textual (candidate entity columns), which are
numeric (never linkable), how dense the nulls are, and — given a
mapping — what fraction of a column's cells actually resolved to KG
entities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.datalake.table import Table
from repro.linking.mapping import EntityMapping


class ColumnKind(enum.Enum):
    """Dominant value kind of a column."""

    NUMERIC = "numeric"
    TEXT = "text"
    MIXED = "mixed"
    EMPTY = "empty"


@dataclass(frozen=True)
class ColumnProfile:
    """Statistics of one table column."""

    name: str
    index: int
    kind: ColumnKind
    null_fraction: float
    distinct_values: int
    entity_link_fraction: float  # 0.0 without a mapping

    @property
    def is_entity_candidate(self) -> bool:
        """Whether the column could plausibly hold entity mentions."""
        return self.kind in (ColumnKind.TEXT, ColumnKind.MIXED)


@dataclass(frozen=True)
class TableProfile:
    """Per-column profiles plus table-level aggregates."""

    table_id: str
    columns: List[ColumnProfile]

    @property
    def entity_columns(self) -> List[ColumnProfile]:
        """Columns that could hold entity mentions."""
        return [c for c in self.columns if c.is_entity_candidate]

    @property
    def numeric_columns(self) -> List[ColumnProfile]:
        """Columns dominated by numbers."""
        return [c for c in self.columns if c.kind is ColumnKind.NUMERIC]

    def format_report(self) -> str:
        """Text report, one line per column."""
        lines = [f"table {self.table_id!r}:"]
        for column in self.columns:
            lines.append(
                f"  [{column.index}] {column.name:<16} {column.kind.value:<8}"
                f" nulls={column.null_fraction:5.1%}"
                f" distinct={column.distinct_values:<6}"
                f" linked={column.entity_link_fraction:5.1%}"
            )
        return "\n".join(lines)


def _classify(values: List[object]) -> ColumnKind:
    non_null = [v for v in values if v is not None]
    if not non_null:
        return ColumnKind.EMPTY
    numeric = sum(1 for v in non_null if isinstance(v, (int, float)))
    fraction = numeric / len(non_null)
    if fraction >= 0.9:
        return ColumnKind.NUMERIC
    if fraction <= 0.1:
        return ColumnKind.TEXT
    return ColumnKind.MIXED


def profile_column(
    table: Table,
    column: int,
    mapping: Optional[EntityMapping] = None,
) -> ColumnProfile:
    """Profile one column of ``table``."""
    values = table.column(column)
    total = len(values)
    nulls = sum(1 for v in values if v is None)
    linked = 0
    if mapping is not None:
        linked = sum(
            1
            for row in range(table.num_rows)
            if mapping.entity_at(table.table_id, row, column) is not None
        )
    return ColumnProfile(
        name=table.attributes[column],
        index=column,
        kind=_classify(values),
        null_fraction=(nulls / total) if total else 0.0,
        distinct_values=len({v for v in values if v is not None}),
        entity_link_fraction=(linked / total) if total else 0.0,
    )


def profile_table(
    table: Table, mapping: Optional[EntityMapping] = None
) -> TableProfile:
    """Profile every column of ``table``."""
    return TableProfile(
        table_id=table.table_id,
        columns=[
            profile_column(table, column, mapping)
            for column in range(table.num_columns)
        ],
    )

"""Request model and JSON codec of the online serving layer.

The wire format is plain JSON over HTTP.  A search request looks like::

    POST /search
    {"tuples": [["kg:player0", "kg:team0"]],
     "k": 10, "method": "types", "use_lsh": false, "votes": 1}

and its response::

    {"results": [{"rank": 1, "table_id": "T00", "score": 0.93}, ...],
     "count": 10, "k": 10, "method": "types", "snapshot_version": 0}

Parsing is strict: unknown fields, wrong types, or out-of-range values
raise :class:`~repro.exceptions.ProtocolError`, which the server maps
to HTTP 400 — a malformed request must never reach the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.query import Query
from repro.core.result import ResultSet
from repro.exceptions import EmptyQueryError, ProtocolError

#: Search methods the service accepts.
METHODS = ("types", "embeddings")

#: Execution modes of a query request: full ranking, early-terminated
#: top-k (Section 5.4's upper-bound pruning), or LSH candidate
#: generation + fused rescoring (the Section 6 prefilter pipeline).
MODES = ("search", "topk", "prefilter")

#: Wire values of the optional ``mode`` body field on ``POST /search``;
#: ``"exact"`` maps to the endpoint's plain ``"search"`` execution.
WIRE_MODES = ("exact", "prefilter")

#: Search workloads accepted on ``POST /search``: the paper's
#: entity-tuple ranking (default), SANTOS-like union search, and
#: D3L/JOSIE-like join search — all served by vectorized kernels.
TASKS = ("entity", "union", "join")

#: Upper bound on ``k`` accepted over the wire: a page of results, not
#: a corpus dump — unbounded ``k`` would let one client monopolize a
#: batch slot with serialization work.
MAX_K = 1000

#: Upper bounds on query shape, mirroring the paper's largest workload
#: (5-tuple queries) with generous headroom.
MAX_TUPLES = 64
MAX_TUPLE_WIDTH = 64


def _expect_mapping(payload: Any) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_fields(payload: Dict[str, Any], allowed: Tuple[str, ...]) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ProtocolError(f"unknown request fields: {', '.join(unknown)}")


def _parse_tuples(payload: Dict[str, Any]) -> Tuple[Tuple[str, ...], ...]:
    raw = payload.get("tuples")
    if raw is None:
        raise ProtocolError("missing required field 'tuples'")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("'tuples' must be a non-empty list of lists")
    if len(raw) > MAX_TUPLES:
        raise ProtocolError(
            f"too many query tuples: {len(raw)} > {MAX_TUPLES}"
        )
    tuples: List[Tuple[str, ...]] = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, list) or not entry:
            raise ProtocolError(
                f"tuple {i} must be a non-empty list of entity URIs"
            )
        if len(entry) > MAX_TUPLE_WIDTH:
            raise ProtocolError(
                f"tuple {i} too wide: {len(entry)} > {MAX_TUPLE_WIDTH}"
            )
        for uri in entry:
            if not isinstance(uri, str) or not uri:
                raise ProtocolError(
                    f"tuple {i} contains a non-string or empty entity URI"
                )
        tuples.append(tuple(entry))
    return tuple(tuples)


def _parse_int(payload: Dict[str, Any], name: str, default: int,
               low: int, high: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"'{name}' must be an integer")
    if not low <= value <= high:
        raise ProtocolError(
            f"'{name}' must be in [{low}, {high}], got {value}"
        )
    return value


def _parse_bool(payload: Dict[str, Any], name: str, default: bool) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"'{name}' must be a boolean")
    return value


def _parse_choice(payload: Dict[str, Any], name: str, default: str,
                  choices: Tuple[str, ...]) -> str:
    value = payload.get(name, default)
    if value not in choices:
        raise ProtocolError(
            f"'{name}' must be one of {choices}, got {value!r}"
        )
    return value


#: Table ids travel in URL path segments as well as JSON bodies, so
#: beyond non-emptiness they must not carry control characters.
MAX_TABLE_ID_LENGTH = 1024


def parse_table_id(value: Any, name: str = "table_id") -> str:
    """Validate one table id from a request body or URL segment.

    The single chokepoint every externally-supplied table id passes
    through before it reaches the engine (the wire-taint lint pass
    treats its return value as sanitized).
    """
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"'{name}' must be a non-empty string")
    if len(value) > MAX_TABLE_ID_LENGTH:
        raise ProtocolError(
            f"'{name}' exceeds {MAX_TABLE_ID_LENGTH} characters"
        )
    if any(ch < " " or ch == "\x7f" for ch in value):
        raise ProtocolError(
            f"'{name}' must not contain control characters"
        )
    return value


@dataclass(frozen=True)
class SearchRequest:
    """One parsed, validated query request.

    ``mode`` selects the execution path: ``"search"`` ranks with the
    (optionally LSH-prefiltered, optionally sharded) exact engine,
    ``"topk"`` uses the early-terminating top-k search.
    """

    tuples: Tuple[Tuple[str, ...], ...]
    k: int = 10
    method: str = "types"
    mode: str = "search"
    use_lsh: bool = False
    votes: int = 1
    task: str = "entity"

    @classmethod
    def from_json(cls, payload: Any, mode: str = "search") -> "SearchRequest":
        """Parse and validate a JSON payload; raises :class:`ProtocolError`.

        ``mode`` is the endpoint's execution mode (``POST /topk`` passes
        ``"topk"``).  ``POST /search`` bodies may additionally carry a
        ``"mode"`` field choosing between ``"exact"`` (the default,
        mapped to plain ``"search"`` execution) and ``"prefilter"``
        (LSH candidate generation + fused rescoring), and a ``"task"``
        field routing the query to the entity, union, or join engine;
        both fields are rejected on other endpoints, where the path
        already fixes the execution.
        """
        payload = _expect_mapping(payload)
        _check_fields(
            payload,
            ("tuples", "k", "method", "use_lsh", "votes", "mode", "task"),
        )
        if payload.get("mode") is not None:
            if mode != "search":
                raise ProtocolError(
                    "'mode' is only accepted on POST /search"
                )
            wire_mode = _parse_choice(
                payload, "mode", "exact", WIRE_MODES
            )
            mode = "search" if wire_mode == "exact" else "prefilter"
        task = "entity"
        if payload.get("task") is not None:
            if mode not in ("search", "prefilter"):
                raise ProtocolError(
                    "'task' is only accepted on POST /search"
                )
            task = _parse_choice(payload, "task", "entity", TASKS)
        if task != "entity" and (
            mode == "prefilter" or _parse_bool(payload, "use_lsh", False)
        ):
            raise ProtocolError(
                "LSH prefiltering applies to the entity task only: "
                f"task {task!r} cannot combine with mode='prefilter' "
                "or use_lsh"
            )
        return cls(
            tuples=_parse_tuples(payload),
            k=_parse_int(payload, "k", 10, 1, MAX_K),
            method=_parse_choice(payload, "method", "types", METHODS),
            mode=mode if mode in MODES else "search",
            use_lsh=_parse_bool(payload, "use_lsh", False),
            votes=_parse_int(payload, "votes", 1, 1, 64),
            task=task,
        )

    def query(self) -> Query:
        """Materialize the :class:`Query`; empty queries become 400s."""
        try:
            return Query(self.tuples)
        except EmptyQueryError as exc:
            raise ProtocolError(str(exc)) from exc

    def batch_key(self) -> Tuple[str, str, str, int, bool, int]:
        """Requests sharing this key may run in one ``search_many`` call.

        The task is part of the key: entity, union, and join queries
        never share a batch — they dispatch to different engines.
        """
        return (
            self.task, self.mode, self.method, self.k,
            self.use_lsh, self.votes,
        )


@dataclass(frozen=True)
class ExplainRequest:
    """A request to explain one table's score for a query."""

    tuples: Tuple[Tuple[str, ...], ...]
    table_id: str
    method: str = "types"

    @classmethod
    def from_json(cls, payload: Any) -> "ExplainRequest":
        payload = _expect_mapping(payload)
        _check_fields(payload, ("tuples", "table_id", "method"))
        table_id = parse_table_id(payload.get("table_id"))
        return cls(
            tuples=_parse_tuples(payload),
            table_id=table_id,
            method=_parse_choice(payload, "method", "types", METHODS),
        )

    def query(self) -> Query:
        try:
            return Query(self.tuples)
        except EmptyQueryError as exc:
            raise ProtocolError(str(exc)) from exc


@dataclass(frozen=True)
class TableUpsertRequest:
    """A request to add (and entity-link) one table to the lake."""

    table_id: str
    attributes: Tuple[str, ...]
    rows: Tuple[Tuple[Any, ...], ...]
    metadata: Dict[str, Any] = field(default_factory=dict)
    link: bool = True

    @classmethod
    def from_json(cls, payload: Any) -> "TableUpsertRequest":
        payload = _expect_mapping(payload)
        _check_fields(payload, ("table", "link"))
        record = payload.get("table")
        if not isinstance(record, dict):
            raise ProtocolError("missing required object field 'table'")
        _check_fields(record, ("id", "attributes", "rows", "metadata"))
        table_id = parse_table_id(record.get("id"), name="table.id")
        attributes = record.get("attributes")
        if (not isinstance(attributes, list) or not attributes
                or not all(isinstance(a, str) for a in attributes)):
            raise ProtocolError(
                "'table.attributes' must be a non-empty list of strings"
            )
        rows = record.get("rows")
        if not isinstance(rows, list):
            raise ProtocolError("'table.rows' must be a list of rows")
        parsed_rows: List[Tuple[Any, ...]] = []
        for i, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(attributes):
                raise ProtocolError(
                    f"'table.rows[{i}]' must be a list of "
                    f"{len(attributes)} cells"
                )
            parsed_rows.append(tuple(row))
        metadata = record.get("metadata") or {}
        if not isinstance(metadata, dict):
            raise ProtocolError("'table.metadata' must be an object")
        return cls(
            table_id=table_id,
            attributes=tuple(attributes),
            rows=tuple(parsed_rows),
            metadata=dict(metadata),
            link=_parse_bool(payload, "link", True),
        )

    def table(self):
        """Build the :class:`~repro.datalake.table.Table` (may raise 400)."""
        from repro.datalake.table import Table
        from repro.exceptions import DataLakeError

        try:
            return Table(
                self.table_id,
                list(self.attributes),
                [list(row) for row in self.rows],
                metadata=self.metadata or None,
            )
        except DataLakeError as exc:
            raise ProtocolError(str(exc)) from exc


def result_to_json(
    results: ResultSet,
    request: SearchRequest,
    snapshot_version: Optional[int] = None,
) -> Dict[str, Any]:
    """Serialize a :class:`ResultSet` for one request."""
    payload: Dict[str, Any] = {
        "results": [
            {"rank": rank, "table_id": scored.table_id,
             "score": scored.score}
            for rank, scored in enumerate(results, start=1)
        ],
        "count": len(results),
        "k": request.k,
        "method": request.method,
        "mode": request.mode,
        "task": request.task,
    }
    if snapshot_version is not None:
        payload["snapshot_version"] = snapshot_version
    return payload


def error_to_json(message: str, status: int) -> Dict[str, Any]:
    """Uniform error envelope for non-200 responses."""
    return {"error": message, "status": status}

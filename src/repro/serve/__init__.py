"""Online serving layer: an asyncio HTTP/JSON query service.

Turns a warm :class:`~repro.system.Thetis` into a standing network
service (stdlib-only — no framework dependencies):

* :class:`~repro.serve.server.ThetisServer` — the asyncio HTTP server
  (``/search``, ``/topk``, ``/explain``, ``/tables``, ``/healthz``,
  ``/readyz``, ``/metrics``);
* :class:`~repro.serve.batching.MicroBatcher` — coalesces concurrent
  queries into ``search_many`` passes with bounded admission (503) and
  per-request deadlines (504);
* :class:`~repro.serve.snapshot.SnapshotManager` — versioned engine
  snapshots with copy-and-swap lake updates; in-flight queries finish
  on the generation they started with;
* :class:`~repro.serve.metrics.ServerMetrics` — counters, latency
  histograms, queue depth, cache hit rates for ``/metrics``;
* :class:`~repro.serve.loadgen.LoadGenerator` — closed-/open-loop load
  generation reporting throughput and p50/p95/p99 latency.

See ``docs/serving.md`` for the wire format and tuning guide.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.loadgen import LoadGenerator, LoadReport
from repro.serve.metrics import LatencyHistogram, ServerMetrics
from repro.serve.protocol import (
    ExplainRequest,
    SearchRequest,
    TableUpsertRequest,
    error_to_json,
    result_to_json,
)
from repro.serve.server import ServeConfig, ServerThread, ThetisServer
from repro.serve.snapshot import EngineSnapshot, SnapshotManager

__all__ = [
    "ThetisServer",
    "ServerThread",
    "ServeConfig",
    "MicroBatcher",
    "SnapshotManager",
    "EngineSnapshot",
    "ServerMetrics",
    "LatencyHistogram",
    "SearchRequest",
    "ExplainRequest",
    "TableUpsertRequest",
    "result_to_json",
    "error_to_json",
    "LoadGenerator",
    "LoadReport",
]

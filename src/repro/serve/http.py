"""Minimal HTTP/1.1 plumbing over asyncio streams (stdlib only).

The serving layer deliberately avoids web frameworks: the wire needs of
a JSON query service are a request line, a handful of headers, a
``Content-Length`` body, and keep-alive — small enough to implement
directly on :mod:`asyncio` streams and keep the whole stack
dependency-free.  Requests that violate the subset (chunked bodies,
oversized headers) are rejected with the appropriate 4xx rather than
guessed at.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import BadRequestError, ProtocolError

#: Hard limits keeping one client from exhausting server memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"

    def json(self) -> Any:
        """Decode the body as JSON; raises :class:`ProtocolError` on 400s."""
        if not self.body:
            raise ProtocolError("request body is empty, expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from exc


@dataclass
class HttpResponse:
    """One response; ``payload`` dicts are serialized as JSON."""

    status: int
    payload: Optional[Any] = None
    content_type: str = "application/json"

    def encode(self, keep_alive: bool = True) -> bytes:
        if self.payload is None:
            body = b""
        elif isinstance(self.payload, (bytes, bytearray)):
            body = bytes(self.payload)
        elif isinstance(self.payload, str):
            body = self.payload.encode("utf-8")
        else:
            body = json.dumps(self.payload).encode("utf-8")
        reason = STATUS_REASONS.get(self.status, "Unknown")
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        return head.encode("ascii") + body


async def read_request(
    reader: asyncio.StreamReader,
) -> Optional[HttpRequest]:
    """Parse one request off the stream.

    Returns ``None`` on a clean EOF (client closed between requests);
    raises :class:`~repro.exceptions.BadRequestError` on protocol violations.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    if len(request_line) > MAX_HEADER_BYTES:
        raise BadRequestError(413, "request line too long")
    parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequestError(400, "malformed request line")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        line = await reader.readline()
        if not line:
            raise BadRequestError(400, "connection closed inside headers")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise BadRequestError(413, "headers too large")
        if line in (b"\r\n", b"\n"):
            break
        text = line.decode("latin-1").rstrip("\r\n")
        name, separator, value = text.partition(":")
        if not separator:
            raise BadRequestError(400, f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "transfer-encoding" in headers:
        raise BadRequestError(501, "chunked transfer encoding not supported")
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise BadRequestError(400, "invalid Content-Length") from None
        if length < 0:
            raise BadRequestError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise BadRequestError(
                    400, "connection closed inside body"
                ) from None
    elif method in ("POST", "PUT", "PATCH"):
        raise BadRequestError(411, "Content-Length required")

    return HttpRequest(method=method.upper(), path=target, headers=headers,
                       body=body)


def split_path(path: str) -> Tuple[str, ...]:
    """``/tables/T01?x=1`` -> ``("tables", "T01")`` (query string dropped)."""
    path = path.split("?", 1)[0]
    return tuple(segment for segment in path.split("/") if segment)

"""Micro-batching queue with admission control and per-request timeouts.

Concurrent clients each submit one query; the batcher coalesces
whatever is waiting (up to ``max_batch_size``, waiting at most
``flush_interval`` for stragglers) and hands the batch to a runner that
executes it against the warm engine in a worker thread.  Batching keeps
the engine's similarity cache hot across neighbouring requests and
bounds context-switching under load, while the coalescing window is
short enough that a lone request barely notices it.

Backpressure is explicit and fast: the admission queue is bounded, and
a submit against a full queue raises
:class:`~repro.exceptions.ServerOverloadedError` immediately (the
server turns that into a 503) instead of queueing unboundedly.  Each
accepted request carries a deadline; expiry raises
:class:`~repro.exceptions.RequestTimeoutError` (a 504) and the batcher
discards the request's result when it eventually materializes, so one
slow query cannot wedge its neighbours' connections.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, List, Optional, Sequence

from repro.exceptions import RequestTimeoutError, ServeError, \
    ServerOverloadedError

#: Defaults tuned for an interactive service: a small coalescing window
#: (2 ms) keeps single-client latency flat while a burst of concurrent
#: clients still folds into few engine passes.
DEFAULT_MAX_BATCH_SIZE = 8
DEFAULT_FLUSH_INTERVAL = 0.002
DEFAULT_MAX_QUEUE_DEPTH = 64
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Sentinel that asks the worker loop to finish draining and exit.
_SHUTDOWN = object()


class _Pending:
    """One enqueued request with its completion future."""

    __slots__ = ("item", "future")

    def __init__(self, item: Any, future: "asyncio.Future[Any]"):
        self.item = item
        self.future = future

    def resolve(self, outcome: Any) -> None:
        """Deliver ``outcome`` unless the waiter already gave up."""
        if self.future.done():
            return  # timed out or cancelled; drop the late result
        if isinstance(outcome, BaseException):
            self.future.set_exception(outcome)
        else:
            self.future.set_result(outcome)


BatchRunner = Callable[[Sequence[Any]], Awaitable[List[Any]]]


class MicroBatcher:
    """Coalesce concurrent submissions into batched runner calls.

    Parameters
    ----------
    runner:
        ``async`` callable receiving the list of batched items and
        returning one outcome per item, aligned by position.  An
        outcome may be an exception instance, which is raised to that
        item's submitter only.  (The server's runner dispatches the
        batch to a thread-pool executor so the event loop stays free.)
    max_batch_size:
        Hard cap on items per runner call.
    flush_interval:
        Seconds the batcher waits for more items after the first one.
    max_queue_depth:
        Admission bound; submissions beyond it fast-fail with
        :class:`ServerOverloadedError`.
    request_timeout:
        Default per-request deadline in seconds (overridable per
        submission).
    """

    def __init__(
        self,
        runner: BatchRunner,
        max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if flush_interval < 0:
            raise ValueError("flush_interval must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.runner = runner
        self.max_batch_size = max_batch_size
        self.flush_interval = flush_interval
        self.max_queue_depth = max_queue_depth
        self.request_timeout = request_timeout
        self._queue: Optional["asyncio.Queue[Any]"] = None
        self._worker: Optional["asyncio.Task[None]"] = None
        self._accepting = False
        self.batches_executed = 0
        self.items_executed = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched to a batch."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def running(self) -> bool:
        return self._worker is not None and not self._worker.done()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the queue and worker task on the running loop."""
        if self.running:
            return
        self._queue = asyncio.Queue(maxsize=self.max_queue_depth)
        self._worker = asyncio.get_running_loop().create_task(
            self._worker_loop(), name="thetis-batcher"
        )
        self._accepting = True

    async def stop(self, drain: bool = True) -> None:
        """Stop admissions, flush or fail queued work, join the worker.

        With ``drain`` (the graceful path) everything already admitted
        is still executed; without it, queued requests fail with
        :class:`ServerOverloadedError`.
        """
        if self._queue is None:
            return
        self._accepting = False
        if not drain:
            while True:
                try:
                    pending = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if pending is not _SHUTDOWN:
                    pending.resolve(
                        ServerOverloadedError(
                            self.queue_depth, self.max_queue_depth
                        )
                    )
        # A full queue must not block shutdown: admissions are closed,
        # so the worker only ever shrinks the queue from here on.
        while True:
            try:
                self._queue.put_nowait(_SHUTDOWN)
                break
            except asyncio.QueueFull:
                await asyncio.sleep(0.001)
        if self._worker is not None:
            await self._worker
            self._worker = None
        self._queue = None

    # ------------------------------------------------------------------
    async def submit(self, item: Any,
                     timeout: Optional[float] = None) -> Any:
        """Admit ``item``, await its batched outcome.

        Raises
        ------
        ServerOverloadedError
            If the admission queue is full or the batcher is stopped.
        RequestTimeoutError
            If no outcome arrives within the deadline.
        """
        if self._queue is None or not self._accepting:
            raise ServeError("batcher is not accepting requests")
        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        pending = _Pending(item, future)
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            raise ServerOverloadedError(
                self._queue.qsize(), self.max_queue_depth
            ) from None
        deadline = timeout if timeout is not None else self.request_timeout
        try:
            return await asyncio.wait_for(future, deadline)
        except asyncio.TimeoutError:
            raise RequestTimeoutError(deadline) from None

    # ------------------------------------------------------------------
    async def _collect_batch(self, first: Any) -> tuple:
        """Gather up to ``max_batch_size`` items within the flush window.

        Returns ``(batch, saw_shutdown)``.
        """
        assert self._queue is not None
        batch = [first]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.flush_interval
        while len(batch) < self.max_batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0:
                # Full window elapsed; take whatever is already queued
                # without waiting further.
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    nxt = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    break
            if nxt is _SHUTDOWN:
                return batch, True
            batch.append(nxt)
        return batch, False

    async def _run_batch(self, batch: List[_Pending]) -> None:
        try:
            outcomes = await self.runner([p.item for p in batch])
            if len(outcomes) != len(batch):
                raise ServeError(
                    f"batch runner returned {len(outcomes)} outcomes "
                    f"for {len(batch)} items"
                )
        except Exception as exc:  # runner blew up: fail the whole batch
            for pending in batch:
                pending.resolve(exc)
            return
        self.batches_executed += 1
        self.items_executed += len(batch)
        for pending, outcome in zip(batch, outcomes):
            pending.resolve(outcome)

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        shutdown = False
        while not shutdown:
            first = await self._queue.get()
            if first is _SHUTDOWN:
                break
            batch, shutdown = await self._collect_batch(first)
            await self._run_batch(batch)
        # Drain whatever was admitted before the sentinel.
        remainder: List[_Pending] = []
        while True:
            try:
                pending = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if pending is not _SHUTDOWN:
                remainder.append(pending)
        for start in range(0, len(remainder), self.max_batch_size):
            await self._run_batch(
                remainder[start:start + self.max_batch_size]
            )

"""Versioned engine snapshots with copy-and-swap updates.

The serving layer never mutates the engine a query might be reading.
Instead, every lake mutation (``add_table`` / ``remove_table``) builds
a *new* :class:`~repro.system.Thetis` over copied lake/mapping
containers off the request path, applies the mutation there, optionally
re-warms it, and atomically swaps it in as the current snapshot.
Queries check out the snapshot that is current when their batch starts
and keep it alive by refcount; a retired snapshot is closed (worker
pools released) only when its last in-flight query finishes.

This gives the server three properties the dynamic-lake API of
``Thetis`` alone cannot: mutations are invisible to in-flight queries,
a failed mutation leaves the serving state untouched, and readers never
block on writers (writers pay the copy).

With the vectorized engine the copy is cheap: each clone seeds from the
generation it replaces (:meth:`Thetis.seed_engines_from`), adopting its
segmented corpus index by reference.  Applying the mutation then
tombstones or appends a single segment, so the swap costs O(delta) in
compiled state — unchanged segments are shared between generations, not
recompiled and not copied.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro.exceptions import ServeError
from repro.system import Thetis


class EngineSnapshot:
    """One immutable serving generation: a Thetis plus a version tag."""

    def __init__(self, thetis: Thetis, version: int):
        self.thetis = thetis
        self.version = version
        self._lock = threading.Lock()
        self._active = 0  # guarded-by: _lock
        self._retired = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    def acquire(self) -> "EngineSnapshot":
        with self._lock:
            if self._retired and self._active == 0:
                # Already closed; the manager never hands these out.
                raise ServeError(
                    f"snapshot v{self.version} is retired and drained"
                )
            self._active += 1
        return self

    def release(self) -> None:
        close = False
        with self._lock:
            self._active -= 1
            close = self._retired and self._active == 0
        if close:
            self.thetis.close()

    def retire(self) -> None:
        """Mark superseded; closes immediately if nothing is in flight."""
        close = False
        with self._lock:
            if self._retired:
                return
            self._retired = True
            close = self._active == 0
        if close:
            self.thetis.close()

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    @property
    def retired(self) -> bool:
        with self._lock:
            return self._retired


class SnapshotManager:
    """Owns the current :class:`EngineSnapshot` and the swap protocol.

    Parameters
    ----------
    thetis:
        The initial engine; the manager takes ownership (it will close
        it when the snapshot is superseded or the manager shuts down).
    warm_method:
        When set, every freshly built snapshot is warmed for this
        method (engine + per-table views) *before* the swap, so the
        first query after an update does not pay cold-start costs.
    on_swap:
        Optional callback ``(new_version) -> None`` fired after each
        swap (the server bumps its swap counter here).
    """

    def __init__(
        self,
        thetis: Thetis,
        warm_method: Optional[str] = None,
        on_swap: Optional[Callable[[int], None]] = None,
    ):
        # One writer at a time; readers never take this lock (the
        # reader paths below carry intentionally-racy pragmas).
        self._swap_lock = threading.Lock()
        self._current = EngineSnapshot(thetis, version=0)  # guarded-by: _swap_lock
        self._warm_method = warm_method
        self._on_swap = on_swap
        self._closed = False  # guarded-by: _swap_lock

    # ------------------------------------------------------------------
    @property
    def current(self) -> EngineSnapshot:
        # Intentionally racy read: readers never serialize on the
        # writer lock; a single attribute load is atomic and the
        # acquire/retry in checkout() handles the swap race.
        return self._current  # lint: disable=guarded-attr-outside-lock

    @property
    def version(self) -> int:
        # Intentionally racy read (see `current`).
        return self._current.version  # lint: disable=guarded-attr-outside-lock

    @contextmanager
    def checkout(self) -> Iterator[EngineSnapshot]:
        """Pin the current snapshot for the duration of a query batch.

        Yields the :class:`EngineSnapshot` so callers can stamp results
        with ``snapshot.version``; the engine is ``snapshot.thetis``.
        """
        while True:
            # Intentionally racy reads: queries must never block on a
            # writer mid-swap.  `_closed` is terminal (a stale False
            # fails at acquire) and `_current` is a single atomic load
            # whose retirement race the except branch retries.
            if self._closed:  # lint: disable=guarded-attr-outside-lock
                raise ServeError("snapshot manager is closed")
            try:
                snapshot = self._current.acquire()  # lint: disable=guarded-attr-outside-lock
                break
            except ServeError:
                # Lost a race with a swap that retired-and-drained the
                # snapshot between our read and the acquire; the fresh
                # current is one retry away.
                continue
        try:
            yield snapshot
        finally:
            snapshot.release()

    # ------------------------------------------------------------------
    # Only called from apply(), which already holds _swap_lock — the
    # flow-sensitive lock pass proves that, so no pragma is needed.
    def _clone_current(self) -> Thetis:
        current = self._current.thetis
        lake, mapping = current.snapshot_inputs()
        # index_dir is deliberately not propagated: on-disk cold-start
        # snapshots concern the first generation only — clones seed
        # from the live generation below, which is strictly fresher.
        replacement = Thetis(
            lake,
            current.graph,
            mapping,
            embeddings=current.embeddings,
            row_aggregation=current.row_aggregation,
            query_aggregation=current.query_aggregation,
            workers=current.workers,
            search_backend=current.search_backend,
            cache_size=current.cache_size,
            engine_kind=current.engine_kind,
        )
        # Hand the clone the warm state: materialized views, the shared
        # similarity cache, and (vectorized) the segmented index itself.
        # Unchanged segments are shared by reference, so the subsequent
        # mutate + warm costs O(delta) instead of a corpus recompile.
        replacement.seed_engines_from(current)
        return replacement

    def apply(self, mutate: Callable[[Thetis], object]) -> object:
        """Run ``mutate`` on a fresh clone, then atomically swap it in.

        The clone/mutate/warm work happens while queries keep flowing
        against the old snapshot; only the reference swap itself is the
        "cut-over", and it is a single attribute store.  If ``mutate``
        raises, the half-built clone is closed and the serving state is
        unchanged.
        """
        with self._swap_lock:
            # Checked under the lock: a concurrent close() must not
            # interleave with the clone/swap and have apply() resurrect
            # a retired snapshot.
            if self._closed:
                raise ServeError("snapshot manager is closed")
            old = self._current
            replacement = self._clone_current()
            try:
                result = mutate(replacement)
                if self._warm_method is not None:
                    replacement.warm(self._warm_method)
            except Exception:
                replacement.close()
                raise
            fresh = EngineSnapshot(replacement, old.version + 1)
            self._current = fresh  # the atomic cut-over
            old.retire()
        if self._on_swap is not None:
            self._on_swap(fresh.version)
        return result

    def close(self) -> None:
        """Retire the current snapshot; drains then closes its engine."""
        with self._swap_lock:
            if self._closed:
                return
            self._closed = True
            self._current.retire()

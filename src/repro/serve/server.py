"""The asyncio HTTP query service wrapping a warm Thetis instance.

Request path::

    connection -> parse -> validate (400) -> admission (503 on full
    queue) -> micro-batch -> engine pass in a worker thread -> JSON
    response (504 past the deadline)

Control plane::

    GET  /healthz      liveness (always 200 while the loop runs)
    GET  /readyz       readiness (200 only after index warm-up)
    GET  /metrics      counters, latency histograms, queue depth,
                       cache hit rates
    POST /search       full ranking (optionally LSH-prefiltered)
    POST /topk         early-terminating top-k search
    POST /explain      per-table score explanation
    POST /tables       add + entity-link a table (snapshot swap)
    DELETE /tables/ID  remove a table (snapshot swap)

Mutations never touch the engine a query might be reading: the
:class:`~repro.serve.snapshot.SnapshotManager` builds the next
generation off the request path and swaps it in atomically; in-flight
batches finish on the generation they started with.

Shutdown is graceful by default: stop accepting connections, drain the
admitted queue, then close the engine (releasing worker pools).
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Set

from repro.core.query import Query
from repro.exceptions import (
    BadRequestError,
    DataLakeError,
    DuplicateTableError,
    ProtocolError,
    ReproError,
    RequestTimeoutError,
    ServeError,
    ServerOverloadedError,
    ThetisClosedError,
)
from repro.serve.batching import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_REQUEST_TIMEOUT,
    MicroBatcher,
)
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    read_request,
    split_path,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    ExplainRequest,
    SearchRequest,
    TableUpsertRequest,
    error_to_json,
    parse_table_id,
    result_to_json,
)
from repro.serve.snapshot import SnapshotManager
from repro.system import Thetis


@dataclass
class ServeConfig:
    """Tuning knobs of one server instance (see ``docs/serving.md``)."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Engine warmed at start-up and after every snapshot swap.
    default_method: str = "types"
    #: Queries coalesced per engine pass.
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    #: Seconds the batcher waits for stragglers after the first query.
    flush_interval: float = DEFAULT_FLUSH_INTERVAL
    #: Admission bound; beyond it requests fast-fail with 503.
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    #: Per-request deadline in seconds (504 past it).
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT
    #: Worker threads executing query batches (1 preserves strict
    #: batch ordering; more overlap batches on multi-core machines).
    batch_workers: int = 1
    #: Build engine + per-table views before flipping /readyz.
    warm_on_start: bool = True
    #: Re-warm a freshly built snapshot before swapping it in.
    warm_on_swap: bool = True
    #: Seconds shutdown waits for open connections before cancelling.
    drain_timeout: float = 10.0
    #: Recall guardrail sampling: every Nth prefilter-mode query is
    #: additionally cross-checked against the exact ranking and its
    #: recall@k recorded into the ``/metrics`` prefilter block
    #: (``0`` disables the guardrail).  Deterministic counter-based
    #: sampling, so a fixed request sequence always checks the same
    #: queries.
    prefilter_guardrail_every: int = 0


@dataclass
class _QueryJob:
    """One admitted query: the parsed request plus materialized query."""

    request: SearchRequest
    query: Query


@dataclass
class _QueryOutcome:
    """A successful batched result with its snapshot generation."""

    results: Any
    snapshot_version: int


class ThetisServer:
    """HTTP/JSON search service over hot-swappable engine snapshots."""

    def __init__(self, thetis: Thetis, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.metrics = ServerMetrics()
        self.snapshots = SnapshotManager(
            thetis,
            warm_method=(self.config.default_method
                         if self.config.warm_on_swap else None),
            on_swap=lambda _version: self.metrics.snapshot_swapped(),
        )
        self.batcher = MicroBatcher(
            runner=self._run_batch,
            max_batch_size=self.config.max_batch_size,
            flush_interval=self.config.flush_interval,
            max_queue_depth=self.config.max_queue_depth,
            request_timeout=self.config.request_timeout,
        )
        self._batch_executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.batch_workers),
            thread_name_prefix="thetis-serve-batch",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set["asyncio.Task[None]"] = set()
        self._busy: Set["asyncio.Task[None]"] = set()
        self._warmup_task: Optional["asyncio.Task[None]"] = None
        self._ready = threading.Event()
        self._started_at = 0.0
        self._shut_down = False
        # Deterministic guardrail sampling across batch workers.
        self._guardrail_lock = threading.Lock()
        self._guardrail_counter = 0  # guarded-by: _guardrail_lock

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral one)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind, start the batcher, and kick off index warm-up."""
        if self._server is not None:
            raise ServeError("server already started")
        self._started_at = time.monotonic()
        await self.batcher.start()
        loop = asyncio.get_running_loop()
        if self.config.warm_on_start:
            self._warmup_task = loop.create_task(
                self._warm_up(), name="thetis-warmup"
            )
        else:
            self._ready.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def _warm_up(self) -> None:
        loop = asyncio.get_running_loop()
        method = self.config.default_method

        def warm() -> None:
            with self.snapshots.checkout() as snapshot:
                snapshot.thetis.warm(method)

        await loop.run_in_executor(None, warm)
        self._ready.set()

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI wraps this with signal handling)."""
        if self._server is None:
            raise ServeError("call start() first")
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful stop: quiesce, drain, release the engine.

        1. stop accepting new connections;
        2. wait (bounded) for open connections to finish their
           request/response cycles — their queued queries still run;
        3. drain the batcher;
        4. close the snapshot manager, which drains and closes the
           engine's worker pools via ``Thetis.close()``.
        """
        if self._shut_down:
            return
        self._shut_down = True
        self._ready.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._warmup_task is not None:
            try:
                await self._warmup_task
            except Exception:
                pass
        # Idle keep-alive connections are parked in read_request with no
        # request in progress — cancel them outright; only connections
        # with a request mid-flight get the drain window.
        for task in list(self._connections - self._busy):
            task.cancel()
        if self._busy:
            _done, pending = await asyncio.wait(
                set(self._busy), timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
        if self._connections:
            await asyncio.wait(
                set(self._connections), timeout=1.0
            )
        await self.batcher.stop(drain=True)
        self._batch_executor.shutdown(wait=True)
        self.snapshots.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while not self._shut_down:
                try:
                    request = await read_request(reader)
                except BadRequestError as exc:
                    response = HttpResponse(
                        exc.status, error_to_json(str(exc), exc.status)
                    )
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                if task is not None:
                    self._busy.add(task)
                try:
                    response = await self._dispatch(request)
                    keep_alive = request.keep_alive and not self._shut_down
                    writer.write(response.encode(keep_alive=keep_alive))
                    await writer.drain()
                finally:
                    if task is not None:
                        self._busy.discard(task)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        segments = split_path(request.path)
        endpoint = "/" + "/".join(segments[:1]) if segments else "/"
        self.metrics.request_started()
        start = time.perf_counter()
        try:
            response = await self._route(request, segments)
        except Exception as exc:  # the handler itself must never leak
            response = HttpResponse(
                500, error_to_json(f"internal error: {exc}", 500)
            )
        elapsed = time.perf_counter() - start
        self.metrics.request_finished(
            endpoint, response.status,
            elapsed if request.method == "POST" or endpoint == "/tables"
            else None,
        )
        return response

    async def _route(self, request: HttpRequest,
                     segments: Sequence[str]) -> HttpResponse:
        if segments == ("healthz",):
            if request.method != "GET":
                return self._method_not_allowed()
            return HttpResponse(200, {
                "status": "ok",
                "uptime_seconds": time.monotonic() - self._started_at,
            })
        if segments == ("readyz",):
            if request.method != "GET":
                return self._method_not_allowed()
            if self.ready:
                return HttpResponse(200, {"status": "ready"})
            return HttpResponse(
                503, error_to_json("index warm-up in progress", 503)
            )
        if segments == ("metrics",):
            if request.method != "GET":
                return self._method_not_allowed()
            return HttpResponse(200, self._metrics_payload())
        if segments == ("search",):
            if request.method != "POST":
                return self._method_not_allowed()
            return await self._handle_query(request, mode="search")
        if segments == ("topk",):
            if request.method != "POST":
                return self._method_not_allowed()
            return await self._handle_query(request, mode="topk")
        if segments == ("explain",):
            if request.method != "POST":
                return self._method_not_allowed()
            return await self._handle_explain(request)
        if segments == ("tables",):
            if request.method != "POST":
                return self._method_not_allowed()
            return await self._handle_add_table(request)
        if len(segments) == 2 and segments[0] == "tables":
            if request.method != "DELETE":
                return self._method_not_allowed()
            return await self._handle_remove_table(segments[1])
        return HttpResponse(
            404, error_to_json(f"no such endpoint: {request.path}", 404)
        )

    @staticmethod
    def _method_not_allowed() -> HttpResponse:
        return HttpResponse(405, error_to_json("method not allowed", 405))

    def _metrics_payload(self) -> dict:
        cache_stats = None
        index_stats = None
        prefilter_stats = None
        batch_stats = None
        try:
            with self.snapshots.checkout() as snapshot:
                cache_stats = snapshot.thetis.cache_stats(
                    self.config.default_method
                )
                stats = snapshot.thetis.index_stats(
                    self.config.default_method
                )
                if stats is not None:
                    index_stats = stats.as_dict()
                prefilter_stats = snapshot.thetis.prefilter_stats.as_dict()
                batch_stats = snapshot.thetis.batch_stats.as_dict()
        except (ServeError, ReproError):
            pass  # mid-shutdown scrape: serve counters without cache view
        return self.metrics.to_json(
            queue_depth=self.batcher.queue_depth,
            queue_limit=self.batcher.max_queue_depth,
            snapshot_version=self.snapshots.version,
            cache_stats=cache_stats,
            index_stats=index_stats,
            prefilter_stats=prefilter_stats,
            uptime_seconds=time.monotonic() - self._started_at,
            batch_stats=batch_stats,
        )

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def _handle_query(self, request: HttpRequest,
                            mode: str) -> HttpResponse:
        try:
            parsed = SearchRequest.from_json(request.json(), mode=mode)
            job = _QueryJob(parsed, parsed.query())
        except ProtocolError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        try:
            outcome = await self.batcher.submit(
                job, timeout=self.config.request_timeout
            )
        except ServerOverloadedError as exc:
            return HttpResponse(503, error_to_json(str(exc), 503))
        except RequestTimeoutError as exc:
            return HttpResponse(504, error_to_json(str(exc), 504))
        except ThetisClosedError as exc:
            return HttpResponse(503, error_to_json(str(exc), 503))
        except ServeError as exc:
            return HttpResponse(503, error_to_json(str(exc), 503))
        except ReproError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        return HttpResponse(
            200,
            result_to_json(
                outcome.results, parsed,
                snapshot_version=outcome.snapshot_version,
            ),
        )

    async def _run_batch(self, jobs: Sequence[_QueryJob]) -> List[Any]:
        loop = asyncio.get_running_loop()
        outcomes = await loop.run_in_executor(
            self._batch_executor, self._run_batch_sync, list(jobs)
        )
        self.metrics.batch_executed(len(jobs))
        return outcomes

    def _guardrail_due(self) -> bool:
        """Whether this prefilter query is a sampled guardrail check."""
        every = self.config.prefilter_guardrail_every
        if every <= 0:
            return False
        with self._guardrail_lock:
            self._guardrail_counter += 1
            return self._guardrail_counter % every == 0

    def _run_batch_sync(self, jobs: List[_QueryJob]) -> List[Any]:
        """Execute one coalesced batch against the pinned snapshot.

        Jobs sharing ``(task, mode, method, k, use_lsh, votes)`` run
        through one ``search_many`` pass — with a vectorized engine
        that is a single fused multi-query kernel pass over the corpus,
        in both exact and prefilter mode; rankings are bit-identical to
        per-request ``Thetis.search`` calls (property-tested).
        Non-entity tasks dispatch to the union/join kernels through the
        same ``search_many`` entry point (their lane-stacked
        ``search_batch``); the task splits the batch key, so entity,
        union, and join jobs never share an engine pass.
        Prefilter-mode jobs generate their LSH shortlists per query
        (with every Nth one, ``prefilter_guardrail_every``,
        cross-checked against the exact ranking), then rescore all
        shortlists in one batched pass.  An exception is confined to
        the jobs of its group.
        """
        outcomes: List[Any] = [None] * len(jobs)
        with self.snapshots.checkout() as snapshot:
            thetis = snapshot.thetis
            groups: dict = {}
            for index, job in enumerate(jobs):
                groups.setdefault(job.request.batch_key(), []).append(index)
            for key, indices in groups.items():
                task, mode, method, k, use_lsh, votes = key
                self.metrics.note_task(task, len(indices))
                try:
                    if task != "entity":
                        results = thetis.search_many(
                            {str(i): jobs[i].query for i in indices},
                            k=k, method=method, task=task,
                        )
                        for index in indices:
                            outcomes[index] = _QueryOutcome(
                                results[str(index)], snapshot.version
                            )
                    elif mode == "topk":
                        for index in indices:
                            outcomes[index] = _QueryOutcome(
                                thetis.search_topk(
                                    jobs[index].query, k=k, method=method
                                ),
                                snapshot.version,
                            )
                    elif mode == "prefilter":
                        for index in indices:
                            if self._guardrail_due():
                                # Runs both rankings and records the
                                # recall sample, but still answers from
                                # the prefiltered one (the guardrail
                                # observes, it does not rewrite).
                                thetis.prefilter_recall(
                                    jobs[index].query, k=k,
                                    method=method, votes=votes,
                                )
                        results = thetis.search_many(
                            {str(i): jobs[i].query for i in indices},
                            k=k, method=method, mode="prefilter",
                            votes=votes,
                        )
                        for index in indices:
                            outcomes[index] = _QueryOutcome(
                                results[str(index)], snapshot.version
                            )
                    else:
                        results = thetis.search_many(
                            {str(i): jobs[i].query for i in indices},
                            k=k, method=method, use_lsh=use_lsh, votes=votes,
                        )
                        for index in indices:
                            outcomes[index] = _QueryOutcome(
                                results[str(index)], snapshot.version
                            )
                except Exception as exc:
                    for index in indices:
                        if outcomes[index] is None:
                            outcomes[index] = exc
        return outcomes

    # ------------------------------------------------------------------
    # Explain
    # ------------------------------------------------------------------
    async def _handle_explain(self, request: HttpRequest) -> HttpResponse:
        try:
            parsed = ExplainRequest.from_json(request.json())
            query = parsed.query()
        except ProtocolError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))

        def run() -> dict:
            with self.snapshots.checkout() as snapshot:
                thetis = snapshot.thetis
                explanation = thetis.explain(
                    query, parsed.table_id, method=parsed.method
                )
                return {
                    "table_id": parsed.table_id,
                    "method": parsed.method,
                    "score": explanation.score,
                    "report": explanation.render(thetis.graph),
                    "snapshot_version": snapshot.version,
                }

        loop = asyncio.get_running_loop()
        try:
            payload = await asyncio.wait_for(
                loop.run_in_executor(None, run),
                self.config.request_timeout,
            )
        except asyncio.TimeoutError:
            return HttpResponse(
                504,
                error_to_json(
                    str(RequestTimeoutError(self.config.request_timeout)),
                    504,
                ),
            )
        except DataLakeError as exc:
            return HttpResponse(404, error_to_json(str(exc), 404))
        except ReproError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        return HttpResponse(200, payload)

    # ------------------------------------------------------------------
    # Mutations (snapshot swaps)
    # ------------------------------------------------------------------
    async def _handle_add_table(self, request: HttpRequest) -> HttpResponse:
        try:
            parsed = TableUpsertRequest.from_json(request.json())
            table = parsed.table()
        except ProtocolError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        loop = asyncio.get_running_loop()
        try:
            links = await loop.run_in_executor(
                None,
                lambda: self.snapshots.apply(
                    lambda thetis: thetis.add_table(table, link=parsed.link)
                ),
            )
        except DuplicateTableError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        except ReproError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        return HttpResponse(200, {
            "table_id": parsed.table_id,
            "links_created": links,
            "snapshot_version": self.snapshots.version,
        })

    async def _handle_remove_table(self, raw_id: str) -> HttpResponse:
        loop = asyncio.get_running_loop()
        try:
            table_id = parse_table_id(raw_id)
            await loop.run_in_executor(
                None,
                lambda: self.snapshots.apply(
                    lambda thetis: thetis.remove_table(table_id)
                ),
            )
        except DataLakeError as exc:
            return HttpResponse(404, error_to_json(str(exc), 404))
        except ReproError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        return HttpResponse(200, {
            "table_id": table_id,
            "removed": True,
            "snapshot_version": self.snapshots.version,
        })


class ServerThread:
    """Run a :class:`ThetisServer` on a dedicated event-loop thread.

    The synchronous harness the tests, the CI smoke script, and the
    latency benchmark all share::

        handle = ServerThread(thetis, ServeConfig(port=0)).start()
        handle.wait_ready()
        ... issue HTTP requests against handle.port ...
        handle.stop()      # graceful: drains, closes the engine
    """

    def __init__(self, thetis: Thetis, config: Optional[ServeConfig] = None):
        self.server = ThetisServer(thetis, config or ServeConfig(port=0))
        self._thread = threading.Thread(
            target=self._run, name="thetis-serve", daemon=True
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._listening = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._listening.set()
            loop.close()
            return
        self._listening.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    # ------------------------------------------------------------------
    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread.start()
        if not self._listening.wait(timeout):
            raise ServeError("server did not start listening in time")
        if self._startup_error is not None:
            raise ServeError(
                f"server failed to start: {self._startup_error}"
            )
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def wait_ready(self, timeout: float = 60.0) -> "ServerThread":
        """Block until warm-up finished (``/readyz`` would return 200)."""
        if not self.server._ready.wait(timeout):
            raise ServeError("server did not become ready in time")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown, then stop and join the loop thread."""
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Closed- and open-loop load generation against a running server.

Two canonical load models:

* **closed loop** — ``concurrency`` workers each issue the next request
  the moment the previous response lands.  Offered load adapts to the
  server (classic think-time-zero benchmark); measures best-case
  throughput and in-service latency.
* **open loop** — requests arrive on a fixed schedule at ``rate``
  requests/second regardless of completions, the model matching real
  user traffic.  Latency is measured from the *scheduled* arrival, so
  queueing delay (and coordinated omission) is captured, and overload
  shows up as 503s rather than silently slowing the generator.

Pure stdlib (``http.client`` + threads) so the generator runs anywhere
the repo does; also usable as a module CLI::

    python -m repro.serve.loadgen --port 8080 --payload-file q.json \\
        --loop closed --concurrency 4 --requests 200 --out BENCH_serve.json

``--mode exact|prefilter`` stamps the wire ``"mode"`` field onto every
payload, so the same query file can drive the exact path, the Section 6
prefilter path, or the cluster front door — the generator itself is
endpoint-agnostic.
"""

from __future__ import annotations

import argparse
import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.metrics import percentile_of

#: Wire search modes the generator can stamp onto payloads (the
#: ``"mode"`` body field of ``POST /search``).
SEARCH_MODES = ("exact", "prefilter")

#: Search tasks the generator can stamp onto payloads (the ``"task"``
#: body field of ``POST /search``).
SEARCH_TASKS = ("entity", "union", "join")


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    mode: str
    duration_seconds: float
    sent: int = 0
    ok: int = 0
    rejected: int = 0        # 503s: admission control doing its job
    timeouts: int = 0        # 504s
    errors: int = 0          # everything else non-2xx or transport
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed-OK requests per second."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.ok / self.duration_seconds

    def percentile_ms(self, p: float) -> float:
        return percentile_of(self.latencies, p) * 1000.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "duration_seconds": self.duration_seconds,
            "sent": self.sent,
            "ok": self.ok,
            "rejected_503": self.rejected,
            "timeouts_504": self.timeouts,
            "errors": self.errors,
            "throughput_rps": self.throughput,
            "latency_ms": {
                "p50": self.percentile_ms(0.50),
                "p95": self.percentile_ms(0.95),
                "p99": self.percentile_ms(0.99),
                "mean": (
                    sum(self.latencies) / len(self.latencies) * 1000.0
                    if self.latencies else 0.0
                ),
                "max": (max(self.latencies) * 1000.0
                        if self.latencies else 0.0),
            },
        }

    def format_report(self) -> str:
        lines = [
            f"  mode        {self.mode}",
            f"  duration    {self.duration_seconds:8.2f} s",
            f"  sent        {self.sent}",
            f"  ok          {self.ok}",
            f"  rejected    {self.rejected}  (503)",
            f"  timeouts    {self.timeouts}  (504)",
            f"  errors      {self.errors}",
            f"  throughput  {self.throughput:8.1f} req/s",
            f"  p50         {self.percentile_ms(0.50):8.1f} ms",
            f"  p95         {self.percentile_ms(0.95):8.1f} ms",
            f"  p99         {self.percentile_ms(0.99):8.1f} ms",
        ]
        return "\n".join(lines)


class LoadGenerator:
    """Issue ``POST path`` requests with rotating payloads."""

    def __init__(
        self,
        host: str,
        port: int,
        payloads: Sequence[Dict[str, Any]],
        path: str = "/search",
        timeout: float = 30.0,
        search_mode: Optional[str] = None,
        task: Optional[str] = None,
    ):
        if not payloads:
            raise ValueError("need at least one payload")
        if search_mode is not None and search_mode not in SEARCH_MODES:
            raise ValueError(
                f"search_mode must be one of {SEARCH_MODES}, "
                f"got {search_mode!r}"
            )
        if task is not None and task not in SEARCH_TASKS:
            raise ValueError(
                f"task must be one of {SEARCH_TASKS}, got {task!r}"
            )
        self.host = host
        self.port = port
        self.path = path
        if search_mode is not None:
            payloads = [dict(p, mode=search_mode) for p in payloads]
        if task is not None:
            payloads = [dict(p, task=task) for p in payloads]
        self.payloads = [json.dumps(p).encode("utf-8") for p in payloads]
        self.timeout = timeout
        self.search_mode = search_mode
        self.task = task

    # ------------------------------------------------------------------
    def _one_request(self, connection: http.client.HTTPConnection,
                     body: bytes) -> int:
        """Send one request; returns the HTTP status (0 = transport error)."""
        try:
            connection.request(
                "POST", self.path, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()  # drain for keep-alive reuse
            return response.status
        except (http.client.HTTPException, OSError):
            connection.close()
            return 0

    def _record(self, report: LoadReport, lock: threading.Lock,
                status: int, latency: float) -> None:
        with lock:
            report.sent += 1
            if status == 200:
                report.ok += 1
                report.latencies.append(latency)
            elif status == 503:
                report.rejected += 1
            elif status == 504:
                report.timeouts += 1
            else:
                report.errors += 1

    # ------------------------------------------------------------------
    def run_closed(self, concurrency: int = 4,
                   total_requests: int = 100) -> LoadReport:
        """Closed loop: ``concurrency`` workers, ``total_requests`` total."""
        report = LoadReport(mode="closed", duration_seconds=0.0)
        lock = threading.Lock()
        counter = {"next": 0}

        def worker() -> None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                while True:
                    with lock:
                        index = counter["next"]
                        if index >= total_requests:
                            return
                        counter["next"] += 1
                    body = self.payloads[index % len(self.payloads)]
                    start = time.perf_counter()
                    status = self._one_request(connection, body)
                    latency = time.perf_counter() - start
                    self._record(report, lock, status, latency)
            finally:
                connection.close()

        threads = [
            threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
            for i in range(max(1, concurrency))
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.duration_seconds = time.perf_counter() - started
        return report

    def run_open(self, rate: float, duration: float,
                 max_workers: int = 32) -> LoadReport:
        """Open loop: fixed arrival schedule at ``rate`` req/s.

        Latency is measured from each request's *scheduled* send time,
        so server-side queueing (and generator lateness) counts against
        the percentile — the anti-coordinated-omission convention.
        """
        if rate <= 0:
            raise ValueError("rate must be > 0")
        report = LoadReport(mode="open", duration_seconds=0.0)
        lock = threading.Lock()
        interval = 1.0 / rate
        total = max(1, int(rate * duration))
        epoch = time.perf_counter()
        schedule = [epoch + i * interval for i in range(total)]
        cursor = {"next": 0}

        def worker() -> None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                while True:
                    with lock:
                        index = cursor["next"]
                        if index >= total:
                            return
                        cursor["next"] += 1
                    scheduled = schedule[index]
                    delay = scheduled - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    body = self.payloads[index % len(self.payloads)]
                    status = self._one_request(connection, body)
                    latency = time.perf_counter() - scheduled
                    self._record(report, lock, status, latency)
            finally:
                connection.close()

        workers = min(max_workers, max(2, int(rate * 2)))
        threads = [
            threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.duration_seconds = time.perf_counter() - epoch
        return report


# ----------------------------------------------------------------------
# Module CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Load-generate against a running Thetis server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--path", default="/search")
    parser.add_argument("--payload-file", required=True,
                        help="JSON file: one request object or a list")
    parser.add_argument("--loop", choices=["closed", "open"],
                        default="closed",
                        help="load model: closed or open loop")
    parser.add_argument("--task", choices=list(SEARCH_TASKS), default=None,
                        help="stamp this search task onto every payload "
                             "(entity, union, or join engine dispatch)")
    parser.add_argument("--mode", choices=list(SEARCH_MODES), default=None,
                        help="stamp this search mode onto every payload "
                             "(exact or prefilter)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="workers (closed loop)")
    parser.add_argument("--requests", type=int, default=100,
                        help="total requests (closed loop)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="arrivals/second (open loop)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds (open loop)")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--out", default=None,
                        help="write the report as JSON to this path")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with open(args.payload_file, encoding="utf-8") as handle:
        loaded = json.load(handle)
    payloads = loaded if isinstance(loaded, list) else [loaded]
    generator = LoadGenerator(
        args.host, args.port, payloads, path=args.path,
        timeout=args.timeout, search_mode=args.mode, task=args.task,
    )
    if args.loop == "closed":
        report = generator.run_closed(
            concurrency=args.concurrency, total_requests=args.requests
        )
    else:
        report = generator.run_open(rate=args.rate, duration=args.duration)
    print(report.format_report())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
        print(f"  report -> {args.out}")
    return 0 if report.ok > 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Serving metrics: request counters, latency histogram, gauges.

The server exposes these at ``GET /metrics`` as JSON.  Everything is
guarded by one lock — metric updates are a handful of integer adds per
request, far off the scoring hot path — and snapshots are taken
atomically so a scrape never observes a half-updated histogram.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

#: Histogram bucket upper bounds in seconds (Prometheus-style ``le``
#: semantics, +Inf implicit).  Spans sub-millisecond cache hits to
#: multi-second cold scans.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram with percentile estimation."""

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be sorted, unique, non-empty")
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(buckets) + 1)  # +Inf; guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def observe(self, seconds: float) -> None:
        index = bisect_left(self.buckets, seconds)
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-quantile (0 < p <= 1) in seconds.

        Linear interpolation inside the containing bucket; the +Inf
        bucket reports its lower bound (the histogram cannot see
        beyond its last edge).
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        target = p * total
        cumulative = 0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= target:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                if index >= len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                upper = self.buckets[index]
                fraction = (target - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
        return self.buckets[-1]

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_seconds = self._sum
        return {
            "count": total,
            "sum_seconds": total_seconds,
            "mean_seconds": (total_seconds / total) if total else 0.0,
            "buckets": [
                {"le": le, "count": count}
                for le, count in zip(
                    list(self.buckets) + ["+Inf"], counts
                )
            ],
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "p99_seconds": self.percentile(0.99),
        }


class ServerMetrics:
    """All counters/gauges of one :class:`~repro.serve.server.ThetisServer`.

    ``requests_total`` is keyed by ``(endpoint, status)``;
    ``latency`` holds one histogram per query endpoint.  Batching
    effectiveness shows up as ``batched_queries_total /
    batches_total`` (mean coalesced batch size).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, int], int] = {}  # guarded-by: _lock
        self._in_flight = 0  # guarded-by: _lock
        self.rejected_total = 0  # guarded-by: _lock
        self.timeout_total = 0  # guarded-by: _lock
        self.batches_total = 0  # guarded-by: _lock
        self.batched_queries_total = 0  # guarded-by: _lock
        self._batch_occupancy: Dict[int, int] = {}  # guarded-by: _lock
        self.snapshot_swaps_total = 0  # guarded-by: _lock
        self._latency: Dict[str, LatencyHistogram] = {}  # guarded-by: _lock
        # Per-task query tallies of the /search dispatch: task name
        # ("entity" | "union" | "join") -> queries routed to it.
        self._tasks: Dict[str, int] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    def request_started(self) -> None:
        with self._lock:
            self._in_flight += 1

    def request_finished(self, endpoint: str, status: int,
                         seconds: Optional[float] = None) -> None:
        with self._lock:
            self._in_flight -= 1
            key = (endpoint, status)
            self._requests[key] = self._requests.get(key, 0) + 1
            # Overload/timeout tallies track the query path only; a 503
            # from /readyz during warm-up is not an admission rejection.
            if endpoint in ("/search", "/topk"):
                if status == 503:
                    self.rejected_total += 1
                elif status == 504:
                    self.timeout_total += 1
        if seconds is not None:
            self.latency(endpoint).observe(seconds)

    def latency(self, endpoint: str) -> LatencyHistogram:
        with self._lock:
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = LatencyHistogram()
                self._latency[endpoint] = histogram
            return histogram

    def batch_executed(self, size: int) -> None:
        with self._lock:
            self.batches_total += 1
            self.batched_queries_total += size
            size = max(0, int(size))
            self._batch_occupancy[size] = (
                self._batch_occupancy.get(size, 0) + 1
            )

    def note_task(self, task: str, queries: int) -> None:
        """Tally ``queries`` dispatched to ``task``'s engine."""
        with self._lock:
            self._tasks[task] = self._tasks.get(task, 0) + int(queries)

    def task_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._tasks.items()))

    def snapshot_swapped(self) -> None:
        with self._lock:
            self.snapshot_swaps_total += 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def requests_by_status(self) -> Dict[str, int]:
        """``"endpoint:status" -> count`` (stable keys for JSON)."""
        with self._lock:
            return {
                f"{endpoint}:{status}": count
                for (endpoint, status), count in sorted(self._requests.items())
            }

    def total_requests(self) -> int:
        with self._lock:
            return sum(self._requests.values())

    # ------------------------------------------------------------------
    def to_json(
        self,
        queue_depth: int = 0,
        queue_limit: int = 0,
        snapshot_version: int = 0,
        cache_stats: Optional[Dict[str, Any]] = None,
        index_stats: Optional[Dict[str, Any]] = None,
        prefilter_stats: Optional[Dict[str, Any]] = None,
        uptime_seconds: float = 0.0,
        cluster_stats: Optional[Dict[str, Any]] = None,
        batch_stats: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The ``GET /metrics`` document."""
        # One consistent snapshot of every counter; the histogram
        # snapshots happen outside the lock (each takes its own).
        with self._lock:
            batches = self.batches_total
            batched = self.batched_queries_total
            occupancy = dict(sorted(self._batch_occupancy.items()))
            rejected = self.rejected_total
            timeouts = self.timeout_total
            swaps = self.snapshot_swaps_total
            in_flight = self._in_flight
            requests = {
                f"{endpoint}:{status}": count
                for (endpoint, status), count in sorted(
                    self._requests.items()
                )
            }
            histograms = sorted(self._latency.items())
            tasks = dict(sorted(self._tasks.items()))
        payload: Dict[str, Any] = {
            "uptime_seconds": uptime_seconds,
            "requests_total": sum(requests.values()),
            "requests": requests,
            "in_flight": in_flight,
            "rejected_total": rejected,
            "timeout_total": timeouts,
            "queue_depth": queue_depth,
            "queue_limit": queue_limit,
            "batches_total": batches,
            "batched_queries_total": batched,
            "mean_batch_size": (batched / batches) if batches else 0.0,
            "snapshot_version": snapshot_version,
            "snapshot_swaps_total": swaps,
            "latency": {
                endpoint: histogram.snapshot()
                for endpoint, histogram in histograms
            },
        }
        if tasks:
            # Per-task dispatch tallies of the /search batch runner:
            # how many queries each workload (entity/union/join)
            # received since start-up.
            payload["tasks"] = tasks
        if cache_stats is not None:
            payload["cache"] = {
                name: {
                    "size": stats.size,
                    "maxsize": stats.maxsize,
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "evictions": stats.evictions,
                    "hit_rate": stats.hit_rate,
                }
                for name, stats in cache_stats.items()
            }
        if index_stats is not None:
            # Segment/tombstone/compaction gauges of the vectorized
            # engine's segmented corpus index (absent on scalar engines
            # and before the first query builds the index).
            payload["index"] = dict(index_stats)
        if prefilter_stats is not None:
            # Candidate-generation counters of the prefilter serve
            # path: reduction, shortlist sizes, early-termination
            # rate, and sampled recall-guardrail observations (see
            # repro.core.kernel.prefilter.PrefilterStats).
            payload["prefilter"] = dict(prefilter_stats)
        if cluster_stats is not None:
            # Scatter-gather counters of the cluster coordinator:
            # routing epoch, fleet size/liveness, shard failures,
            # hedged retries, and degraded responses (see
            # repro.cluster.coordinator.ClusterMetrics).
            payload["cluster"] = dict(cluster_stats)
        if batch_stats is not None:
            # Multi-query batched scoring counters: the micro-batch
            # occupancy histogram (batch size -> batches observed) plus
            # the engine-side batched-vs-looped kernel dispatch tallies
            # (see repro.core.kernel.batchstats.BatchStats).
            payload["batch"] = {
                "occupancy": {
                    str(size): count for size, count in occupancy.items()
                },
                **dict(batch_stats),
            }
        return payload


def percentile_of(latencies: List[float], p: float) -> float:
    """Exact percentile of raw samples (nearest-rank, for the loadgen)."""
    if not latencies:
        return 0.0
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    ordered = sorted(latencies)
    rank = math.ceil(p * len(ordered)) - 1
    return ordered[min(max(rank, 0), len(ordered) - 1)]

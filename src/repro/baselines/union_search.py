"""Union-search baselines in the spirit of SANTOS and Starmie.

Table-union search ranks candidates by *structural* similarity: how many
of the query's columns find a semantically matching column in the
candidate, normalized by schema width.  Following SANTOS, columns can be
encoded by their dominant semantic types; following Starmie, by dense
column embeddings.  Both favor tables that union with the query —
which, as Section 7.2 shows, is nearly orthogonal to topical relevance
for entity-tuple queries, yielding near-zero NDCG on this task.  The
re-implementations keep that ranking principle.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from repro.core.assignment import max_assignment
from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.datalake.lake import DataLake
from repro.embeddings.store import EmbeddingStore
from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph
from repro.linking.mapping import EntityMapping
from repro.similarity.types import jaccard


def _query_columns(query: Query) -> List[List[str]]:
    """View the query as a small table: one column per tuple position."""
    width = query.max_width()
    columns: List[List[str]] = [[] for _ in range(width)]
    for entity_tuple in query:
        for position, uri in enumerate(entity_tuple):
            columns[position].append(uri)
    return columns


def dominant_types(
    graph: KnowledgeGraph, uris: Sequence[str]
) -> FrozenSet[str]:
    """SANTOS-like column concept: the dominant types of the column.

    Types carried by at least half the column's linked entities are
    kept, approximating SANTOS's majority-vote column annotation.
    Shared with the vectorized engine (:mod:`repro.core.kernel.union`)
    so both paths encode identical column concepts.
    """
    if not uris:
        return frozenset()
    counts: Counter = Counter()
    for uri in uris:
        entity = graph.find(uri)
        if entity is not None:
            counts.update(entity.types)
    threshold = len(uris) / 2.0
    return frozenset(t for t, c in counts.items() if c >= threshold)


class UnionTableSearch:
    """Structural union-search ranking over a semantic data lake.

    Parameters
    ----------
    lake, mapping:
        Corpus and entity links.
    graph:
        Required for the ``types`` encoder.
    store:
        Required for the ``embeddings`` encoder.
    column_encoder:
        ``"types"`` (SANTOS-like semantic column types) or
        ``"embeddings"`` (Starmie-like dense column encodings).
    """

    def __init__(
        self,
        lake: DataLake,
        mapping: EntityMapping,
        graph: Optional[KnowledgeGraph] = None,
        store: Optional[EmbeddingStore] = None,
        column_encoder: str = "types",
    ):
        if column_encoder not in ("types", "embeddings"):
            raise ConfigurationError(
                f"unknown column encoder: {column_encoder!r}"
            )
        if column_encoder == "types" and graph is None:
            raise ConfigurationError("types encoder requires a graph")
        if column_encoder == "embeddings" and store is None:
            raise ConfigurationError("embeddings encoder requires a store")
        self.lake = lake
        self.mapping = mapping
        self.graph = graph
        self.store = store
        self.column_encoder = column_encoder
        # Pre-encode every table column.
        self._type_columns: Dict[str, List[FrozenSet[str]]] = {}
        self._vector_columns: Dict[str, List[Optional[np.ndarray]]] = {}
        for table in lake:
            uris_by_column: List[List[str]] = [
                mapping.entities_in_column(table.table_id, column)
                for column in range(table.num_columns)
            ]
            if column_encoder == "types":
                self._type_columns[table.table_id] = [
                    self._types_of_column(uris) for uris in uris_by_column
                ]
            else:
                self._vector_columns[table.table_id] = [
                    store.mean_vector(uris) if uris else None
                    for uris in uris_by_column
                ]

    # ------------------------------------------------------------------
    def _types_of_column(self, uris: Sequence[str]) -> FrozenSet[str]:
        """Dominant semantic types of a column (see :func:`dominant_types`)."""
        return dominant_types(self.graph, uris)

    def _column_similarity_matrix(
        self, query: Query, table_id: str
    ) -> List[List[float]]:
        query_columns = _query_columns(query)
        if self.column_encoder == "types":
            encoded_query = [self._types_of_column(col) for col in query_columns]
            encoded_table = self._type_columns[table_id]
            return [
                [jaccard(qc, tc) if qc and tc else 0.0 for tc in encoded_table]
                for qc in encoded_query
            ]
        encoded_query_vecs = [
            self.store.mean_vector(col) for col in query_columns
        ]
        encoded_table_vecs = self._vector_columns[table_id]
        matrix: List[List[float]] = []
        for qv in encoded_query_vecs:
            row: List[float] = []
            for tv in encoded_table_vecs:
                if qv is None or tv is None:
                    row.append(0.0)
                    continue
                denom = float(np.linalg.norm(qv) * np.linalg.norm(tv))
                row.append(max(0.0, float(qv @ tv) / denom) if denom else 0.0)
            matrix.append(row)
        return matrix

    def unionability(self, query: Query, table_id: str) -> float:
        """Structural unionability score in [0, 1].

        Matched-column strength under an optimal one-to-one column
        alignment, normalized by the *wider* schema — the structural
        normalization that makes union search rank narrow topical
        matches poorly.
        """
        table = self.lake.get(table_id)
        matrix = self._column_similarity_matrix(query, table_id)
        if not matrix or not matrix[0]:
            return 0.0
        _, total = max_assignment(matrix)
        width = max(len(matrix), table.num_columns)
        return total / width if width else 0.0

    # ------------------------------------------------------------------
    # SANTOS-style relationship matching
    # ------------------------------------------------------------------
    def _column_pair_relationships(self, uris_a, uris_b) -> FrozenSet[str]:
        """Predicates connecting entities of two columns (either way).

        This is SANTOS's *relationship semantics*: a (Player, Team)
        column pair is annotated ``playsFor``, a (Team, City) pair
        ``basedIn``.  Requires the ``types`` encoder's graph.
        """
        if self.graph is None:
            return frozenset()
        targets = set(uris_b)
        found = set()
        for uri in set(uris_a):
            if uri not in self.graph:
                continue
            for predicate, obj in self.graph.out_edges(uri):
                if obj in targets:
                    found.add(predicate)
            for predicate, subj in self.graph.in_edges(uri):
                if subj in targets:
                    found.add(f"^{predicate}")
        return frozenset(found)

    def relationship_unionability(self, query: Query, table_id: str) -> float:
        """Fraction of query column-pair relationships found in the table.

        SANTOS ranks union candidates by how many of the query table's
        binary relationships the candidate preserves; tables sharing
        columns but not relationships score 0 here.
        """
        if self.graph is None:
            return 0.0
        query_columns = _query_columns(query)
        query_rels = []
        for i in range(len(query_columns)):
            for j in range(i + 1, len(query_columns)):
                rels = self._column_pair_relationships(
                    query_columns[i], query_columns[j]
                )
                if rels:
                    query_rels.append(rels)
        if not query_rels:
            return 0.0
        table = self.lake.get(table_id)
        column_uris = [
            self.mapping.entities_in_column(table.table_id, column)
            for column in range(table.num_columns)
        ]
        matched = 0
        for wanted in query_rels:
            hit = False
            for i in range(len(column_uris)):
                for j in range(len(column_uris)):
                    if i == j:
                        continue
                    if wanted & self._column_pair_relationships(
                        column_uris[i], column_uris[j]
                    ):
                        hit = True
                        break
                if hit:
                    break
            if hit:
                matched += 1
        return matched / len(query_rels)

    def search(self, query: Query, k: Optional[int] = None) -> ResultSet:
        """Rank all tables by unionability with the query table."""
        scored = []
        for table in self.lake:
            score = self.unionability(query, table.table_id)
            if score > 0.0:
                scored.append(ScoredTable(score, table.table_id))
        results = ResultSet(scored)
        if k is not None:
            results = results.top(k)
        return results

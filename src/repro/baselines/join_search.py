"""Joinability search in the spirit of D3L / JOSIE / LSH Ensemble.

Join discovery ranks candidate tables by the *syntactic* overlap between
a query column's value set and any candidate column's value set — no
notion of topical relevance is involved.  This re-implementation keeps
that ranking principle (max per-column containment/Jaccard over string
value sets) and, like the original systems, returns nothing for queries
whose values never co-occur with a table's values; Section 7.2 reports
essentially zero NDCG for this family on semantic table search.

The cell canonicalization lives in :func:`normalize_cell` and is shared
with the vectorized engine (:mod:`repro.core.kernel.join`) so both paths
intern identical value sets.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.datalake.lake import DataLake
from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph

JOIN_MODES = ("containment", "jaccard")


def normalize_cell(value: object, fold_numeric: bool = False) -> Optional[str]:
    """Canonical string form of a cell value, or ``None`` for blanks.

    With ``fold_numeric`` numeric strings are folded onto one
    representative (``"1"``, ``"1.0"`` and ``1`` all intern to ``"1"``),
    so joins across differently formatted numeric columns line up.  The
    flag is opt-in: the default keeps the historical byte-level behavior
    where ``"1.0"`` and ``"1"`` are distinct values.
    """
    if value is None:
        return None
    text = str(value).strip().lower()
    if not text:
        return None
    if fold_numeric:
        try:
            number = float(text)
        except ValueError:
            return text
        if not math.isfinite(number):
            return text
        if number == int(number):
            return str(int(number))
        return repr(number)
    return text


def query_value_sets(
    query: Query,
    graph: KnowledgeGraph,
    fold_numeric: bool = False,
) -> List[FrozenSet[str]]:
    """One value set per query column, using entity labels as values."""
    width = query.max_width()
    columns: List[Set[str]] = [set() for _ in range(width)]
    for entity_tuple in query:
        for position, uri in enumerate(entity_tuple):
            entity = graph.find(uri)
            label = normalize_cell(
                entity.label if entity else uri, fold_numeric
            )
            if label is not None:
                columns[position].add(label)
    return [frozenset(c) for c in columns]


class JoinTableSearch:
    """Value-overlap joinability ranking.

    Columns are represented as normalized string value sets; the score
    of a table is the best overlap of any query column with any table
    column — containment (the JOSIE/D3L joinability signal) by default,
    or set Jaccard with ``mode="jaccard"``.

    The postings index over the lake is built lazily on the first
    search and reused across queries; :attr:`index_builds` counts how
    many times it was (re)built.
    """

    def __init__(
        self,
        lake: DataLake,
        mode: str = "containment",
        fold_numeric: bool = False,
    ):
        if mode not in JOIN_MODES:
            raise ConfigurationError(f"unknown join mode: {mode!r}")
        self.lake = lake
        self.mode = mode
        self.fold_numeric = fold_numeric
        # Column value sets plus a posting list value -> (table, column),
        # built on first use (eval harnesses construct this class even
        # when they end up scoring only a handful of queries).
        self._columns: Optional[Dict[Tuple[str, int], FrozenSet[str]]] = None
        self._postings: Optional[Dict[str, Set[Tuple[str, int]]]] = None
        self.index_builds = 0

    # ------------------------------------------------------------------
    def _build_index(self) -> None:
        columns: Dict[Tuple[str, int], FrozenSet[str]] = {}
        postings: Dict[str, Set[Tuple[str, int]]] = defaultdict(set)
        for table in self.lake:
            for column in range(table.num_columns):
                values = frozenset(
                    v
                    for v in (
                        normalize_cell(cell, self.fold_numeric)
                        for cell in table.column(column)
                    )
                    if v is not None
                )
                if not values:
                    continue
                key = (table.table_id, column)
                columns[key] = values
                for value in values:
                    postings[value].add(key)
        self._columns = columns
        self._postings = postings
        self.index_builds += 1

    def _index(self) -> Tuple[
        Dict[Tuple[str, int], FrozenSet[str]],
        Dict[str, Set[Tuple[str, int]]],
    ]:
        if self._columns is None or self._postings is None:
            self._build_index()
        return self._columns, self._postings

    def invalidate(self) -> None:
        """Drop the postings index; the next search rebuilds it."""
        self._columns = None
        self._postings = None

    def query_value_sets(
        self, query: Query, graph: KnowledgeGraph
    ) -> List[FrozenSet[str]]:
        """One value set per query column, using entity labels as values."""
        return query_value_sets(query, graph, self.fold_numeric)

    def joinability(
        self, query_column: FrozenSet[str], table_column: FrozenSet[str]
    ) -> float:
        """Overlap of the query column with the table column."""
        if not query_column or not table_column:
            return 0.0
        intersection = len(query_column & table_column)
        if self.mode == "jaccard":
            union = len(query_column) + len(table_column) - intersection
            return intersection / union
        return intersection / len(query_column)

    def search(
        self, query: Query, graph: KnowledgeGraph, k: Optional[int] = None
    ) -> ResultSet:
        """Rank tables by their best query-column overlap."""
        query_columns = [c for c in self.query_value_sets(query, graph) if c]
        if not query_columns:
            return ResultSet([])
        table_columns, postings = self._index()
        # Candidate generation through the value postings.
        candidates: Set[Tuple[str, int]] = set()
        for query_column in query_columns:
            for value in query_column:
                candidates.update(postings.get(value, ()))
        best: Dict[str, float] = defaultdict(float)
        for key in candidates:
            table_column = table_columns[key]
            for query_column in query_columns:
                score = self.joinability(query_column, table_column)
                if score > best[key[0]]:
                    best[key[0]] = score
        results = ResultSet(
            ScoredTable(score, table_id)
            for table_id, score in best.items()
            if score > 0.0
        )
        if k is not None:
            results = results.top(k)
        return results

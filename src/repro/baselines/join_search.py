"""Joinability search in the spirit of D3L / JOSIE / LSH Ensemble.

Join discovery ranks candidate tables by the *syntactic* overlap between
a query column's value set and any candidate column's value set — no
notion of topical relevance is involved.  This re-implementation keeps
that ranking principle (max per-column containment/Jaccard over string
value sets) and, like the original systems, returns nothing for queries
whose values never co-occur with a table's values; Section 7.2 reports
essentially zero NDCG for this family on semantic table search.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.datalake.lake import DataLake
from repro.kg.graph import KnowledgeGraph


def _normalize(value: object) -> Optional[str]:
    if value is None:
        return None
    text = str(value).strip().lower()
    return text or None


class JoinTableSearch:
    """Value-overlap joinability ranking.

    Columns are represented as normalized string value sets; the score
    of a table is the best containment of any query column inside any
    table column (the JOSIE/D3L joinability signal).
    """

    def __init__(self, lake: DataLake):
        self.lake = lake
        # Column value sets plus a posting list value -> (table, column).
        self._columns: Dict[Tuple[str, int], FrozenSet[str]] = {}
        self._postings: Dict[str, Set[Tuple[str, int]]] = defaultdict(set)
        for table in lake:
            for column in range(table.num_columns):
                values = frozenset(
                    v
                    for v in (_normalize(cell) for cell in table.column(column))
                    if v is not None
                )
                if not values:
                    continue
                key = (table.table_id, column)
                self._columns[key] = values
                for value in values:
                    self._postings[value].add(key)

    def query_value_sets(self, query: Query, graph: KnowledgeGraph) -> List[FrozenSet[str]]:
        """One value set per query column, using entity labels as values."""
        width = query.max_width()
        columns: List[Set[str]] = [set() for _ in range(width)]
        for entity_tuple in query:
            for position, uri in enumerate(entity_tuple):
                entity = graph.find(uri)
                label = _normalize(entity.label if entity else uri)
                if label is not None:
                    columns[position].add(label)
        return [frozenset(c) for c in columns]

    def joinability(self, query_column: FrozenSet[str], table_column: FrozenSet[str]) -> float:
        """Containment of the query column in the table column."""
        if not query_column or not table_column:
            return 0.0
        return len(query_column & table_column) / len(query_column)

    def search(
        self, query: Query, graph: KnowledgeGraph, k: Optional[int] = None
    ) -> ResultSet:
        """Rank tables by their best query-column containment."""
        query_columns = [c for c in self.query_value_sets(query, graph) if c]
        if not query_columns:
            return ResultSet([])
        # Candidate generation through the value postings.
        candidates: Set[Tuple[str, int]] = set()
        for query_column in query_columns:
            for value in query_column:
                candidates.update(self._postings.get(value, ()))
        best: Dict[str, float] = defaultdict(float)
        for key in candidates:
            table_column = self._columns[key]
            for query_column in query_columns:
                score = self.joinability(query_column, table_column)
                if score > best[key[0]]:
                    best[key[0]] = score
        results = ResultSet(
            ScoredTable(score, table_id)
            for table_id, score in best.items()
            if score > 0.0
        )
        if k is not None:
            results = results.top(k)
        return results

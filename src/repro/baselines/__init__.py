"""Comparison systems: BM25, TURL-like, union search, join search."""

from repro.baselines.bm25 import BM25TableSearch, text_query_from_labels
from repro.baselines.join_search import (
    JOIN_MODES,
    JoinTableSearch,
    normalize_cell,
    query_value_sets,
)
from repro.baselines.metadata_search import MetadataKeywordSearch
from repro.baselines.turl_like import TurlLikeTableSearch
from repro.baselines.union_search import UnionTableSearch, dominant_types

__all__ = [
    "BM25TableSearch",
    "text_query_from_labels",
    "TurlLikeTableSearch",
    "UnionTableSearch",
    "JoinTableSearch",
    "JOIN_MODES",
    "MetadataKeywordSearch",
    "dominant_types",
    "normalize_cell",
    "query_value_sets",
]

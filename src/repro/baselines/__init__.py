"""Comparison systems: BM25, TURL-like, union search, join search."""

from repro.baselines.bm25 import BM25TableSearch, text_query_from_labels
from repro.baselines.join_search import JoinTableSearch
from repro.baselines.metadata_search import MetadataKeywordSearch
from repro.baselines.turl_like import TurlLikeTableSearch
from repro.baselines.union_search import UnionTableSearch

__all__ = [
    "BM25TableSearch",
    "text_query_from_labels",
    "TurlLikeTableSearch",
    "UnionTableSearch",
    "JoinTableSearch",
    "MetadataKeywordSearch",
]

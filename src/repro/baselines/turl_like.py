"""TURL-style dense table-representation search (Section 7.1 adaptation).

The paper adapts TURL to table search by aggregating all contextualized
vectors of a table into one table embedding, doing the same for the
query, and ranking by cosine similarity.  We keep that exact
aggregate-and-rank path but source the vectors from the KG entity
embeddings (the encoder substitution is documented in DESIGN.md): a
table's representation is the mean embedding of its linked entities,
the query's the mean of its entities.

The paper's finding — that whole-table representations wash out small
entity-tuple queries — is a property of the mean-pooled representation
itself, so it carries over to this substitution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.datalake.lake import DataLake
from repro.embeddings.store import EmbeddingStore
from repro.linking.mapping import EntityMapping


class TurlLikeTableSearch:
    """Mean-pooled table embeddings ranked by cosine similarity."""

    def __init__(
        self,
        lake: DataLake,
        mapping: EntityMapping,
        store: EmbeddingStore,
    ):
        self.store = store
        self._table_ids = []
        vectors = []
        for table in lake:
            uris = mapping.entities_in_table(table.table_id)
            mean = store.mean_vector(sorted(uris)) if uris else None
            if mean is None:
                continue  # tables with no representation cannot be ranked
            self._table_ids.append(table.table_id)
            vectors.append(mean)
        if vectors:
            matrix = np.vstack(vectors)
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            norms[norms == 0.0] = 1.0
            self._unit_matrix = matrix / norms
        else:
            self._unit_matrix = np.zeros((0, store.dimensions))

    @property
    def num_represented_tables(self) -> int:
        """Number of tables that received a dense representation."""
        return len(self._table_ids)

    def query_vector(self, query: Query) -> Optional[np.ndarray]:
        """Mean embedding of the query's entities (None when unknown)."""
        return self.store.mean_vector(sorted(query.entities()))

    def search(self, query: Query, k: Optional[int] = None) -> ResultSet:
        """Rank represented tables by cosine to the query embedding."""
        query_vec = self.query_vector(query)
        if query_vec is None or not len(self._table_ids):
            return ResultSet([])
        norm = np.linalg.norm(query_vec)
        if norm == 0.0:
            return ResultSet([])
        sims = self._unit_matrix @ (query_vec / norm)
        # Rank by raw cosine: negative similarity is still an ordering
        # signal for this baseline, exactly as the paper adapts TURL.
        results = ResultSet(
            ScoredTable(float(sim), table_id)
            for table_id, sim in zip(self._table_ids, sims)
        )
        if k is not None:
            results = results.top(k)
        return results

"""Metadata-only keyword search (Google Dataset Search style).

Dataset portals such as Google Dataset Search and Auctus match queries
against captions, file names, and metadata annotations only
(Section 3.1) — "relying on high-quality descriptive metadata
represents a restrictive assumption".  This baseline indexes *only*
table metadata, making that restriction measurable: tables with poor
or missing metadata are simply unfindable.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.bm25 import BM25TableSearch
from repro.core.query import Query
from repro.core.result import ResultSet
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.kg.graph import KnowledgeGraph


class _MetadataView(Table):
    """A table whose text view exposes only its metadata."""

    def text_values(self):
        return [str(v) for v in self.metadata.values() if v is not None]


class MetadataKeywordSearch:
    """BM25 over table metadata values only.

    Parameters
    ----------
    lake:
        Tables whose ``metadata`` dictionaries are indexed.
    fields:
        Optional restriction to specific metadata keys (e.g. only
        ``caption``); by default every metadata value is indexed.
    """

    def __init__(self, lake: DataLake, fields: Optional[Sequence[str]] = None):
        views = DataLake()
        for table in lake:
            metadata = table.metadata
            if fields is not None:
                metadata = {
                    key: metadata[key] for key in fields if key in metadata
                }
            views.add(
                _MetadataView(
                    table.table_id, table.attributes, [], metadata=metadata
                )
            )
        self._bm25 = BM25TableSearch(views)

    @property
    def num_documents(self) -> int:
        """Number of indexed tables (including metadata-less ones)."""
        return self._bm25.num_documents

    def search(self, keywords: Sequence[str], k: Optional[int] = None) -> ResultSet:
        """Rank tables by BM25 over their metadata text."""
        return self._bm25.search(keywords, k)

    def search_query(
        self, query: Query, graph: KnowledgeGraph, k: Optional[int] = None
    ) -> ResultSet:
        """Entity-tuple query -> text query -> metadata ranking."""
        return self._bm25.search_query(query, graph, k)

"""Okapi BM25 keyword search over tables, from scratch (Section 7.1).

Tables are treated as bags of tokens drawn from their cell values and
metadata.  Queries are keyword lists; the paper converts entity-tuple
queries into *text queries* by extracting the full text of each query
cell, which :func:`text_query_from_labels` mirrors.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.datalake.lake import DataLake
from repro.kg.graph import KnowledgeGraph
from repro.linking.inverted_index import tokenize


def text_query_from_labels(query: Query, graph: KnowledgeGraph) -> List[str]:
    """Convert an entity-tuple query to keywords via entity labels.

    Mirrors Section 7.1: "we extract the entire text contents in each
    cell in a query and let those be keywords".  Entities missing from
    the KG contribute their URI tail as a best-effort keyword.
    """
    keywords: List[str] = []
    for entity_tuple in query:
        for uri in entity_tuple:
            entity = graph.find(uri)
            if entity is not None and entity.label:
                keywords.extend(tokenize(entity.label))
            else:
                keywords.extend(tokenize(uri.rsplit(":", 1)[-1]))
    return keywords


class BM25TableSearch:
    """BM25 ranking of data-lake tables for keyword queries.

    Parameters
    ----------
    lake:
        Tables to index (cell text + metadata values).
    k1, b:
        Standard Okapi parameters (defaults 1.2 / 0.75).
    """

    def __init__(self, lake: DataLake, k1: float = 1.2, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self._postings: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._doc_length: Dict[str, int] = {}
        for table in lake:
            tokens: List[str] = []
            for text in table.text_values():
                tokens.extend(tokenize(text))
            counts = Counter(tokens)
            for token, count in counts.items():
                self._postings[token][table.table_id] = count
            self._doc_length[table.table_id] = len(tokens)
        self._num_docs = len(self._doc_length)
        total_length = sum(self._doc_length.values())
        self._avg_length = total_length / self._num_docs if self._num_docs else 0.0

    @property
    def num_documents(self) -> int:
        """Number of indexed tables."""
        return self._num_docs

    def _idf(self, token: str) -> float:
        df = len(self._postings.get(token, ()))
        # The +1 inside the log keeps idf positive for very common terms.
        return math.log(1.0 + (self._num_docs - df + 0.5) / (df + 0.5))

    def score(self, keywords: Sequence[str], table_id: str) -> float:
        """BM25 score of one table for ``keywords``."""
        length = self._doc_length.get(table_id)
        if length is None:
            return 0.0
        score = 0.0
        for token in keywords:
            tf = self._postings.get(token, {}).get(table_id, 0)
            if tf == 0:
                continue
            idf = self._idf(token)
            denom = tf + self.k1 * (
                1.0 - self.b + self.b * length / self._avg_length
            )
            score += idf * tf * (self.k1 + 1.0) / denom
        return score

    def search(
        self,
        keywords: Sequence[str],
        k: Optional[int] = None,
        candidates: Optional[Iterable[str]] = None,
    ) -> ResultSet:
        """Rank tables containing at least one query keyword."""
        accumulator: Dict[str, float] = defaultdict(float)
        allowed = set(candidates) if candidates is not None else None
        for token in set(keywords):
            posting = self._postings.get(token)
            if not posting:
                continue
            idf = self._idf(token)
            repeat = keywords.count(token)
            for table_id, tf in posting.items():
                if allowed is not None and table_id not in allowed:
                    continue
                length = self._doc_length[table_id]
                denom = tf + self.k1 * (
                    1.0 - self.b + self.b * length / self._avg_length
                )
                accumulator[table_id] += (
                    repeat * idf * tf * (self.k1 + 1.0) / denom
                )
        results = ResultSet(
            ScoredTable(score, table_id) for table_id, score in accumulator.items()
        )
        if k is not None:
            results = results.top(k)
        return results

    def search_query(
        self,
        query: Query,
        graph: KnowledgeGraph,
        k: Optional[int] = None,
    ) -> ResultSet:
        """Convenience wrapper: entity-tuple query -> text query -> rank."""
        return self.search(text_query_from_labels(query, graph), k)

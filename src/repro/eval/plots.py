"""Terminal box plots for figure-style benchmark output.

Figures 4 and 5 of the paper are box plots over per-query metric
distributions.  The benchmark harness runs in a terminal, so this
module renders the same information as unicode box-and-whisker rows:

    STST    |------[=====|=====]-------|        0.00..1.00

with whiskers at min/max, the box at the quartiles, and the bar at the
median.  Pure string manipulation — no plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.metrics import summarize


def _position(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    fraction = (value - lo) / (hi - lo)
    return min(width - 1, max(0, int(round(fraction * (width - 1)))))


def box_plot_row(
    values: Sequence[float],
    width: int = 40,
    lo: float = 0.0,
    hi: float = 1.0,
) -> str:
    """Render one distribution as a fixed-width box-plot string."""
    if not values:
        return " " * width
    stats = summarize(values)
    minimum, maximum = min(values), max(values)
    cells = [" "] * width
    p_min = _position(minimum, lo, hi, width)
    p_max = _position(maximum, lo, hi, width)
    p_q1 = _position(stats["q1"], lo, hi, width)
    p_q3 = _position(stats["q3"], lo, hi, width)
    p_med = _position(stats["median"], lo, hi, width)
    for i in range(p_min, p_max + 1):
        cells[i] = "-"
    for i in range(p_q1, p_q3 + 1):
        cells[i] = "="
    cells[p_min] = "|"
    cells[p_max] = "|"
    cells[p_q1] = "["
    cells[p_q3] = "]"
    cells[p_med] = "#"
    return "".join(cells)


def box_plot_figure(
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 40,
    lo: float = 0.0,
    hi: float = 1.0,
) -> str:
    """Render a labeled multi-series box-plot figure as text.

    ``series`` maps a system label to its per-query metric values; the
    output is one plot row per system plus an axis line, suitable for
    direct printing from a benchmark.
    """
    label_width = max((len(name) for name in series), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name, values in series.items():
        stats = summarize(values)
        lines.append(
            f"  {name:<{label_width}} "
            f"{box_plot_row(values, width, lo, hi)} "
            f"med={stats['median']:.3f} mean={stats['mean']:.3f}"
        )
    axis = f"{lo:g}" + " " * (width - len(f"{lo:g}") - len(f"{hi:g}")) + f"{hi:g}"
    lines.append(f"  {'':<{label_width}} {axis}")
    return "\n".join(lines)

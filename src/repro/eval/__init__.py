"""Evaluation: metrics, graded ground truth, experiment runner."""

from repro.eval.ground_truth import (
    GroundTruth,
    build_ground_truth,
    entity_jaccard_gains,
    ground_truth_for_benchmark,
)
from repro.eval.metrics import (
    dcg,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    summarize,
)
from repro.eval.plots import box_plot_figure, box_plot_row
from repro.eval.report import report_to_markdown, write_markdown_report
from repro.eval.significance import (
    ComparisonResult,
    bootstrap_ci,
    compare_systems,
    permutation_test,
)
from repro.eval.runner import (
    ExperimentRunner,
    QueryOutcome,
    SearchSystem,
    SystemReport,
)

__all__ = [
    "GroundTruth",
    "build_ground_truth",
    "entity_jaccard_gains",
    "ground_truth_for_benchmark",
    "dcg",
    "ndcg_at_k",
    "recall_at_k",
    "precision_at_k",
    "summarize",
    "ExperimentRunner",
    "SystemReport",
    "QueryOutcome",
    "SearchSystem",
    "compare_systems",
    "permutation_test",
    "bootstrap_ci",
    "ComparisonResult",
    "box_plot_row",
    "box_plot_figure",
    "report_to_markdown",
    "write_markdown_report",
]

"""Experiment runner: evaluate named retrieval systems over a query set.

Each system is a callable ``(query, k) -> ResultSet``; the runner times
every call, computes NDCG/recall/precision against per-query ground
truth, and produces per-system summaries — the machinery behind every
figure and table of Section 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.query import Query
from repro.core.result import ResultSet
from repro.eval.ground_truth import GroundTruth
from repro.eval.metrics import ndcg_at_k, precision_at_k, recall_at_k, summarize

SearchSystem = Callable[[Query, int], ResultSet]


@dataclass(frozen=True)
class QueryOutcome:
    """Metrics for one system on one query."""

    system: str
    query_id: str
    k: int
    ndcg: float
    recall: float
    precision: float
    seconds: float
    result_size: int


@dataclass
class SystemReport:
    """Aggregate metrics for one system across a query set."""

    system: str
    k: int
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def ndcg_summary(self) -> Dict[str, float]:
        """Mean/median/quartiles of NDCG@k."""
        return summarize([o.ndcg for o in self.outcomes])

    def recall_summary(self) -> Dict[str, float]:
        """Mean/median/quartiles of recall@k."""
        return summarize([o.recall for o in self.outcomes])

    def mean_seconds(self) -> float:
        """Mean per-query wall time in seconds."""
        if not self.outcomes:
            return 0.0
        return sum(o.seconds for o in self.outcomes) / len(self.outcomes)

    def format_row(self) -> str:
        """Render one report line for benchmark output."""
        ndcg = self.ndcg_summary()
        recall = self.recall_summary()
        return (
            f"{self.system:<28} k={self.k:<4} "
            f"NDCG mean={ndcg['mean']:.3f} med={ndcg['median']:.3f}  "
            f"recall mean={recall['mean']:.3f}  "
            f"time={self.mean_seconds():.3f}s"
        )


class ExperimentRunner:
    """Runs systems against queries and aggregates metrics.

    Parameters
    ----------
    queries:
        ``query_id -> Query``.
    ground_truth:
        ``query_id -> GroundTruth`` with graded gains.
    """

    def __init__(
        self,
        queries: Mapping[str, Query],
        ground_truth: Mapping[str, GroundTruth],
    ):
        self.queries = dict(queries)
        self.ground_truth = dict(ground_truth)

    def run_system(
        self,
        name: str,
        system: SearchSystem,
        k: int,
        query_ids: Optional[Sequence[str]] = None,
    ) -> SystemReport:
        """Evaluate one system at cut-off ``k`` over (a subset of) queries."""
        report = SystemReport(system=name, k=k)
        ids = list(query_ids) if query_ids is not None else list(self.queries)
        for query_id in ids:
            query = self.queries[query_id]
            truth = self.ground_truth.get(query_id, GroundTruth())
            start = time.perf_counter()
            results = system(query, k)
            elapsed = time.perf_counter() - start
            ranked = results.table_ids(k)
            report.outcomes.append(
                QueryOutcome(
                    system=name,
                    query_id=query_id,
                    k=k,
                    ndcg=ndcg_at_k(ranked, truth.gains, k),
                    recall=recall_at_k(ranked, truth.gains, k),
                    precision=precision_at_k(ranked, truth.gains, k),
                    seconds=elapsed,
                    result_size=len(ranked),
                )
            )
        return report

    def run_all(
        self,
        systems: Mapping[str, SearchSystem],
        k: int,
        query_ids: Optional[Sequence[str]] = None,
    ) -> Dict[str, SystemReport]:
        """Evaluate every named system at cut-off ``k``."""
        return {
            name: self.run_system(name, system, k, query_ids)
            for name, system in systems.items()
        }

"""Retrieval quality metrics: NDCG, recall, precision (Section 7.1).

NDCG@k uses graded gains with the standard ``gain / log2(rank + 1)``
discount; the ideal ranking orders ground-truth gains descending.
Recall@k follows the paper's definition: the fraction of the top-k
*ground-truth* relevant tables that appear anywhere in the retrieved
top-k.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence


def dcg(gains: Sequence[float]) -> float:
    """Discounted cumulative gain of a gain sequence in rank order."""
    return sum(
        gain / math.log2(rank + 2) for rank, gain in enumerate(gains) if gain > 0.0
    )


def ndcg_at_k(
    ranked_ids: Sequence[str],
    gains: Mapping[str, float],
    k: int,
) -> float:
    """NDCG@k of ``ranked_ids`` under graded ``gains``.

    Returns 0.0 when the ground truth has no positive gain at all (an
    unanswerable query contributes nothing, as in trec-style tooling).
    """
    if k <= 0:
        return 0.0
    achieved = dcg([gains.get(table_id, 0.0) for table_id in ranked_ids[:k]])
    ideal_gains = sorted((g for g in gains.values() if g > 0.0), reverse=True)[:k]
    ideal = dcg(ideal_gains)
    if ideal == 0.0:
        return 0.0
    return achieved / ideal


def recall_at_k(
    ranked_ids: Sequence[str],
    gains: Mapping[str, float],
    k: int,
) -> float:
    """Paper-style recall@k.

    The ground-truth top-k is the k highest-gain tables (ties broken by
    id for determinism); recall is the fraction of those found in the
    retrieved top-k.
    """
    if k <= 0:
        return 0.0
    relevant = sorted(
        (table_id for table_id, gain in gains.items() if gain > 0.0),
        key=lambda tid: (-gains[tid], tid),
    )[:k]
    if not relevant:
        return 0.0
    retrieved = set(ranked_ids[:k])
    hits = sum(1 for table_id in relevant if table_id in retrieved)
    return hits / len(relevant)


def precision_at_k(
    ranked_ids: Sequence[str],
    gains: Mapping[str, float],
    k: int,
) -> float:
    """Fraction of the retrieved top-k that has positive gain."""
    if k <= 0 or not ranked_ids:
        return 0.0
    retrieved = ranked_ids[:k]
    hits = sum(1 for table_id in retrieved if gains.get(table_id, 0.0) > 0.0)
    return hits / len(retrieved)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / quartile summary used in benchmark reports."""
    if not values:
        return {"mean": 0.0, "median": 0.0, "q1": 0.0, "q3": 0.0, "n": 0}
    ordered = sorted(values)
    n = len(ordered)

    def percentile(p: float) -> float:
        if n == 1:
            return ordered[0]
        position = p * (n - 1)
        low = int(position)
        high = min(low + 1, n - 1)
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    return {
        "mean": sum(ordered) / n,
        "median": percentile(0.5),
        "q1": percentile(0.25),
        "q3": percentile(0.75),
        "n": float(n),
    }

"""Markdown report generation for experiment results.

Benchmarks print to the terminal; long-lived results deserve an
artifact.  :func:`write_markdown_report` turns a set of
:class:`~repro.eval.runner.SystemReport` objects (plus optional
significance comparisons) into a single self-describing Markdown file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.eval.plots import box_plot_row
from repro.eval.runner import SystemReport
from repro.eval.significance import ComparisonResult

PathLike = Union[str, Path]


def report_to_markdown(
    title: str,
    reports: Mapping[str, SystemReport],
    comparisons: Optional[Mapping[str, ComparisonResult]] = None,
    notes: Sequence[str] = (),
) -> str:
    """Render reports as a Markdown document (returned as a string)."""
    lines = [f"# {title}", ""]
    if notes:
        for note in notes:
            lines.append(f"> {note}")
        lines.append("")
    lines.append("## Systems")
    lines.append("")
    lines.append(
        "| System | k | NDCG mean | NDCG median | recall mean | "
        "mean s/query | queries |"
    )
    lines.append("|---|---|---|---|---|---|---|")
    for name, report in reports.items():
        ndcg = report.ndcg_summary()
        recall = report.recall_summary()
        lines.append(
            f"| {name} | {report.k} | {ndcg['mean']:.3f} | "
            f"{ndcg['median']:.3f} | {recall['mean']:.3f} | "
            f"{report.mean_seconds():.3f} | {len(report.outcomes)} |"
        )
    lines.append("")
    lines.append("## NDCG distributions")
    lines.append("")
    lines.append("```")
    width = max((len(name) for name in reports), default=0)
    for name, report in reports.items():
        values = [o.ndcg for o in report.outcomes]
        lines.append(f"{name:<{width}} {box_plot_row(values, width=40)}")
    lines.append("```")
    if comparisons:
        lines.append("")
        lines.append("## Paired comparisons")
        lines.append("")
        lines.append(
            "| Comparison | mean diff | p-value | 95% CI | significant |"
        )
        lines.append("|---|---|---|---|---|")
        for label, result in comparisons.items():
            lines.append(
                f"| {label} | {result.mean_difference:+.4f} | "
                f"{result.p_value:.4f} | "
                f"[{result.ci_low:+.4f}, {result.ci_high:+.4f}] | "
                f"{'yes' if result.significant else 'no'} |"
            )
    lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    path: PathLike,
    title: str,
    reports: Mapping[str, SystemReport],
    comparisons: Optional[Mapping[str, ComparisonResult]] = None,
    notes: Sequence[str] = (),
) -> Path:
    """Write the Markdown report to ``path``; returns the path."""
    target = Path(path)
    target.write_text(
        report_to_markdown(title, reports, comparisons, notes),
        encoding="utf-8",
    )
    return target

"""Statistical significance of system comparisons.

Benchmarks over 10-50 queries invite noise-chasing; these tools answer
"is system A actually better than system B on this query set?" with a
paired randomization (permutation) test and a paired bootstrap
confidence interval — the standard IR methodology for exactly the kind
of per-query metric lists the experiment runner produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a paired system comparison."""

    mean_difference: float      # mean(A - B)
    p_value: float              # two-sided permutation p-value
    ci_low: float               # bootstrap 95% CI of the mean difference
    ci_high: float

    @property
    def significant(self) -> bool:
        """Whether the difference is significant at alpha = 0.05."""
        return self.p_value < 0.05

    def format_row(self, label: str = "") -> str:
        """One report line for benchmark output."""
        marker = "*" if self.significant else " "
        return (
            f"{label:<24} diff={self.mean_difference:+.4f}{marker}  "
            f"p={self.p_value:.4f}  "
            f"95% CI [{self.ci_low:+.4f}, {self.ci_high:+.4f}]"
        )


def _paired(a: Sequence[float], b: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    if len(a) != len(b):
        raise ConfigurationError(
            f"paired comparison needs equal lengths, got {len(a)} vs {len(b)}"
        )
    if not a:
        raise ConfigurationError("paired comparison needs at least one value")
    return np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)


def permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    iterations: int = 10_000,
    seed: int = 0,
) -> float:
    """Two-sided paired randomization test p-value.

    Under the null hypothesis the per-query assignment of scores to
    systems is exchangeable, so each difference's sign is flipped with
    probability 1/2; the p-value is the fraction of sign-flip samples
    whose absolute mean difference reaches the observed one.
    """
    arr_a, arr_b = _paired(a, b)
    differences = arr_a - arr_b
    observed = abs(differences.mean())
    if observed == 0.0:
        return 1.0
    rng = np.random.default_rng(seed)
    signs = rng.choice([-1.0, 1.0], size=(iterations, differences.size))
    samples = np.abs((signs * differences).mean(axis=1))
    # +1 smoothing keeps the estimate valid (Phipson & Smyth).
    return float((np.sum(samples >= observed - 1e-12) + 1) / (iterations + 1))


def bootstrap_ci(
    a: Sequence[float],
    b: Sequence[float],
    iterations: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI for the paired mean difference."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError("confidence must be in (0, 1)")
    arr_a, arr_b = _paired(a, b)
    differences = arr_a - arr_b
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, differences.size,
                           size=(iterations, differences.size))
    means = differences[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def compare_systems(
    a: Sequence[float],
    b: Sequence[float],
    iterations: int = 10_000,
    seed: int = 0,
) -> ComparisonResult:
    """Full paired comparison: mean difference, p-value, bootstrap CI."""
    arr_a, arr_b = _paired(a, b)
    low, high = bootstrap_ci(a, b, iterations=iterations, seed=seed)
    return ComparisonResult(
        mean_difference=float((arr_a - arr_b).mean()),
        p_value=permutation_test(a, b, iterations=iterations, seed=seed),
        ci_low=low,
        ci_high=high,
    )

"""Graded ground-truth relevance for benchmark queries.

The paper evaluates against the SIGIR'24 semantic table search corpus
[40], whose relevance labels derive from Wikipedia categories and
navigational links plus entity overlap.  Our synthetic benchmark knows
each table's true topic (the generator stamps ``category`` and
``domain`` metadata), so the equivalent graded ground truth combines:

* topical grade — 3 for the query's exact category, 1 for the same
  domain, 0 otherwise;
* entity grade — the Jaccard similarity between the table's linked
  entity set and the query's entity set (the signal the paper's recall
  definition ranks by), scaled to [0, 2].

Gains are the sum, giving a 0..5 graded scale suitable for NDCG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set

from repro.core.query import Query
from repro.datalake.lake import DataLake
from repro.linking.mapping import EntityMapping
from repro.similarity.types import jaccard


@dataclass(frozen=True)
class GroundTruth:
    """Per-query graded gains over table ids."""

    gains: Dict[str, float] = field(default_factory=dict)

    def gain(self, table_id: str) -> float:
        """Graded gain of one table (0.0 when irrelevant/unknown)."""
        return self.gains.get(table_id, 0.0)

    def relevant_ids(self) -> Set[str]:
        """Tables with positive gain."""
        return {tid for tid, gain in self.gains.items() if gain > 0.0}

    def __len__(self) -> int:
        return len(self.gains)


def entity_jaccard_gains(
    lake: DataLake, mapping: EntityMapping, query: Query
) -> Dict[str, float]:
    """Entity-overlap gains: Jaccard(table entities, query entities)."""
    query_entities = frozenset(query.entities())
    gains: Dict[str, float] = {}
    for table in lake:
        table_entities = mapping.entities_in_table(table.table_id)
        score = jaccard(query_entities, table_entities)
        if score > 0.0:
            gains[table.table_id] = score
    return gains


def build_ground_truth(
    lake: DataLake,
    mapping: EntityMapping,
    query: Query,
    query_category: Optional[str] = None,
    query_domain: Optional[str] = None,
    category_weight: float = 3.0,
    domain_weight: float = 1.0,
    entity_weight: float = 2.0,
) -> GroundTruth:
    """Combine topical and entity-overlap grades into one ground truth.

    Tables whose metadata carries the query's category get the full
    topical grade; same-domain tables a smaller one; entity overlap adds
    a continuous component so exact-match tables rank above merely
    topical ones — mirroring the structure of the Wikipedia-category
    benchmark the paper uses.
    """
    entity_gains = entity_jaccard_gains(lake, mapping, query)
    gains: Dict[str, float] = {}
    for table in lake:
        gain = entity_weight * entity_gains.get(table.table_id, 0.0)
        if query_category is not None or query_domain is not None:
            category = table.metadata.get("category")
            domain = table.metadata.get("domain")
            if query_category is not None and category == query_category:
                gain += category_weight
            elif query_domain is not None and domain == query_domain:
                gain += domain_weight
        if gain > 0.0:
            gains[table.table_id] = gain
    return GroundTruth(gains)


def ground_truth_for_benchmark(
    lake: DataLake,
    mapping: EntityMapping,
    queries: Mapping[str, Query],
    categories: Mapping[str, str],
    domains: Mapping[str, str],
) -> Dict[str, GroundTruth]:
    """Ground truth for a whole query set keyed by query id."""
    return {
        query_id: build_ground_truth(
            lake,
            mapping,
            query,
            query_category=categories.get(query_id),
            query_domain=domains.get(query_id),
        )
        for query_id, query in queries.items()
    }

"""Entity similarity functions sigma and informativeness weights I."""

from repro.similarity.base import (
    EntitySimilarity,
    ExactMatchSimilarity,
    WeightedCombination,
)
from repro.similarity.embedding import EmbeddingCosineSimilarity
from repro.similarity.predicates import (
    PredicateJaccardSimilarity,
    predicate_signature,
)
from repro.similarity.informativeness import (
    Informativeness,
    UniformInformativeness,
    informativeness_or_uniform,
)
from repro.similarity.types import (
    DEFAULT_CAP,
    DepthWeightedTypeSimilarity,
    MappingTypeSimilarity,
    TypeJaccardSimilarity,
    jaccard,
)

__all__ = [
    "EntitySimilarity",
    "ExactMatchSimilarity",
    "WeightedCombination",
    "TypeJaccardSimilarity",
    "MappingTypeSimilarity",
    "DepthWeightedTypeSimilarity",
    "EmbeddingCosineSimilarity",
    "PredicateJaccardSimilarity",
    "predicate_signature",
    "Informativeness",
    "UniformInformativeness",
    "informativeness_or_uniform",
    "jaccard",
    "DEFAULT_CAP",
]

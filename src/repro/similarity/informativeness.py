"""Entity informativeness weights ``I(e)`` of Section 5.2.

Query entities play different roles: in ``(Mitch Stetter, Milwaukee
Brewers)`` the player is more discriminative than the team, because the
team appears in many more tables.  ``I: N -> [0, 1]`` therefore weights
each query entity by an IDF-style function of its table frequency in the
corpus, and the SemRel distance (Equation 2) scales each coordinate by
this weight.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.linking.mapping import EntityMapping


class Informativeness:
    """IDF-style weights from entity table frequencies.

    ``I(e) = log(1 + N / df(e)) / log(1 + N)`` where ``N`` is the number
    of tables in the corpus and ``df(e)`` the number of tables mentioning
    ``e``.  The normalization keeps weights in ``(0, 1]``: an entity
    found in a single table gets weight 1, one found everywhere
    approaches ``log(2)/log(1+N)``.  Entities never seen in the corpus
    default to weight 1 — an unseen query entity is maximally
    discriminative.
    """

    def __init__(self, table_frequencies: Mapping[str, int], num_tables: int):
        self.num_tables = max(1, int(num_tables))
        self._weights: Dict[str, float] = {}
        log_norm = math.log(1.0 + self.num_tables)
        for uri, frequency in table_frequencies.items():
            df = max(1, min(int(frequency), self.num_tables))
            self._weights[uri] = math.log(1.0 + self.num_tables / df) / log_norm

    @classmethod
    def from_mapping(cls, mapping: EntityMapping, num_tables: int) -> "Informativeness":
        """Build weights from an entity mapping over a corpus of tables."""
        frequencies = {
            uri: mapping.table_frequency(uri) for uri in mapping.all_entities()
        }
        return cls(frequencies, num_tables)

    def weight(self, uri: str) -> float:
        """Return ``I(uri)`` (1.0 for unseen entities)."""
        return self._weights.get(uri, 1.0)

    def __call__(self, uri: str) -> float:
        return self.weight(uri)

    def __contains__(self, uri: str) -> bool:
        return uri in self._weights

    def __len__(self) -> int:
        return len(self._weights)


class UniformInformativeness:
    """The unweighted special case: every entity weighs 1.

    Plugging this in turns Equation 2 into the plain Euclidean distance,
    which is the ablation baseline for the weighting scheme.
    """

    def weight(self, uri: str) -> float:
        return 1.0

    def __call__(self, uri: str) -> float:
        return 1.0


def informativeness_or_uniform(
    mapping: Optional[EntityMapping], num_tables: int
):
    """Return corpus-driven weights when a mapping exists, else uniform."""
    if mapping is None:
        return UniformInformativeness()
    return Informativeness.from_mapping(mapping, num_tables)

"""The entity semantic-similarity abstraction ``sigma`` of Section 4.1.

Thetis is parametric in the entity similarity: any function
``sigma: N x N -> [0, 1]`` with ``sigma(e, e) = 1`` plugs into the
search framework.  The paper instantiates two — adjusted Jaccard over
type sets and cosine over RDF2Vec embeddings — and this module defines
the shared interface plus small combinators.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.exceptions import ConfigurationError


class EntitySimilarity(ABC):
    """Pairwise entity similarity in ``[0, 1]``, identity-maximal."""

    @abstractmethod
    def similarity(self, a: str, b: str) -> float:
        """Return ``sigma(a, b)`` in ``[0, 1]``.

        Implementations must return 1.0 when ``a == b`` and must treat
        entities they know nothing about as dissimilar (score 0 to any
        *other* entity) rather than raising, because real data lakes
        always mention entities outside the KG.
        """

    def __call__(self, a: str, b: str) -> float:
        return self.similarity(a, b)

    @property
    def name(self) -> str:
        """Short identifier used in benchmark reports."""
        return type(self).__name__

    @property
    def is_symmetric(self) -> bool:
        """Whether ``sigma(a, b) == sigma(b, a)`` for all pairs.

        Symmetric similarities let the engine's
        :class:`~repro.core.cache.SimilarityCache` canonicalize the
        memo key to the unordered pair, halving the evaluations.  The
        base class conservatively answers ``False``; every built-in
        similarity overrides it, and custom subclasses should too when
        the property holds.
        """
        return False


class ExactMatchSimilarity(EntitySimilarity):
    """Degenerate similarity: 1 on identity, 0 otherwise.

    This reduces semantic search to exact entity matching and serves as
    a control in tests and ablations.
    """

    def similarity(self, a: str, b: str) -> float:
        return 1.0 if a == b else 0.0

    @property
    def name(self) -> str:
        return "exact"

    @property
    def is_symmetric(self) -> bool:
        return True


class WeightedCombination(EntitySimilarity):
    """Convex combination of several similarities.

    The paper's future work proposes combining type and embedding
    signals; this combinator makes the experiment a one-liner.
    """

    def __init__(self, parts: Sequence[EntitySimilarity], weights: Sequence[float]):
        if len(parts) != len(weights) or not parts:
            raise ConfigurationError("parts and weights must be equal, non-empty")
        if any(w < 0 for w in weights):
            raise ConfigurationError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ConfigurationError("weights must not sum to zero")
        self.parts = list(parts)
        self.weights = [w / total for w in weights]

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        return sum(
            weight * part.similarity(a, b)
            for part, weight in zip(self.parts, self.weights)
        )

    @property
    def name(self) -> str:
        inner = "+".join(part.name for part in self.parts)
        return f"combo({inner})"

    @property
    def is_symmetric(self) -> bool:
        """Symmetric exactly when every combined part is."""
        return all(part.is_symmetric for part in self.parts)

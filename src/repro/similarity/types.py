"""Type-based entity similarity: the adjusted Jaccard of Equation 4.

Two entities are similar when they share entity types.  Because rich
KGs annotate entities at several granularities, plain Jaccard over the
type sets works directly; the paper's *adjustment* caps the score of any
non-identical pair at 0.95 so an exact entity match always wins, and
pins the self-similarity at exactly 1.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from repro.kg.graph import KnowledgeGraph
from repro.similarity.base import EntitySimilarity

#: Cap applied to non-identical pairs (Equation 4).
DEFAULT_CAP = 0.95


def jaccard(a: FrozenSet[str], b: FrozenSet[str]) -> float:
    """Plain Jaccard similarity of two sets (0 when both are empty)."""
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


class TypeJaccardSimilarity(EntitySimilarity):
    """Adjusted Jaccard over entity type sets (Equation 4).

    Parameters
    ----------
    graph:
        Source of the type annotations.
    cap:
        Maximum score for non-identical entities (paper: 0.95).
    type_filter:
        Optional set of type names to *exclude* from comparison — the
        LSH layer filters types occurring in more than half the corpus
        (Section 6.1); passing the same filter here keeps the exact and
        approximate scores consistent.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        cap: float = DEFAULT_CAP,
        type_filter: Optional[FrozenSet[str]] = None,
    ):
        self.graph = graph
        self.cap = cap
        self.type_filter = frozenset(type_filter) if type_filter else frozenset()
        self._types: Dict[str, FrozenSet[str]] = {}
        for entity in graph.entities():
            effective = entity.types - self.type_filter
            self._types[entity.uri] = frozenset(effective)

    def types_of(self, uri: str) -> FrozenSet[str]:
        """Return the (filtered) type set used for comparison."""
        return self._types.get(uri, frozenset())

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        types_a = self._types.get(a)
        types_b = self._types.get(b)
        if not types_a or not types_b:
            return 0.0
        return min(self.cap, jaccard(types_a, types_b))

    @property
    def name(self) -> str:
        return "types"

    @property
    def is_symmetric(self) -> bool:
        return True


class DepthWeightedTypeSimilarity(EntitySimilarity):
    """Weighted Jaccard over type sets, specific types weighing more.

    Plain Jaccard treats ``Thing`` and ``BaseballPlayer`` as equally
    informative evidence of relatedness.  This variant (one of the
    "alternative similarity metrics" the paper's conclusion proposes)
    weights each shared type by its taxonomy depth + 1, so agreeing on
    a leaf type counts far more than agreeing on a root:

        sigma(a, b) = sum_{t in Ta ∩ Tb} w(t) / sum_{t in Ta ∪ Tb} w(t)

    with ``w(t) = depth(t) + 1`` (unknown types weigh 1).
    """

    def __init__(self, graph: KnowledgeGraph, cap: float = DEFAULT_CAP):
        self.graph = graph
        self.cap = cap
        self._types: Dict[str, FrozenSet[str]] = {
            entity.uri: entity.types for entity in graph.entities()
        }
        self._weights: Dict[str, float] = {}
        for name in graph.all_type_names():
            if name in graph.taxonomy:
                self._weights[name] = float(graph.taxonomy.depth(name) + 1)
            else:
                self._weights[name] = 1.0

    def _weight(self, type_name: str) -> float:
        return self._weights.get(type_name, 1.0)

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        types_a = self._types.get(a)
        types_b = self._types.get(b)
        if not types_a or not types_b:
            return 0.0
        shared = sum(self._weight(t) for t in types_a & types_b)
        if shared == 0.0:
            return 0.0
        union = sum(self._weight(t) for t in types_a | types_b)
        return min(self.cap, shared / union)

    @property
    def name(self) -> str:
        return "types-depth"

    @property
    def is_symmetric(self) -> bool:
        return True


class MappingTypeSimilarity(EntitySimilarity):
    """Adjusted Jaccard backed by an explicit ``uri -> types`` mapping.

    Useful in tests and for entities synthesized outside a full
    :class:`~repro.kg.graph.KnowledgeGraph`.
    """

    def __init__(self, types: Mapping[str, FrozenSet[str]], cap: float = DEFAULT_CAP):
        self._types = {uri: frozenset(t) for uri, t in types.items()}
        self.cap = cap

    @property
    def is_symmetric(self) -> bool:
        return True

    def types_of(self, uri: str) -> FrozenSet[str]:
        """Return the type set used for comparison (empty if unknown).

        Shared accessor with :class:`TypeJaccardSimilarity`; the
        vectorized kernel packs these sets into bitmaps.
        """
        return self._types.get(uri, frozenset())

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        types_a = self._types.get(a)
        types_b = self._types.get(b)
        if not types_a or not types_b:
            return 0.0
        return min(self.cap, jaccard(types_a, types_b))

    @property
    def name(self) -> str:
        return "types"

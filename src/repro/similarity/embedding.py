"""Embedding-based entity similarity: cosine over RDF2Vec vectors.

Cosine similarity lies in ``[-1, 1]``; the search framework requires
``sigma`` in ``[0, 1]``, so negative similarities are clamped to 0
(anti-correlated entities are simply unrelated for retrieval purposes).
"""

from __future__ import annotations

from repro.embeddings.store import EmbeddingStore
from repro.similarity.base import EntitySimilarity


class EmbeddingCosineSimilarity(EntitySimilarity):
    """Clamped cosine similarity between stored entity embeddings.

    Entities without an embedding score 0 against every other entity
    (and 1 against themselves, per the ``sigma`` contract).
    """

    def __init__(self, store: EmbeddingStore):
        self.store = store

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        if a not in self.store or b not in self.store:
            return 0.0
        return max(0.0, self.store.cosine(a, b))

    @property
    def name(self) -> str:
        return "embeddings"

    @property
    def is_symmetric(self) -> bool:
        return True

"""Predicate-based entity similarity (the paper's Section 5.3 pointer).

Besides type sets and embeddings, Section 5.3 notes that "one can also
compute the similarity between two entities based on the set of
predicates around them" (exemplar queries, Mottin et al.).  Two
entities are similar when they participate in the same kinds of
relationships: a baseball player and a basketball player both have
``playsFor`` and ``bornIn`` edges, a city does not.

The signature distinguishes edge direction — ``playsFor`` *out* of a
player is different evidence than ``playsFor`` *into* a team.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.kg.graph import KnowledgeGraph
from repro.similarity.base import EntitySimilarity
from repro.similarity.types import DEFAULT_CAP, jaccard


def predicate_signature(graph: KnowledgeGraph, uri: str) -> FrozenSet[str]:
    """The direction-tagged predicate set around an entity.

    Outgoing predicates are prefixed ``out:``, incoming ``in:``, so the
    signature captures the entity's relational role, not just the
    vocabulary it touches.
    """
    signature = set()
    for predicate, _ in graph.out_edges(uri):
        signature.add(f"out:{predicate}")
    for predicate, _ in graph.in_edges(uri):
        signature.add(f"in:{predicate}")
    return frozenset(signature)


class PredicateJaccardSimilarity(EntitySimilarity):
    """Adjusted Jaccard over direction-tagged predicate sets.

    Mirrors the adjustment of Equation 4: identity scores exactly 1 and
    non-identical pairs are capped below it, so exact entity matches
    always dominate.

    Parameters
    ----------
    graph:
        Source of the edges.
    cap:
        Maximum score for non-identical entities.
    """

    def __init__(self, graph: KnowledgeGraph, cap: float = DEFAULT_CAP):
        self.graph = graph
        self.cap = cap
        self._signatures: Dict[str, FrozenSet[str]] = {
            entity.uri: predicate_signature(graph, entity.uri)
            for entity in graph.entities()
        }

    def signature_of(self, uri: str) -> FrozenSet[str]:
        """Return the cached predicate signature (empty when unknown)."""
        return self._signatures.get(uri, frozenset())

    def similarity(self, a: str, b: str) -> float:
        if a == b:
            return 1.0
        sig_a = self._signatures.get(a)
        sig_b = self._signatures.get(b)
        if not sig_a or not sig_b:
            return 0.0
        return min(self.cap, jaccard(sig_a, sig_b))

    @property
    def name(self) -> str:
        return "predicates"

    @property
    def is_symmetric(self) -> bool:
        return True

"""Pooled connections from the coordinator to one worker.

Each :class:`WorkerLink` keeps a small pool of framed TCP connections
so concurrent scatters to the same worker do not serialize on one
socket.  Failure semantics are deliberately strict: any transport
error, protocol violation, or timeout closes the connection and raises
:class:`~repro.exceptions.ClusterError` — the scatter-gather layer
turns that into a hedged retry, never a hung socket.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.cluster.protocol import read_frame, write_frame
from repro.exceptions import ClusterError, ClusterProtocolError

#: Connections kept per worker.  Matches the coordinator's practical
#: scatter concurrency; excess requests queue on the semaphore.
DEFAULT_POOL_SIZE = 8

_Conn = Tuple[asyncio.StreamReader, asyncio.StreamWriter]


class WorkerLink:
    """A lazily connected, bounded connection pool to one worker."""

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = DEFAULT_POOL_SIZE,
        connect_timeout: float = 2.0,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self._idle: Deque[_Conn] = deque()
        self._limit = asyncio.Semaphore(max(1, pool_size))
        self._closed = False

    async def request(
        self, payload: Dict[str, Any], timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """One round trip: send ``payload``, await the reply frame.

        Raises :class:`ClusterError` on refused dials, timeouts, EOFs
        mid-reply, and protocol violations; the failed connection never
        returns to the pool.
        """
        if self._closed:
            raise ClusterError("worker link is closed")
        async with self._limit:
            conn = await self._checkout()
            reader, writer = conn
            try:
                reply = await asyncio.wait_for(
                    self._round_trip(reader, writer, payload), timeout
                )
            except (asyncio.TimeoutError, TimeoutError) as exc:
                _discard(conn)
                raise ClusterError(
                    f"worker {self.host}:{self.port} timed out "
                    f"after {timeout}s"
                ) from exc
            except (OSError, ClusterProtocolError) as exc:
                _discard(conn)
                raise ClusterError(
                    f"worker {self.host}:{self.port} failed: {exc}"
                ) from exc
            if reply is None:
                _discard(conn)
                raise ClusterError(
                    f"worker {self.host}:{self.port} closed the "
                    f"connection mid-request"
                )
            if self._closed:
                _discard(conn)
            else:
                self._idle.append(conn)
            return reply

    @staticmethod
    async def _round_trip(
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        payload: Dict[str, Any],
    ) -> Optional[Dict[str, Any]]:
        await write_frame(writer, payload)
        return await read_frame(reader)

    async def _checkout(self) -> _Conn:
        while self._idle:
            conn = self._idle.popleft()
            if not conn[1].is_closing():
                return conn
            _discard(conn)
        try:
            return await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                self.connect_timeout,
            )
        except (asyncio.TimeoutError, TimeoutError, OSError) as exc:
            raise ClusterError(
                f"cannot connect to worker {self.host}:{self.port}: {exc}"
            ) from exc

    async def close(self) -> None:
        """Close every pooled connection (idempotent)."""
        self._closed = True
        while self._idle:
            _discard(self._idle.popleft())


def _discard(conn: _Conn) -> None:
    writer = conn[1]
    try:
        writer.close()
    except RuntimeError:
        # The event loop may already be closing underneath us.
        pass

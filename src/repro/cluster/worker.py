"""A cluster worker: one process scoring its shard of the lake.

A worker wraps a warm :class:`~repro.system.Thetis` and serves the
length-prefixed JSON protocol of :mod:`repro.cluster.protocol` on a
TCP port.  Its only scoring primitive is
:meth:`~repro.system.Thetis.search_shard`: given a routing epoch, a
liveness set, and its own id, the worker derives its shard of table
ids from the consistent-hash ring (:mod:`repro.cluster.hashring`) —
the same pure function the coordinator and every sibling compute — and
returns the shard's top-k ``(score, table_id)`` partial.

Cold start memmaps, never compiles: pointing the worker's Thetis at a
spilled segment directory (``index_dir=...`` /
``thetis cluster worker --index DIR``) re-opens the sealed arrays as
read-only memmaps through :mod:`repro.core.kernel.storage`, so N
workers on one machine share a single copy of the corpus through the
OS page cache.  A running worker can likewise *adopt* a newly shipped
sealed segment directory over the wire (the rebalance path).

Scoring runs on a dedicated executor thread so the event loop stays
responsive to pings while a shard is being scored.
"""

from __future__ import annotations

import asyncio
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster.hashring import DEFAULT_VNODES, HashRing
from repro.cluster.protocol import (
    RoutingTable,
    expect_epoch,
    expect_segment_path,
    expect_type,
    expect_worker_id,
    expect_worker_ids,
    read_frame,
    write_frame,
)
from repro.exceptions import (
    ClusterError,
    ClusterProtocolError,
    ProtocolError,
    ReproError,
    ServeError,
    StaleEpochError,
)
from repro.serve.protocol import SearchRequest
from repro.system import Thetis

#: Routing epochs a worker keeps resolvable.  In-flight requests built
#: against epoch E must still score correctly while the coordinator
#: flips to E+1; a handful of generations is plenty of overlap.
ROUTING_HISTORY = 8

#: Memoized shard lists per (epoch, live, owner, prev_live).  Shards
#: are recomputed only when liveness actually changes, so steady-state
#: traffic computes each partition once.
SHARD_CACHE_LIMIT = 64


@dataclass
class WorkerConfig:
    """Tuning knobs of one cluster worker."""

    worker_id: str
    host: str = "127.0.0.1"
    port: int = 0
    #: Coordinator control endpoint to register with (optional: a
    #: worker without one waits passively for routing pushes).
    coordinator_host: Optional[str] = None
    coordinator_port: Optional[int] = None
    #: Host workers advertise to the coordinator (defaults to ``host``).
    advertise_host: Optional[str] = None
    #: Engine warmed at start-up and used for shard scoring.
    method: str = "types"
    #: Build the engine and per-table views before accepting shards.
    warm_on_start: bool = True
    #: Executor threads scoring shards (1 keeps shard passes ordered).
    search_workers: int = 1
    #: Registration retry budget (the coordinator may bind later).
    register_attempts: int = 20
    register_backoff: float = 0.25
    #: Ring geometry; must match the coordinator's.
    vnodes: int = DEFAULT_VNODES


class ClusterWorker:
    """Serve shard RPCs for one :class:`Thetis` instance."""

    def __init__(self, thetis: Thetis, config: WorkerConfig):
        self.thetis = thetis
        self.config = config
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.search_workers),
            thread_name_prefix=f"thetis-shard-{config.worker_id}",
        )
        # Routing state; touched only from the event loop, serialized
        # by this lock so a routing install never interleaves with a
        # shard computation reading it.
        self._state_lock = asyncio.Lock()
        self._routing: Optional[RoutingTable] = None
        self._history: Dict[int, RoutingTable] = {}
        self._rings: Dict[int, HashRing] = {}
        self._shards: Dict[Tuple, List[str]] = {}
        self._writers: Set[asyncio.StreamWriter] = set()
        self._started_at = 0.0
        self._searches_total = 0
        # Per-task query tallies ("entity" | "union" | "join"), folded
        # into the coordinator's fleet metrics via the pong.
        self._task_counts: Dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (``port=0`` requests an ephemeral one)."""
        if self._server is None or not self._server.sockets:
            raise ClusterError("worker is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Warm the engine, bind, and register with the coordinator."""
        if self._server is not None:
            raise ClusterError("worker already started")
        self._started_at = time.monotonic()
        loop = asyncio.get_running_loop()
        if self.config.warm_on_start:
            await loop.run_in_executor(
                self._executor,
                functools.partial(self.thetis.warm, self.config.method),
            )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if (self.config.coordinator_host is not None
                and self.config.coordinator_port is not None):
            await self._register()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ClusterError("call start() first")
        await self._server.serve_forever()

    async def shutdown(self) -> None:
        """Graceful stop: unbind, close connections, release the engine."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._executor.shutdown(wait=True)
        self.thetis.close()

    async def abort(self) -> None:
        """Crash simulation: drop every connection mid-flight, no drain.

        The fail-over tests (and the kill-a-worker benchmark when the
        worker is in-process) use this to make the coordinator observe
        exactly what a dead process looks like: refused dials and EOFs
        on pooled connections.
        """
        self._closed = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def _register(self) -> None:
        """Dial the coordinator's control port and join the ring."""
        assert self.config.coordinator_host is not None
        message = {
            "type": "register",
            "worker_id": self.config.worker_id,
            "host": self.config.advertise_host or self.config.host,
            "port": self.port,
        }
        last_error: Optional[Exception] = None
        for _attempt in range(max(1, self.config.register_attempts)):
            try:
                reader, writer = await asyncio.open_connection(
                    self.config.coordinator_host, self.config.coordinator_port
                )
            except OSError as exc:
                last_error = exc
                await asyncio.sleep(self.config.register_backoff)
                continue
            try:
                await write_frame(writer, message)
                reply = await read_frame(reader)
            finally:
                writer.close()
            if reply is None or not reply.get("ok"):
                raise ClusterError(
                    f"coordinator rejected registration: {reply!r}"
                )
            return
        raise ClusterError(
            f"could not reach coordinator at "
            f"{self.config.coordinator_host}:{self.config.coordinator_port}: "
            f"{last_error}"
        )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._writers.add(writer)
        try:
            while not self._closed:
                try:
                    message = await read_frame(reader)
                except ClusterProtocolError as exc:
                    await write_frame(
                        writer, {"ok": False, "error": str(exc)}
                    )
                    break
                if message is None:
                    break
                reply = await self._dispatch(message)
                await write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        try:
            kind = expect_type(message)
            if kind == "ping":
                return await self._handle_ping()
            if kind == "routing":
                return await self._handle_routing(message)
            if kind == "search":
                return await self._handle_search(message)
            if kind == "search_batch":
                return await self._handle_search_batch(message)
            if kind == "adopt":
                return await self._handle_adopt(message)
            if kind == "status":
                return await self._handle_status()
            raise ClusterProtocolError(
                f"message type {kind!r} is not served by workers"
            )
        except StaleEpochError as exc:
            return {
                "ok": False,
                "error": str(exc),
                "stale_epoch": True,
                "epoch": exc.current,
            }
        except (ClusterError, ProtocolError, ServeError) as exc:
            return {"ok": False, "error": str(exc)}
        except ReproError as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _handle_ping(self) -> Dict[str, Any]:
        async with self._state_lock:
            epoch = self._routing.epoch if self._routing else None
        return {
            "ok": True,
            "type": "pong",
            "worker_id": self.config.worker_id,
            "epoch": epoch,
            "tables_total": len(self.thetis.lake),
            "searches_total": self._searches_total,
            "uptime_seconds": time.monotonic() - self._started_at,
            "profile": self._profile_dict(),
            "prefilter": self.thetis.prefilter_stats.as_dict(),
            "batch": self.thetis.batch_stats.as_dict(),
            "tasks": dict(sorted(self._task_counts.items())),
        }

    def _profile_dict(self) -> Dict[str, Any]:
        profile = self.thetis.engine(self.config.method).profile
        return {
            "mapping_seconds": profile.mapping_seconds,
            "total_seconds": profile.total_seconds,
            "tables_scored": profile.tables_scored,
            "similarity_calls": profile.similarity_calls,
            "similarity_misses": profile.similarity_misses,
        }

    async def _handle_routing(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        table = RoutingTable.from_json(message)
        async with self._state_lock:
            if self._routing is None or table.epoch >= self._routing.epoch:
                self._routing = table
            self._history[table.epoch] = table
            self._rings.pop(table.epoch, None)
            while len(self._history) > ROUTING_HISTORY:
                oldest = min(self._history)
                del self._history[oldest]
                self._rings.pop(oldest, None)
            # Shard memos of retired epochs go with their tables.
            self._shards = {
                key: shard
                for key, shard in self._shards.items()
                if key[0] in self._history
            }
            return {"ok": True, "epoch": self._routing.epoch}

    async def _handle_search(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        epoch = expect_epoch(message)
        owner = expect_worker_id(message, "owner")
        live = expect_worker_ids(message, "live")
        prev_live = (
            expect_worker_ids(message, "prev_live")
            if message.get("prev_live") is not None else None
        )
        request = SearchRequest.from_json(
            {
                "tuples": message.get("tuples"),
                "k": message.get("k", 10),
                "method": message.get("method", "types"),
                "votes": message.get("votes", 1),
                "mode": message.get("mode", "exact"),
                "task": message.get("task", "entity"),
            },
            mode="search",
        )
        query = request.query()
        shard = await self._shard_for(epoch, live, owner, prev_live)
        if shard:
            loop = asyncio.get_running_loop()
            results = await loop.run_in_executor(
                self._executor,
                functools.partial(
                    self.thetis.search_shard,
                    query,
                    shard,
                    k=request.k,
                    method=request.method,
                    votes=request.votes,
                    mode=(
                        "prefilter" if request.mode == "prefilter"
                        else "exact"
                    ),
                    task=request.task,
                ),
            )
            pairs = [[scored.score, scored.table_id] for scored in results]
        else:
            pairs = []
        self._searches_total += 1
        self._task_counts[request.task] = (
            self._task_counts.get(request.task, 0) + 1
        )
        return {
            "ok": True,
            "type": "result",
            "worker_id": self.config.worker_id,
            "epoch": epoch,
            "shard_size": len(shard),
            "tables_total": len(self.thetis.lake),
            "results": pairs,
        }

    async def _handle_search_batch(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Score a whole coordinator micro-batch in one shard pass.

        The frame carries a ``queries`` list (each entry the ``tuples``
        payload of one query) plus the shared ``k``/``method``/``votes``/
        ``mode``; the shard is derived once and every query is scored in
        a single fused kernel pass via ``search_shard_batch``.  The
        reply's ``results`` holds one score/table-id pair list per
        query, in request order.
        """
        epoch = expect_epoch(message)
        owner = expect_worker_id(message, "owner")
        live = expect_worker_ids(message, "live")
        prev_live = (
            expect_worker_ids(message, "prev_live")
            if message.get("prev_live") is not None else None
        )
        raw_queries = message.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            raise ClusterProtocolError(
                "'queries' must be a non-empty list of tuple lists"
            )
        requests = [
            SearchRequest.from_json(
                {
                    "tuples": entry,
                    "k": message.get("k", 10),
                    "method": message.get("method", "types"),
                    "votes": message.get("votes", 1),
                    "mode": message.get("mode", "exact"),
                    "task": message.get("task", "entity"),
                },
                mode="search",
            )
            for entry in raw_queries
        ]
        queries = [request.query() for request in requests]
        first = requests[0]
        shard = await self._shard_for(epoch, live, owner, prev_live)
        if shard:
            loop = asyncio.get_running_loop()
            rankings = await loop.run_in_executor(
                self._executor,
                functools.partial(
                    self.thetis.search_shard_batch,
                    queries,
                    shard,
                    k=first.k,
                    method=first.method,
                    votes=first.votes,
                    mode=(
                        "prefilter" if first.mode == "prefilter"
                        else "exact"
                    ),
                    task=first.task,
                ),
            )
            per_query = [
                [[scored.score, scored.table_id] for scored in results]
                for results in rankings
            ]
        else:
            per_query = [[] for _ in queries]
        self._searches_total += len(queries)
        self._task_counts[first.task] = (
            self._task_counts.get(first.task, 0) + len(queries)
        )
        return {
            "ok": True,
            "type": "result_batch",
            "worker_id": self.config.worker_id,
            "epoch": epoch,
            "shard_size": len(shard),
            "tables_total": len(self.thetis.lake),
            "results": per_query,
        }

    async def _handle_adopt(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        path = expect_segment_path(message)
        loop = asyncio.get_running_loop()
        tables = await loop.run_in_executor(
            self._executor, functools.partial(self._adopt_sync, path)
        )
        return {
            "ok": True,
            "worker_id": self.config.worker_id,
            "adopted_tables": tables,
        }

    def _adopt_sync(self, path: str) -> int:
        """Memmap a sealed segment directory into the engine."""
        from repro.core.kernel.storage import load_index

        engine = self.thetis.engine(self.config.method)
        adopt = getattr(engine, "adopt_index", None)
        if adopt is None:
            raise ClusterError(
                "this worker's engine has no segmented index; start it "
                "with engine_kind='vectorized' to adopt sealed segments"
            )
        index = load_index(path, engine.sigma, engine.mapping)
        adopt(index)
        stats = index.stats()
        return stats.live_tables if stats is not None else 0

    async def _handle_status(self) -> Dict[str, Any]:
        async with self._state_lock:
            routing = self._routing
            epochs = sorted(self._history)
        return {
            "ok": True,
            "worker_id": self.config.worker_id,
            "routing": routing.to_json() if routing else None,
            "known_epochs": epochs,
            "tables_total": len(self.thetis.lake),
            "searches_total": self._searches_total,
        }

    # ------------------------------------------------------------------
    # Shard derivation
    # ------------------------------------------------------------------
    async def _shard_for(
        self,
        epoch: int,
        live: Tuple[str, ...],
        owner: str,
        prev_live: Optional[Tuple[str, ...]],
    ) -> List[str]:
        async with self._state_lock:
            table = self._history.get(epoch)
            if table is None:
                current = self._routing.epoch if self._routing else -1
                raise StaleEpochError(epoch, current)
            key = (epoch, live, owner, prev_live)
            cached = self._shards.get(key)
            if cached is not None:
                return cached
            ring = self._rings.get(epoch)
            if ring is None:
                ring = HashRing(
                    table.workers,
                    replication=table.replication,
                    vnodes=self.config.vnodes,
                )
                self._rings[epoch] = ring
            table_ids = self.thetis.lake.table_ids()
            if prev_live is None:
                shard = ring.shard(owner, table_ids, live)
            else:
                shard = ring.shard_delta(owner, table_ids, live, prev_live)
            if len(self._shards) >= SHARD_CACHE_LIMIT:
                self._shards.clear()
            self._shards[key] = shard
            return shard

"""Length-prefixed JSON framing for the coordinator↔worker wire.

The cluster control plane deliberately avoids HTTP between the
coordinator and its workers: a shard RPC needs no request line, no
headers, and no content negotiation — just a message boundary.  Every
frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object with a ``"type"`` field.  The
codec mirrors :mod:`repro.serve.http` in spirit (stdlib asyncio
streams, strict limits, explicit errors) while staying an order of
magnitude smaller.

Violations raise :class:`~repro.exceptions.ClusterProtocolError`; a
clean EOF *between* frames reads as ``None`` so connection pools can
distinguish "peer closed politely" from "peer died mid-reply".
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ClusterProtocolError

#: Bytes of the frame-length prefix (big-endian unsigned).
FRAME_HEADER_BYTES = 4

#: Hard cap on one frame's body.  A shard response carries at most a
#: few thousand ``(score, id)`` pairs plus counters; 32 MiB is generous
#: headroom without letting a confused peer allocate unboundedly.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Message types spoken on the worker wire (requests carry ``type``;
#: replies carry ``ok`` plus type-specific fields).
MSG_TYPES = (
    "register",   # worker -> coordinator: join the ring
    "leave",      # worker -> coordinator: retire from the ring
    "ping",       # coordinator -> worker: heartbeat + stats scrape
    "routing",    # coordinator -> worker: install a routing epoch
    "search",     # coordinator -> worker: score one shard
    "search_batch",  # coordinator -> worker: score a query batch, one pass
    "adopt",      # coordinator -> worker: memmap a sealed segment dir
    "status",     # anyone -> worker: introspection
)


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one message to its on-wire bytes."""
    if not isinstance(payload, dict):
        raise ClusterProtocolError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame too large: {len(body)} bytes > {MAX_FRAME_BYTES}"
        )
    return len(body).to_bytes(FRAME_HEADER_BYTES, "big") + body


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF between frames.

    Raises :class:`ClusterProtocolError` for truncation mid-frame,
    oversized lengths, non-JSON bodies, and non-object payloads.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ClusterProtocolError(
            "connection closed inside a frame header"
        ) from exc
    except ConnectionResetError:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        raise ClusterProtocolError(
            f"frame too large: {length} bytes > {MAX_FRAME_BYTES}"
        )
    try:
        body = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionResetError) as exc:
        raise ClusterProtocolError(
            "connection closed inside a frame body"
        ) from exc
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ClusterProtocolError(f"invalid frame JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ClusterProtocolError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    return payload


async def write_frame(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    """Encode and flush one frame."""
    writer.write(encode_frame(payload))
    await writer.drain()


def expect_type(payload: Dict[str, Any]) -> str:
    """Return a request frame's ``type`` field, validated."""
    kind = payload.get("type")
    if kind not in MSG_TYPES:
        raise ClusterProtocolError(
            f"unknown or missing message type: {kind!r}"
        )
    return kind


# ----------------------------------------------------------------------
# Routing tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoutingTable:
    """One immutable routing epoch: ring membership + liveness.

    ``workers`` is the full (ordered, deduplicated) ring membership the
    consistent-hash points are built from; ``live`` is the subset
    currently accepting shards.  Shard assignment is a pure function of
    ``(workers, live, replication)``, so two processes holding the same
    epoch agree on every table's owner without further coordination —
    the property the scatter-gather correctness argument rests on.
    """

    epoch: int
    workers: Tuple[str, ...]
    live: Tuple[str, ...]
    replication: int = 2

    def to_json(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "workers": list(self.workers),
            "live": list(self.live),
            "replication": self.replication,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "RoutingTable":
        epoch = payload.get("epoch")
        if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
            raise ClusterProtocolError("'epoch' must be a non-negative int")
        workers = _parse_worker_ids(payload, "workers")
        live = _parse_worker_ids(payload, "live")
        members = set(workers)
        for worker_id in live:
            if worker_id not in members:
                raise ClusterProtocolError(
                    f"live worker {worker_id!r} is not in the ring"
                )
        replication = payload.get("replication", 2)
        if (isinstance(replication, bool) or not isinstance(replication, int)
                or replication < 1):
            raise ClusterProtocolError("'replication' must be an int >= 1")
        return cls(
            epoch=epoch,
            workers=workers,
            live=live,
            replication=replication,
        )


def _parse_worker_ids(
    payload: Dict[str, Any], name: str
) -> Tuple[str, ...]:
    raw = payload.get(name)
    if not isinstance(raw, list):
        raise ClusterProtocolError(f"'{name}' must be a list of worker ids")
    seen: Dict[str, None] = {}
    for worker_id in raw:
        if not isinstance(worker_id, str) or not worker_id:
            raise ClusterProtocolError(
                f"'{name}' entries must be non-empty strings"
            )
        seen.setdefault(worker_id)
    return tuple(seen)


# ----------------------------------------------------------------------
# Field validators
# ----------------------------------------------------------------------
# Every value a handler pulls out of a request frame goes through one
# of these before it touches the engine, the routing state, or the
# filesystem.  They are the wire boundary's sanitizers: the wire-taint
# lint pass treats their return values as clean, so a handler that
# reads a frame field raw and forwards it trips the lint.

def expect_epoch(payload: Dict[str, Any],
                 name: str = "epoch") -> int:
    """A non-negative integer epoch out of a frame field."""
    epoch = payload.get(name)
    if isinstance(epoch, bool) or not isinstance(epoch, int) or epoch < 0:
        raise ClusterProtocolError(
            f"'{name}' must be a non-negative int"
        )
    return epoch


def expect_worker_id(payload: Dict[str, Any],
                     name: str = "worker_id") -> str:
    """A non-empty worker-id string out of a frame field."""
    worker_id = payload.get(name)
    if not isinstance(worker_id, str) or not worker_id:
        raise ClusterProtocolError(f"'{name}' must be a worker id")
    return worker_id


def expect_worker_ids(payload: Dict[str, Any],
                      name: str) -> Tuple[str, ...]:
    """An ordered, deduplicated tuple of worker ids out of a list field."""
    return _parse_worker_ids(payload, name)


def expect_endpoint(payload: Dict[str, Any],
                    host_name: str = "host",
                    port_name: str = "port") -> Tuple[str, int]:
    """A ``(host, port)`` endpoint out of two frame fields."""
    host = payload.get(host_name)
    if not isinstance(host, str) or not host:
        raise ClusterProtocolError(f"'{host_name}' must be a string")
    port = payload.get(port_name)
    if (isinstance(port, bool) or not isinstance(port, int)
            or not 0 < port < 65536):
        raise ClusterProtocolError(
            f"'{port_name}' must be a port number"
        )
    return (host, port)


def expect_segment_path(payload: Dict[str, Any],
                        name: str = "path") -> str:
    """A sealed-segment directory path out of a frame field.

    The adopt flow hands this straight to ``load_index``, so beyond
    type/emptiness it rejects NUL bytes and ``..`` traversal segments —
    a confused (or hostile) coordinator must not be able to map
    arbitrary files into the worker's address space.
    """
    path = payload.get(name)
    if not isinstance(path, str) or not path:
        raise ClusterProtocolError(
            f"'{name}' must be a directory path"
        )
    if "\x00" in path:
        raise ClusterProtocolError(f"'{name}' contains a NUL byte")
    parts = path.replace("\\", "/").split("/")
    if ".." in parts:
        raise ClusterProtocolError(
            f"'{name}' must not contain '..' traversal segments"
        )
    return path

"""Thread harnesses running cluster nodes in-process.

Mirrors :class:`repro.serve.server.ServerThread`: each node gets its
own event-loop thread with a synchronous start/stop surface, so tests,
the CI smoke script, and benchmarks can stand up a whole fleet — N
workers plus a coordinator on ephemeral ports — inside one process and
drive it over real sockets.  The production deployment runs the same
classes as separate processes via ``thetis cluster worker|serve``;
nothing in the protocol knows the difference.

:meth:`WorkerThread.crash` kills a worker the way the coordinator
would observe a dead process — listening socket closed, in-flight
connections aborted, no goodbye — which is what the fail-over tests
and the kill-a-worker benchmark are about.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, List, Optional

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.cluster.worker import ClusterWorker, WorkerConfig
from repro.exceptions import ClusterError
from repro.system import Thetis


class _LoopThread:
    """One event loop on a dedicated thread with sync start/stop."""

    def __init__(self, name: str):
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._listening = threading.Event()
        self._startup_error: Optional[BaseException] = None

    async def _start_node(self) -> None:
        raise NotImplementedError

    async def _stop_node(self) -> None:
        raise NotImplementedError

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._start_node())
        except BaseException as exc:
            self._startup_error = exc
            self._listening.set()
            loop.close()
            return
        self._listening.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def start(self, timeout: float = 60.0) -> "_LoopThread":
        self._thread.start()
        if not self._listening.wait(timeout):
            raise ClusterError(
                f"{self._thread.name} did not start listening in time"
            )
        if self._startup_error is not None:
            raise ClusterError(
                f"{self._thread.name} failed to start: {self._startup_error}"
            )
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self._stop_node(), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "_LoopThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class WorkerThread(_LoopThread):
    """Run a :class:`ClusterWorker` on a dedicated event-loop thread."""

    def __init__(self, thetis: Thetis, config: WorkerConfig):
        super().__init__(name=f"thetis-worker-{config.worker_id}")
        self.worker = ClusterWorker(thetis, config)

    async def _start_node(self) -> None:
        await self.worker.start()

    async def _stop_node(self) -> None:
        await self.worker.shutdown()

    @property
    def port(self) -> int:
        return self.worker.port

    def crash(self, timeout: float = 10.0) -> None:
        """Simulate a worker death: abort everything, skip the goodbye."""
        if self._loop is None or not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.worker.abort(), self._loop
        )
        future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


class CoordinatorThread(_LoopThread):
    """Run a :class:`ClusterCoordinator` on a dedicated event-loop thread."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        super().__init__(name="thetis-coordinator")
        self.coordinator = ClusterCoordinator(config or ClusterConfig())

    async def _start_node(self) -> None:
        await self.coordinator.start()

    async def _stop_node(self) -> None:
        await self.coordinator.shutdown()

    @property
    def port(self) -> int:
        return self.coordinator.port

    @property
    def control_port(self) -> int:
        return self.coordinator.control_port


class ClusterHarness:
    """A whole in-process fleet: coordinator + N registered workers.

    ``thetis_factory`` is called once per worker — each worker owns an
    independent :class:`Thetis` over (its own copy of, or a shared
    memmap of) the same corpus, exactly as separate processes would.
    """

    def __init__(
        self,
        thetis_factory: Callable[[int], Thetis],
        workers: int = 2,
        config: Optional[ClusterConfig] = None,
        worker_config: Optional[Callable[[int], WorkerConfig]] = None,
    ):
        if workers < 1:
            raise ClusterError("a cluster needs at least one worker")
        self._factory = thetis_factory
        self._make_worker_config = worker_config
        self._num_workers = workers
        self.coordinator_thread = CoordinatorThread(config)
        self.worker_threads: List[WorkerThread] = []

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The coordinator's HTTP port."""
        return self.coordinator_thread.port

    @property
    def control_port(self) -> int:
        return self.coordinator_thread.control_port

    def start(self) -> "ClusterHarness":
        self.coordinator_thread.start()
        for index in range(self._num_workers):
            self.add_worker(index)
        return self

    def add_worker(self, index: int) -> WorkerThread:
        """Start one more worker and register it (a live rebalance)."""
        if self._make_worker_config is not None:
            config = self._make_worker_config(index)
        else:
            config = WorkerConfig(worker_id=f"worker-{index}")
        config.coordinator_host = self.coordinator_thread.coordinator.config.host
        config.coordinator_port = self.control_port
        thread = WorkerThread(self._factory(index), config)
        thread.start()
        self.worker_threads.append(thread)
        return thread

    def crash_worker(self, index: int) -> None:
        """Kill worker ``index`` abruptly (fail-over simulation)."""
        self.worker_threads[index].crash()

    def stop(self) -> None:
        for thread in self.worker_threads:
            try:
                thread.stop()
            except Exception:  # best-effort teardown of a crashed node
                pass
        self.coordinator_thread.stop()

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

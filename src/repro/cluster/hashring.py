"""Consistent hashing of table ids across cluster workers.

A classic virtual-node hash ring, specialized for the scatter-gather
correctness argument:

- **Process-independent.**  Points come from ``blake2b`` digests of
  strings (never Python's salted ``hash()``), so the coordinator and
  every worker compute identical rings from the same membership —
  shard assignment needs no negotiation beyond the routing epoch.
- **R-way replication.**  A table's *owners* are the first ``R``
  distinct workers clockwise from its point.  The table is served by
  its first owner that is live (its *primary*); replicas only matter
  when primaries die, bounding which workers ever fault a table's
  segment pages into memory.
- **Minimal movement.**  Adding or retiring a worker moves only the
  tables whose owner lists change — the property live rebalance relies
  on to ship a bounded number of tables per epoch flip.
- **Degradation is explicit.**  When *all* of a table's owners are
  dead, the table is uncovered — :meth:`HashRing.primary` returns
  ``None`` and the coordinator reports ``degraded: true`` rather than
  silently widening the replica set.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

#: Virtual nodes per worker.  More vnodes smooth the shard-size
#: distribution at the cost of a larger sorted point array; 64 keeps
#: the imbalance under a few percent for small fleets while the ring
#: stays tiny (64·N points).
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """Deterministic 64-bit ring position of ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """An immutable consistent-hash ring over a worker membership."""

    def __init__(
        self,
        workers: Sequence[str],
        replication: int = 2,
        vnodes: int = DEFAULT_VNODES,
    ):
        if replication < 1:
            raise ConfigurationError(
                f"replication must be >= 1, got {replication}"
            )
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.workers: Tuple[str, ...] = tuple(dict.fromkeys(workers))
        self.replication = replication
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for worker_id in self.workers:
            for vnode in range(vnodes):
                # The worker id breaks the (astronomically unlikely)
                # digest ties so the sort is fully deterministic.
                points.append((_point(f"{worker_id}#{vnode}"), worker_id))
        points.sort()
        self._points = points
        self._keys = [point for point, _ in points]

    # ------------------------------------------------------------------
    def owners(self, table_id: str) -> Tuple[str, ...]:
        """The first ``min(R, len(workers))`` distinct workers clockwise."""
        if not self._points:
            return ()
        want = min(self.replication, len(self.workers))
        start = bisect_right(self._keys, _point(table_id))
        found: Dict[str, None] = {}
        for offset in range(len(self._points)):
            _, worker_id = self._points[(start + offset) % len(self._points)]
            if worker_id not in found:
                found.setdefault(worker_id)
                if len(found) == want:
                    break
        return tuple(found)

    def primary(
        self, table_id: str, live: Iterable[str]
    ) -> Optional[str]:
        """The first live owner of ``table_id``; ``None`` if uncovered."""
        members = live if isinstance(live, frozenset) else frozenset(live)
        for worker_id in self.owners(table_id):
            if worker_id in members:
                return worker_id
        return None

    # ------------------------------------------------------------------
    def partition(
        self, table_ids: Iterable[str], live: Iterable[str]
    ) -> Dict[str, List[str]]:
        """Partition ids by primary (uncovered ids are dropped).

        The returned lists preserve the input order, so every worker's
        shard is a deterministic subsequence of the lake's id order.
        """
        members = frozenset(live)
        shards: Dict[str, List[str]] = {}
        for table_id in table_ids:
            owner = self.primary(table_id, members)
            if owner is not None:
                shards.setdefault(owner, []).append(table_id)
        return shards

    def shard(
        self,
        owner: str,
        table_ids: Iterable[str],
        live: Iterable[str],
    ) -> List[str]:
        """The ids ``owner`` is primary for under liveness ``live``."""
        members = frozenset(live)
        return [
            table_id
            for table_id in table_ids
            if self.primary(table_id, members) == owner
        ]

    def shard_delta(
        self,
        owner: str,
        table_ids: Iterable[str],
        live: Iterable[str],
        prev_live: Iterable[str],
    ) -> List[str]:
        """Ids newly owned by ``owner`` after liveness shrank.

        The hedged-retry shard: tables whose primary under
        ``prev_live`` just failed and fall to ``owner`` under ``live``.
        Across all surviving workers the deltas are disjoint and cover
        exactly the failed primaries' shards (minus newly uncovered
        ids), so a retry pass never re-scores a table the first pass
        already answered for.
        """
        members = frozenset(live)
        previous = frozenset(prev_live)
        return [
            table_id
            for table_id in table_ids
            if self.primary(table_id, members) == owner
            and self.primary(table_id, previous) != owner
        ]

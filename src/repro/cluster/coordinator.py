"""The cluster coordinator: membership, routing epochs, scatter-gather.

The coordinator owns no corpus data at all — it is a routing tier.  It
answers the same ``POST /search`` wire contract as the single-process
server (:mod:`repro.serve`), but executes each query as a
scatter-gather: every live worker scores the shard it is primary for
under the current routing epoch, and the per-shard top-k partials are
merged with :func:`repro.core.parallel.merge_topk` — the bit-identical
``(-score, table_id)`` merge — so the cluster ranking equals the
single-process ranking exactly, for both ``exact`` and ``prefilter``
modes.

Fail-over is layered:

1. **Per-shard timeout + hedged retry.**  A shard RPC that times out
   or dies mid-flight fails *that shard only*; the coordinator
   immediately re-scatters the failed primaries' tables to the
   surviving replicas (each survivor scores exactly the delta the ring
   reassigns to it), so one slow or dying worker costs one extra round
   trip, not the query.
2. **Degraded, never wrong.**  Any query that saw a primary fail — or
   that left tables uncovered because every replica of some shard is
   dead — answers ``200`` with ``"degraded": true``.  The results that
   are present are still exact; degradation is about coverage, not
   score quality.
3. **Promotion via epoch flip.**  The heartbeat loop (and repeated
   query-path failures) confirm a worker dead, shrink the live set,
   and atomically bump the routing epoch — after which replicas are
   primaries and responses are clean again.  A worker that comes back
   (or a new one that registers) flips the epoch the same way: that
   *is* the live-rebalance mechanism, and it never blocks a query.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.client import DEFAULT_POOL_SIZE, WorkerLink
from repro.cluster.hashring import DEFAULT_VNODES
from repro.cluster.protocol import (
    RoutingTable,
    expect_endpoint,
    expect_type,
    expect_worker_id,
    read_frame,
    write_frame,
)
from repro.core.kernel import BatchStats
from repro.core.parallel import merge_topk
from repro.core.result import ResultSet, ScoredTable
from repro.exceptions import (
    BadRequestError,
    ClusterError,
    ClusterProtocolError,
    ProtocolError,
    RequestTimeoutError,
    ServeError,
    ServerOverloadedError,
)
from repro.serve.batching import (
    DEFAULT_FLUSH_INTERVAL,
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_QUEUE_DEPTH,
    DEFAULT_REQUEST_TIMEOUT,
    MicroBatcher,
)
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    read_request,
    split_path,
)
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import SearchRequest, error_to_json, result_to_json


@dataclass
class ClusterConfig:
    """Tuning knobs of one coordinator (see ``docs/cluster.md``)."""

    host: str = "127.0.0.1"
    #: HTTP front door (``0`` binds an ephemeral port).
    port: int = 0
    #: Framed control port workers register on.
    control_port: int = 0
    #: Owners per table; replicas serve only after primaries die.
    replication: int = 2
    #: Ring geometry; must match the workers'.
    vnodes: int = DEFAULT_VNODES
    #: Seconds between heartbeat rounds.
    heartbeat_interval: float = 0.5
    #: Consecutive failures (pings + query-path transport errors)
    #: before a worker is declared dead and its replicas promoted.
    dead_after: int = 3
    #: Per-shard RPC deadline within one query.
    shard_timeout: float = 10.0
    #: Dial deadline and pool size of each worker link.
    connect_timeout: float = 2.0
    pool_size: int = DEFAULT_POOL_SIZE
    #: ``/readyz`` flips once this many workers are live.
    min_workers: int = 1
    #: Micro-batch coalescing of the ``/search`` front door: concurrent
    #: queries fold into one batched scatter (a single fused kernel
    #: pass per shard) instead of one scatter per query.
    max_batch_size: int = DEFAULT_MAX_BATCH_SIZE
    flush_interval: float = DEFAULT_FLUSH_INTERVAL
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT


@dataclass
class _WorkerHandle:
    """Coordinator-side state of one registered worker."""

    worker_id: str
    host: str
    port: int
    link: WorkerLink
    state: str = "live"  # "live" | "dead"
    failures: int = 0
    last_seen: float = 0.0
    stats: Dict[str, Any] = field(default_factory=dict)


class ClusterMetrics:
    """Scatter-gather counters surfaced as the ``/metrics`` cluster block."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.scatters_total = 0  # guarded-by: _lock
        self.shard_requests_total = 0  # guarded-by: _lock
        self.shard_failures_total = 0  # guarded-by: _lock
        self.hedged_retries_total = 0  # guarded-by: _lock
        self.degraded_total = 0  # guarded-by: _lock
        self.epoch_flips_total = 0  # guarded-by: _lock
        self.uncovered_tables_last = 0  # guarded-by: _lock

    def note_scatter(
        self,
        shard_requests: int,
        failures: int,
        retried: bool,
        degraded: bool,
        uncovered: int,
    ) -> None:
        with self._lock:
            self.scatters_total += 1
            self.shard_requests_total += shard_requests
            self.shard_failures_total += failures
            if retried:
                self.hedged_retries_total += 1
            if degraded:
                self.degraded_total += 1
            self.uncovered_tables_last = uncovered

    def note_epoch_flip(self) -> None:
        with self._lock:
            self.epoch_flips_total += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "scatters_total": self.scatters_total,
                "shard_requests_total": self.shard_requests_total,
                "shard_failures_total": self.shard_failures_total,
                "hedged_retries_total": self.hedged_retries_total,
                "degraded_total": self.degraded_total,
                "epoch_flips_total": self.epoch_flips_total,
                "uncovered_tables_last": self.uncovered_tables_last,
            }


class ClusterCoordinator:
    """HTTP front door + control plane of one worker fleet."""

    def __init__(self, config: Optional[ClusterConfig] = None):
        self.config = config or ClusterConfig()
        self.metrics = ServerMetrics()
        self.cluster_metrics = ClusterMetrics()
        self.batcher = MicroBatcher(
            runner=self._run_search_batch,
            max_batch_size=self.config.max_batch_size,
            flush_interval=self.config.flush_interval,
            max_queue_depth=self.config.max_queue_depth,
            request_timeout=self.config.request_timeout,
        )
        # Topology state; mutated only on the event loop under this
        # lock so epoch flips are atomic with ring/live updates.
        self._topology_lock = asyncio.Lock()
        self._workers: Dict[str, _WorkerHandle] = {}
        self._epoch = 0
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._push_tasks: Set["asyncio.Task[None]"] = set()
        self._started_at = 0.0
        self._shut_down = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._http_server is None or not self._http_server.sockets:
            raise ClusterError("coordinator is not listening")
        return self._http_server.sockets[0].getsockname()[1]

    @property
    def control_port(self) -> int:
        if self._control_server is None or not self._control_server.sockets:
            raise ClusterError("coordinator control port is not listening")
        return self._control_server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._http_server is not None:
            raise ClusterError("coordinator already started")
        self._started_at = time.monotonic()
        self._control_server = await asyncio.start_server(
            self._handle_control, self.config.host, self.config.control_port
        )
        self._http_server = await asyncio.start_server(
            self._handle_http, self.config.host, self.config.port
        )
        loop = asyncio.get_running_loop()
        self._heartbeat_task = loop.create_task(
            self._heartbeat_loop(), name="thetis-cluster-heartbeat"
        )
        await self.batcher.start()

    async def serve_forever(self) -> None:
        if self._http_server is None:
            raise ClusterError("call start() first")
        await self._http_server.serve_forever()

    async def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass
        # Drain before the worker links close so admitted queries still
        # complete their scatter.
        await self.batcher.stop(drain=True)
        for server in (self._http_server, self._control_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for task in list(self._push_tasks):
            task.cancel()
        async with self._topology_lock:
            handles = list(self._workers.values())
        for handle in handles:
            await handle.link.close()

    # ------------------------------------------------------------------
    # Control plane: registration + heartbeat
    # ------------------------------------------------------------------
    async def _handle_control(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while not self._shut_down:
                try:
                    message = await read_frame(reader)
                except ClusterProtocolError as exc:
                    await write_frame(
                        writer, {"ok": False, "error": str(exc)}
                    )
                    break
                if message is None:
                    break
                try:
                    kind = expect_type(message)
                    if kind == "register":
                        reply = await self._handle_register(message)
                    elif kind == "leave":
                        reply = await self._handle_leave(message)
                    else:
                        raise ClusterProtocolError(
                            f"message type {kind!r} is not served on the "
                            f"control port"
                        )
                except (ClusterError, ProtocolError) as exc:
                    reply = {"ok": False, "error": str(exc)}
                await write_frame(writer, reply)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_register(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        worker_id = expect_worker_id(message)
        host, port = expect_endpoint(message)
        stale_link: Optional[WorkerLink] = None
        async with self._topology_lock:
            existing = self._workers.get(worker_id)
            if existing is not None:
                stale_link = existing.link
            self._workers[worker_id] = _WorkerHandle(
                worker_id=worker_id,
                host=host,
                port=port,
                link=WorkerLink(
                    host, port,
                    pool_size=self.config.pool_size,
                    connect_timeout=self.config.connect_timeout,
                ),
                last_seen=time.monotonic(),
            )
            epoch = self._flip_epoch_locked()
        if stale_link is not None:
            await stale_link.close()
        await self._push_routing()
        return {"ok": True, "epoch": epoch}

    async def _handle_leave(
        self, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        worker_id = expect_worker_id(message)
        async with self._topology_lock:
            handle = self._workers.pop(worker_id, None)
            epoch = self._flip_epoch_locked() if handle else self._epoch
        if handle is None:
            return {"ok": False, "error": f"unknown worker: {worker_id}"}
        await handle.link.close()
        await self._push_routing()
        return {"ok": True, "epoch": epoch}

    def _flip_epoch_locked(self) -> int:
        """Bump the routing epoch atomically (caller holds the lock).

        The ring itself is a pure function of ``(workers, replication,
        vnodes)``; the coordinator never materializes it — workers
        derive their shards from the pushed :class:`RoutingTable`, and
        the epoch number is what makes 'which membership' unambiguous
        for in-flight requests.
        """
        self._epoch += 1
        self.cluster_metrics.note_epoch_flip()
        return self._epoch

    async def _routing_table(self) -> RoutingTable:
        async with self._topology_lock:
            return RoutingTable(
                epoch=self._epoch,
                workers=tuple(self._workers),
                live=tuple(
                    worker_id
                    for worker_id, handle in self._workers.items()
                    if handle.state == "live"
                ),
                replication=self.config.replication,
            )

    async def _push_routing(self) -> None:
        """Install the current routing table on every live worker."""
        table = await self._routing_table()
        message = {"type": "routing", **table.to_json()}
        async with self._topology_lock:
            targets = [
                handle for handle in self._workers.values()
                if handle.state == "live"
            ]
        if not targets:
            return
        await asyncio.gather(
            *(
                self._push_one(handle, message)
                for handle in targets
            ),
        )

    async def _push_one(
        self, handle: _WorkerHandle, message: Dict[str, Any]
    ) -> None:
        try:
            await handle.link.request(
                message, timeout=self.config.connect_timeout
            )
        except ClusterError:
            # The heartbeat loop will confirm and demote; a worker that
            # missed a push simply answers stale-epoch until re-pushed.
            pass

    async def _heartbeat_loop(self) -> None:
        interval = self.config.heartbeat_interval
        timeout = max(interval * 2.0, 1.0)
        while not self._shut_down:
            await asyncio.sleep(interval)
            async with self._topology_lock:
                handles = list(self._workers.values())
            flipped = False
            for handle in handles:
                try:
                    pong = await handle.link.request(
                        {"type": "ping"}, timeout=timeout
                    )
                except ClusterError:
                    if await self._note_failure(handle.worker_id):
                        flipped = True
                    continue
                if not pong.get("ok"):
                    continue
                async with self._topology_lock:
                    current = self._workers.get(handle.worker_id)
                    if current is None:
                        continue
                    current.failures = 0
                    current.last_seen = time.monotonic()
                    current.stats = {
                        key: pong.get(key)
                        for key in (
                            "epoch", "tables_total", "searches_total",
                            "uptime_seconds", "profile", "prefilter",
                            "batch", "tasks",
                        )
                    }
                    if current.state == "dead":
                        # The worker came back: rejoin the live set —
                        # the other half of live rebalance.
                        current.state = "live"
                        self._flip_epoch_locked()
                        flipped = True
            if flipped:
                await self._push_routing()

    async def _note_failure(self, worker_id: str) -> bool:
        """Count one transport failure; returns True on a demotion."""
        async with self._topology_lock:
            handle = self._workers.get(worker_id)
            if handle is None:
                return False
            handle.failures += 1
            if (handle.state == "live"
                    and handle.failures >= self.config.dead_after):
                handle.state = "dead"
                self._flip_epoch_locked()
                return True
        return False

    # ------------------------------------------------------------------
    # HTTP front door
    # ------------------------------------------------------------------
    async def _handle_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while not self._shut_down:
                try:
                    request = await read_request(reader)
                except BadRequestError as exc:
                    response = HttpResponse(
                        exc.status, error_to_json(str(exc), exc.status)
                    )
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._dispatch(request)
                keep_alive = request.keep_alive and not self._shut_down
                writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        segments = split_path(request.path)
        endpoint = "/" + "/".join(segments) if segments else "/"
        self.metrics.request_started()
        start = time.perf_counter()
        try:
            response = await self._route(request, segments)
        except Exception as exc:  # the handler itself must never leak
            response = HttpResponse(
                500, error_to_json(f"internal error: {exc}", 500)
            )
        elapsed = time.perf_counter() - start
        self.metrics.request_finished(
            endpoint, response.status,
            elapsed if request.method == "POST" else None,
        )
        return response

    async def _route(
        self, request: HttpRequest, segments: Sequence[str]
    ) -> HttpResponse:
        if segments == ("healthz",):
            if request.method != "GET":
                return _method_not_allowed()
            return HttpResponse(200, {
                "status": "ok",
                "uptime_seconds": time.monotonic() - self._started_at,
            })
        if segments == ("readyz",):
            if request.method != "GET":
                return _method_not_allowed()
            table = await self._routing_table()
            if len(table.live) >= self.config.min_workers:
                return HttpResponse(200, {
                    "status": "ready", "workers_live": len(table.live),
                })
            return HttpResponse(503, error_to_json(
                f"{len(table.live)}/{self.config.min_workers} workers live",
                503,
            ))
        if segments == ("metrics",):
            if request.method != "GET":
                return _method_not_allowed()
            return HttpResponse(200, await self._metrics_payload())
        if segments == ("cluster", "status"):
            if request.method != "GET":
                return _method_not_allowed()
            return HttpResponse(200, await self._status_payload())
        if segments == ("search",):
            if request.method != "POST":
                return _method_not_allowed()
            return await self._handle_search(request)
        return HttpResponse(
            404, error_to_json(f"no such endpoint: {request.path}", 404)
        )

    async def _metrics_payload(self) -> Dict[str, Any]:
        table = await self._routing_table()
        cluster = self.cluster_metrics.snapshot()
        cluster.update({
            "epoch": table.epoch,
            "replication": table.replication,
            "workers_total": len(table.workers),
            "workers_live": len(table.live),
        })
        # Fold each worker's batched-kernel counters (reported with its
        # heartbeat pong) into one fleet-wide ``batch`` block; the
        # occupancy histogram comes from this coordinator's own
        # micro-batcher.
        fleet_batch = BatchStats()
        async with self._topology_lock:
            worker_counts = [
                handle.stats.get("batch")
                for handle in self._workers.values()
            ]
        for counts in worker_counts:
            if isinstance(counts, dict):
                fleet_batch.merge_counts(counts)
        return self.metrics.to_json(
            queue_depth=self.batcher.queue_depth,
            queue_limit=self.config.max_queue_depth,
            snapshot_version=table.epoch,
            uptime_seconds=time.monotonic() - self._started_at,
            cluster_stats=cluster,
            batch_stats=fleet_batch.as_dict(),
        )

    async def _status_payload(self) -> Dict[str, Any]:
        async with self._topology_lock:
            now = time.monotonic()
            workers = [
                {
                    "worker_id": handle.worker_id,
                    "host": handle.host,
                    "port": handle.port,
                    "state": handle.state,
                    "failures": handle.failures,
                    "last_seen_seconds_ago": (
                        now - handle.last_seen if handle.last_seen else None
                    ),
                    **handle.stats,
                }
                for handle in self._workers.values()
            ]
            epoch = self._epoch
        return {
            "epoch": epoch,
            "replication": self.config.replication,
            "workers": workers,
            "workers_live": sum(
                1 for worker in workers if worker["state"] == "live"
            ),
        }

    # ------------------------------------------------------------------
    # Scatter-gather query path
    # ------------------------------------------------------------------
    async def _handle_search(self, request: HttpRequest) -> HttpResponse:
        try:
            parsed = SearchRequest.from_json(request.json(), mode="search")
            parsed.query()  # validates; workers materialize their own
        except ProtocolError as exc:
            return HttpResponse(400, error_to_json(str(exc), 400))
        try:
            return await self.batcher.submit(parsed)
        except ServerOverloadedError as exc:
            return HttpResponse(503, error_to_json(str(exc), 503))
        except RequestTimeoutError as exc:
            return HttpResponse(504, error_to_json(str(exc), 504))
        except ServeError as exc:
            return HttpResponse(503, error_to_json(str(exc), 503))

    async def _run_search_batch(
        self, jobs: Sequence[SearchRequest]
    ) -> List[Any]:
        """Execute one coalesced micro-batch of ``/search`` requests.

        Jobs sharing ``(task, mode, method, k, use_lsh, votes)`` ride one
        batched scatter: a single ``search_batch`` frame per shard, so
        every worker scores its whole shard for all queries of the
        group in one fused kernel pass.  Outcomes are per-request
        :class:`HttpResponse` objects aligned with ``jobs``.
        """
        outcomes: List[Any] = [None] * len(jobs)
        groups: Dict[Any, List[int]] = {}
        for index, parsed in enumerate(jobs):
            groups.setdefault(parsed.batch_key(), []).append(index)
        for indices in groups.values():
            group = [jobs[position] for position in indices]
            try:
                responses = await self._scatter_group(group)
            except Exception as exc:  # keep neighbours' outcomes intact
                responses = [
                    HttpResponse(
                        500, error_to_json(f"internal error: {exc}", 500)
                    )
                    for _ in group
                ]
            for position, response in zip(indices, responses):
                outcomes[position] = response
        self.metrics.batch_executed(len(jobs))
        return outcomes

    async def _scatter_group(
        self, group: List[SearchRequest]
    ) -> List[HttpResponse]:
        """One batched scatter for a group of same-shaped queries.

        Every live worker receives the whole query batch and answers
        one top-k partial per query from its shard; per-query partials
        are merged with :func:`merge_topk`, so each query's ranking is
        bit-identical to a solo scatter of that query.
        """
        first = group[0]
        self.metrics.note_task(first.task, len(group))
        async with self._topology_lock:
            epoch = self._epoch
            live = tuple(
                worker_id
                for worker_id, handle in self._workers.items()
                if handle.state == "live"
            )
            links = {
                worker_id: self._workers[worker_id].link
                for worker_id in live
            }
        if not live:
            return [
                HttpResponse(
                    503, error_to_json("no live workers in the ring", 503)
                )
                for _ in group
            ]
        wire_mode = "prefilter" if first.mode == "prefilter" else "exact"
        base = {
            "type": "search_batch",
            "epoch": epoch,
            "queries": [
                [list(entry) for entry in parsed.tuples]
                for parsed in group
            ],
            "k": first.k,
            "method": first.method,
            "votes": first.votes,
            "mode": wire_mode,
            "task": first.task,
        }
        replies = await self._scatter(
            links, dict(base, live=list(live)), live
        )
        partials: List[List[List[Tuple[float, str]]]] = [
            [] for _ in group
        ]
        covered = 0
        tables_total = 0
        failed: List[str] = []
        shard_requests = len(live)

        def _absorb(reply: Dict[str, Any]) -> bool:
            """Fold one worker's per-query partials in; False = reject."""
            rows = reply["results"]
            if len(rows) != len(group):
                return False
            if not all(isinstance(row, list) for row in rows):
                return False
            for position, row in enumerate(rows):
                partials[position].append(
                    [(score, table_id) for score, table_id in row]
                )
            return True

        for worker_id in live:
            reply = replies[worker_id]
            if reply is None or not _absorb(reply):
                failed.append(worker_id)
                continue
            covered += int(reply.get("shard_size", 0))
            tables_total = max(tables_total, int(reply.get("tables_total", 0)))
        retried = False
        if failed and len(failed) < len(live):
            # Hedged retry: surviving replicas score exactly the tables
            # the failed primaries owned (the ring's shard delta), so
            # the union of partials still covers every reachable table
            # exactly once — for every query of the batch at once.
            retried = True
            survivors = tuple(
                worker_id for worker_id in live if worker_id not in failed
            )
            retry = dict(
                base, live=list(survivors), prev_live=list(live)
            )
            retry_replies = await self._scatter(links, retry, survivors)
            for worker_id in survivors:
                reply = retry_replies[worker_id]
                if reply is None or not _absorb(reply):
                    if worker_id not in failed:
                        failed.append(worker_id)
                    continue
                covered += int(reply.get("shard_size", 0))
            shard_requests += len(survivors)
        if failed and not any(partials):
            self.cluster_metrics.note_scatter(
                shard_requests, len(failed), retried, True, tables_total
            )
            return [
                HttpResponse(
                    503, error_to_json("no shard answered the scatter", 503)
                )
                for _ in group
            ]
        uncovered = max(0, tables_total - covered)
        degraded = bool(failed) or uncovered > 0
        self.cluster_metrics.note_scatter(
            shard_requests, len(failed), retried, degraded, uncovered
        )
        responses: List[HttpResponse] = []
        for position, parsed in enumerate(group):
            merged = merge_topk(partials[position], parsed.k)
            results = ResultSet(
                ScoredTable(score, table_id) for score, table_id in merged
            )
            payload = result_to_json(
                results, parsed, snapshot_version=epoch
            )
            payload["degraded"] = degraded
            payload["cluster"] = {
                "epoch": epoch,
                "workers_scattered": len(live),
                "failed_workers": failed,
                "hedged_retry": retried,
                "covered_tables": covered,
                "tables_total": tables_total,
                "uncovered_tables": uncovered,
            }
            responses.append(HttpResponse(200, payload))
        return responses

    async def _scatter(
        self,
        links: Dict[str, WorkerLink],
        message: Dict[str, Any],
        owners: Sequence[str],
    ) -> Dict[str, Optional[Dict[str, Any]]]:
        """Send one shard RPC per owner; ``None`` marks a failed shard."""
        outcomes = await asyncio.gather(
            *(
                self._one_shard(links[worker_id], worker_id, message)
                for worker_id in owners
            ),
        )
        return dict(zip(owners, outcomes))

    async def _one_shard(
        self,
        link: WorkerLink,
        worker_id: str,
        message: Dict[str, Any],
    ) -> Optional[Dict[str, Any]]:
        try:
            reply = await link.request(
                dict(message, owner=worker_id),
                timeout=self.config.shard_timeout,
            )
        except ClusterError:
            # Transport failure: count toward demotion so a killed
            # worker is confirmed dead after a few more observations.
            flipped = await self._note_failure(worker_id)
            if flipped:
                self._spawn_push()
            return None
        if not reply.get("ok"):
            if reply.get("stale_epoch"):
                # The worker missed a routing push (e.g. it registered
                # while a push was in flight): re-push asynchronously;
                # this query treats the shard as failed and hedges.
                self._spawn_push()
            return None
        if not isinstance(reply.get("results"), list):
            return None
        return reply

    def _spawn_push(self) -> None:
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._push_routing())
        self._push_tasks.add(task)
        task.add_done_callback(self._push_tasks.discard)


def _method_not_allowed() -> HttpResponse:
    return HttpResponse(405, error_to_json("method not allowed", 405))

"""Sharded scatter-gather serving over memmap segments.

The cluster layer turns the single-process :mod:`repro.serve` service
into a fleet: a data-free **coordinator** scatters every ``POST
/search`` across N **workers**, each of which scores the shard of
table ids it owns under the current routing epoch (consistent hashing
with R-way replication) and returns a top-k partial; the coordinator
merges partials with the bit-identical ``(-score, table_id)`` merge,
so cluster results equal single-process results exactly — in ``exact``
and ``prefilter`` mode alike.

Workers cold-start by memmapping spilled segment directories
(:mod:`repro.core.kernel.storage`), so N workers on a machine share
one copy of the corpus through the page cache.  Dead workers degrade
responses explicitly (``"degraded": true``) until the heartbeat loop
promotes replicas by flipping the routing epoch; new workers join the
same way — that epoch flip *is* live rebalance.

See ``docs/cluster.md`` for topology, fail-over semantics, and the
rebalance runbook.
"""

from repro.cluster.client import WorkerLink
from repro.cluster.coordinator import (
    ClusterConfig,
    ClusterCoordinator,
    ClusterMetrics,
)
from repro.cluster.harness import (
    ClusterHarness,
    CoordinatorThread,
    WorkerThread,
)
from repro.cluster.hashring import HashRing
from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    RoutingTable,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.cluster.worker import ClusterWorker, WorkerConfig

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterHarness",
    "ClusterMetrics",
    "ClusterWorker",
    "CoordinatorThread",
    "HashRing",
    "MAX_FRAME_BYTES",
    "RoutingTable",
    "WorkerConfig",
    "WorkerLink",
    "WorkerThread",
    "encode_frame",
    "read_frame",
    "write_frame",
]

"""Entity embeddings: skip-gram word2vec, RDF2Vec trainer, vector store."""

from repro.embeddings.rdf2vec import RDF2VecConfig, RDF2VecTrainer, train_rdf2vec
from repro.embeddings.store import EmbeddingStore
from repro.embeddings.transe import TransEConfig, TransETrainer, train_transe
from repro.embeddings.word2vec import SkipGramModel, Vocabulary

__all__ = [
    "EmbeddingStore",
    "SkipGramModel",
    "Vocabulary",
    "RDF2VecConfig",
    "RDF2VecTrainer",
    "train_rdf2vec",
    "TransEConfig",
    "TransETrainer",
    "train_transe",
]

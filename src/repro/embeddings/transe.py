"""TransE: translation-based knowledge-graph embeddings, from scratch.

The paper's conclusion plans to "explore the impact of alternative
embeddings and more advanced structural graph embeddings"; TransE
(Bordes et al., 2013) is the canonical structural alternative to the
walk-based RDF2Vec.  Each triple ``(h, r, t)`` is modeled as a
translation ``h + r ≈ t``; training minimizes the margin ranking loss

    sum max(0, gamma + d(h + r, t) - d(h' + r, t'))

over corrupted triples ``(h', r, t')`` with one endpoint replaced by a
random entity.  Entity vectors are renormalized to the unit ball each
epoch, as in the original paper.  The resulting vectors drop into the
same :class:`~repro.embeddings.store.EmbeddingStore` /
:class:`~repro.similarity.embedding.EmbeddingCosineSimilarity` stack as
RDF2Vec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.embeddings.store import EmbeddingStore
from repro.exceptions import ConfigurationError, EmbeddingError
from repro.kg.graph import KnowledgeGraph


@dataclass
class TransEConfig:
    """Hyperparameters for TransE training.

    Defaults are sized for the synthetic KGs of this reproduction; the
    original paper uses 50-100 dimensions with gamma = 1.
    """

    dimensions: int = 32
    margin: float = 1.0
    learning_rate: float = 0.05
    epochs: int = 50
    batch_size: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        if self.margin <= 0:
            raise ConfigurationError("margin must be positive")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")


class TransETrainer:
    """Trains TransE embeddings over a knowledge graph's triples."""

    def __init__(self, graph: KnowledgeGraph, config: TransEConfig = None):
        self.graph = graph
        self.config = config if config is not None else TransEConfig()

    # ------------------------------------------------------------------
    def _triples(
        self,
    ) -> Tuple[List[str], Dict[str, int], np.ndarray]:
        entities = list(self.graph.uris())
        entity_index = {uri: i for i, uri in enumerate(entities)}
        predicates = sorted(self.graph.predicates)
        predicate_index = {name: i for i, name in enumerate(predicates)}
        triples = np.asarray(
            [
                (entity_index[s], predicate_index[p], entity_index[o])
                for s, p, o in self.graph.edges()
            ],
            dtype=np.int64,
        )
        if triples.size == 0:
            raise EmbeddingError("graph has no edges: TransE needs triples")
        return entities, predicate_index, triples

    def train(self) -> EmbeddingStore:
        """Run margin-ranking SGD and return the entity store."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        entities, predicate_index, triples = self._triples()
        num_entities = len(entities)
        num_predicates = len(predicate_index)
        bound = 6.0 / np.sqrt(cfg.dimensions)
        entity_vecs = rng.uniform(-bound, bound,
                                  (num_entities, cfg.dimensions))
        relation_vecs = rng.uniform(-bound, bound,
                                    (num_predicates, cfg.dimensions))
        norms = np.linalg.norm(relation_vecs, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        relation_vecs /= norms

        for _ in range(cfg.epochs):
            # Renormalize entities to the unit ball (original paper).
            norms = np.linalg.norm(entity_vecs, axis=1, keepdims=True)
            np.maximum(norms, 1.0, out=norms)
            entity_vecs /= norms
            order = rng.permutation(len(triples))
            for start in range(0, len(order), cfg.batch_size):
                batch = triples[order[start : start + cfg.batch_size]]
                self._step(batch, entity_vecs, relation_vecs,
                           num_entities, rng)
        return EmbeddingStore(
            {uri: entity_vecs[i].copy() for i, uri in enumerate(entities)}
        )

    def _step(
        self,
        batch: np.ndarray,
        entity_vecs: np.ndarray,
        relation_vecs: np.ndarray,
        num_entities: int,
        rng: np.random.Generator,
    ) -> None:
        cfg = self.config
        heads, rels, tails = batch[:, 0], batch[:, 1], batch[:, 2]
        # Corrupt head or tail uniformly per triple.
        corrupt_heads = rng.random(len(batch)) < 0.5
        random_entities = rng.integers(0, num_entities, len(batch))
        neg_heads = np.where(corrupt_heads, random_entities, heads)
        neg_tails = np.where(corrupt_heads, tails, random_entities)

        h, r, t = entity_vecs[heads], relation_vecs[rels], entity_vecs[tails]
        nh, nt = entity_vecs[neg_heads], entity_vecs[neg_tails]
        pos_diff = h + r - t                  # gradient direction, L2
        neg_diff = nh + r - nt
        pos_dist = np.linalg.norm(pos_diff, axis=1)
        neg_dist = np.linalg.norm(neg_diff, axis=1)
        violating = cfg.margin + pos_dist - neg_dist > 0.0
        if not np.any(violating):
            return
        # d/dx ||x||_2 = x / ||x||; guard the zero vector.
        pos_unit = pos_diff[violating] / np.maximum(
            pos_dist[violating, None], 1e-12
        )
        neg_unit = neg_diff[violating] / np.maximum(
            neg_dist[violating, None], 1e-12
        )
        lr = cfg.learning_rate
        _scatter(entity_vecs, heads[violating], -lr * pos_unit)
        _scatter(entity_vecs, tails[violating], lr * pos_unit)
        _scatter(relation_vecs, rels[violating], -lr * (pos_unit - neg_unit))
        _scatter(entity_vecs, neg_heads[violating], lr * neg_unit)
        _scatter(entity_vecs, neg_tails[violating], -lr * neg_unit)


def _scatter(target: np.ndarray, indices: np.ndarray,
             updates: np.ndarray) -> None:
    """Mean-normalized scatter add (stable under repeated indices)."""
    unique, inverse, counts = np.unique(
        indices, return_inverse=True, return_counts=True
    )
    accumulated = np.zeros((unique.size, target.shape[1]))
    np.add.at(accumulated, inverse, updates)
    target[unique] += accumulated / counts[:, None]


def train_transe(graph: KnowledgeGraph, **overrides) -> EmbeddingStore:
    """Convenience wrapper: train TransE with keyword overrides."""
    return TransETrainer(graph, TransEConfig(**overrides)).train()

"""Skip-gram word2vec with negative sampling, implemented on numpy.

This is the learning core of RDF2Vec: the walk corpus is treated as
sentences and each token (entity or predicate URI) receives a dense
vector such that tokens sharing contexts land close in the learned
space.  The implementation follows Mikolov et al.'s SGNS objective::

    log s(v_c . v_o) + sum_{k} E[log s(-v_c . v_nk)]

with a unigram^0.75 negative-sampling distribution, linear learning-rate
decay, and mini-batched updates via ``np.add.at`` so training stays
vectorized end-to-end.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, EmbeddingError


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite; gradients saturate identically.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _scatter_mean_step(
    target: np.ndarray, indices: np.ndarray, grads: np.ndarray, lr: float
) -> None:
    """SGD step with gradients averaged per repeated index."""
    unique, inverse, counts = np.unique(
        indices, return_inverse=True, return_counts=True
    )
    accumulated = np.zeros((unique.size, target.shape[1]))
    np.add.at(accumulated, inverse, grads)
    target[unique] -= lr * accumulated / counts[:, None]


class Vocabulary:
    """Token-to-index mapping with unigram statistics."""

    def __init__(self, sentences: Sequence[Sequence[str]], min_count: int = 1):
        counts: Dict[str, int] = {}
        for sentence in sentences:
            for token in sentence:
                counts[token] = counts.get(token, 0) + 1
        self.index: Dict[str, int] = {}
        self.tokens: List[str] = []
        self.counts: List[int] = []
        for token, count in counts.items():
            if count >= min_count:
                self.index[token] = len(self.tokens)
                self.tokens.append(token)
                self.counts.append(count)
        if not self.tokens:
            raise EmbeddingError("vocabulary is empty after min_count filtering")

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self.index

    def encode(self, sentence: Sequence[str]) -> List[int]:
        """Map a sentence to known-token indices, dropping OOV tokens."""
        return [self.index[t] for t in sentence if t in self.index]

    def negative_sampling_distribution(self) -> np.ndarray:
        """Unigram distribution raised to 3/4, as in the original paper."""
        weights = np.asarray(self.counts, dtype=np.float64) ** 0.75
        return weights / weights.sum()


class SkipGramModel:
    """Trainable SGNS model over a fixed vocabulary.

    Parameters
    ----------
    dimensions:
        Embedding width.
    window:
        Max distance between center and context token.
    negative:
        Negative samples per positive pair.
    learning_rate:
        Initial SGD step size (decays linearly to 1e-4 of itself).
    epochs:
        Full passes over the corpus.
    batch_size:
        Pairs per vectorized update.
    subsample:
        Frequent-token subsampling threshold ``t`` (word2vec's ``-sample``):
        a token with corpus frequency ``f`` is kept with probability
        ``min(1, sqrt(t / f) + t / f)``.  ``0`` disables subsampling
        (the default — synthetic walk corpora are small); the original
        paper uses ``1e-3``-``1e-5`` on natural text.
    seed:
        Determinism seed for init and sampling.
    """

    def __init__(
        self,
        dimensions: int = 32,
        window: int = 3,
        negative: int = 5,
        learning_rate: float = 0.05,
        epochs: int = 3,
        batch_size: int = 1024,
        subsample: float = 0.0,
        seed: int = 0,
    ):
        if dimensions < 1:
            raise ConfigurationError("dimensions must be >= 1")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if negative < 1:
            raise ConfigurationError("negative must be >= 1")
        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        self.dimensions = dimensions
        self.window = window
        self.negative = negative
        self.learning_rate = learning_rate
        if subsample < 0:
            raise ConfigurationError("subsample must be >= 0")
        self.epochs = epochs
        self.batch_size = batch_size
        self.subsample = subsample
        self.seed = seed
        self.vocabulary: Vocabulary = None  # type: ignore[assignment]
        self.input_vectors: np.ndarray = None  # type: ignore[assignment]
        self.output_vectors: np.ndarray = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def _pairs(self, encoded: Sequence[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
        centers: List[int] = []
        contexts: List[int] = []
        for sentence in encoded:
            length = len(sentence)
            for position, center in enumerate(sentence):
                lo = max(0, position - self.window)
                hi = min(length, position + self.window + 1)
                for other in range(lo, hi):
                    if other != position:
                        centers.append(center)
                        contexts.append(sentence[other])
        return (
            np.asarray(centers, dtype=np.int64),
            np.asarray(contexts, dtype=np.int64),
        )

    def train(self, sentences: Sequence[Sequence[str]], min_count: int = 1) -> "SkipGramModel":
        """Fit embeddings on ``sentences``; returns ``self``."""
        rng = np.random.default_rng(self.seed)
        self.vocabulary = Vocabulary(sentences, min_count=min_count)
        vocab_size = len(self.vocabulary)
        scale = 1.0 / self.dimensions
        self.input_vectors = rng.uniform(-scale, scale, (vocab_size, self.dimensions))
        self.output_vectors = np.zeros((vocab_size, self.dimensions))
        encoded = [self.vocabulary.encode(s) for s in sentences]
        if self.subsample > 0.0:
            encoded = self._subsample(encoded, rng)
        centers, contexts = self._pairs(encoded)
        if centers.size == 0:
            raise EmbeddingError("no training pairs: corpus sentences too short")
        neg_dist = self.vocabulary.negative_sampling_distribution()
        total_steps = self.epochs * (1 + (centers.size - 1) // self.batch_size)
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(centers.size)
            for start in range(0, centers.size, self.batch_size):
                batch = order[start : start + self.batch_size]
                lr = self.learning_rate * max(
                    1.0 - step / total_steps, 1e-4
                )
                self._update(centers[batch], contexts[batch], neg_dist, lr, rng)
                step += 1
        return self

    def _subsample(
        self, encoded: Sequence[Sequence[int]], rng: np.random.Generator
    ) -> List[List[int]]:
        """Randomly drop frequent tokens (word2vec's -sample option)."""
        counts = np.asarray(self.vocabulary.counts, dtype=np.float64)
        frequencies = counts / counts.sum()
        keep = np.minimum(
            1.0,
            np.sqrt(self.subsample / frequencies)
            + self.subsample / frequencies,
        )
        return [
            [token for token in sentence if rng.random() < keep[token]]
            for sentence in encoded
        ]

    def _update(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        neg_dist: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> None:
        batch = centers.shape[0]
        center_vecs = self.input_vectors[centers]  # (B, D)
        # Positive pass.
        context_vecs = self.output_vectors[contexts]  # (B, D)
        pos_score = _sigmoid(np.einsum("bd,bd->b", center_vecs, context_vecs))
        pos_grad = (pos_score - 1.0)[:, None]  # d loss / d (dot)
        grad_center = pos_grad * context_vecs
        grad_context = pos_grad * center_vecs
        # Negative pass.
        negatives = rng.choice(
            len(neg_dist), size=(batch, self.negative), p=neg_dist
        )  # (B, K)
        neg_vecs = self.output_vectors[negatives]  # (B, K, D)
        neg_score = _sigmoid(np.einsum("bd,bkd->bk", center_vecs, neg_vecs))
        grad_center += np.einsum("bk,bkd->bd", neg_score, neg_vecs)
        grad_negatives = neg_score[:, :, None] * center_vecs[:, None, :]
        # Apply the *mean* gradient per parameter rather than the sum:
        # with small vocabularies a token recurs hundreds of times per
        # batch and summed stale gradients diverge.
        _scatter_mean_step(self.input_vectors, centers, grad_center, lr)
        _scatter_mean_step(self.output_vectors, contexts, grad_context, lr)
        _scatter_mean_step(
            self.output_vectors,
            negatives.reshape(-1),
            grad_negatives.reshape(-1, self.dimensions),
            lr,
        )

    # ------------------------------------------------------------------
    def vector(self, token: str) -> np.ndarray:
        """Return the learned input vector for ``token``."""
        if self.vocabulary is None:
            raise EmbeddingError("model has not been trained")
        try:
            return self.input_vectors[self.vocabulary.index[token]]
        except KeyError:
            raise EmbeddingError(f"token not in vocabulary: {token!r}") from None

    def vectors(self) -> Dict[str, np.ndarray]:
        """Return a token -> vector dictionary of all learned embeddings."""
        if self.vocabulary is None:
            raise EmbeddingError("model has not been trained")
        return {
            token: self.input_vectors[index]
            for token, index in self.vocabulary.index.items()
        }

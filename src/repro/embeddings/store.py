"""Embedding storage with fast cosine operations.

An :class:`EmbeddingStore` owns a dense matrix of L2-normalized entity
vectors, so cosine similarity is a dot product and batched similarity a
matrix-vector product.  The LSH layer also reads the raw matrix to
compute hyperplane signatures for all entities in one pass.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DimensionMismatchError, EmbeddingError

PathLike = Union[str, Path]


class EmbeddingStore:
    """Immutable registry of entity embeddings keyed by URI."""

    def __init__(self, vectors: Mapping[str, np.ndarray]):
        if not vectors:
            raise EmbeddingError("embedding store cannot be empty")
        self._uris: List[str] = list(vectors.keys())
        self._row_of: Dict[str, int] = {uri: i for i, uri in enumerate(self._uris)}
        first = np.asarray(next(iter(vectors.values())), dtype=np.float64)
        self.dimensions = int(first.shape[-1])
        matrix = np.empty((len(self._uris), self.dimensions))
        for i, uri in enumerate(self._uris):
            vec = np.asarray(vectors[uri], dtype=np.float64).reshape(-1)
            if vec.shape[0] != self.dimensions:
                raise DimensionMismatchError(self.dimensions, vec.shape[0])
            matrix[i] = vec
        self._matrix = matrix
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self._unit = matrix / norms

    # ------------------------------------------------------------------
    def __contains__(self, uri: str) -> bool:
        return uri in self._row_of

    def __len__(self) -> int:
        return len(self._uris)

    def __iter__(self) -> Iterator[str]:
        return iter(self._uris)

    def uris(self) -> List[str]:
        """Return all stored URIs in matrix row order."""
        return list(self._uris)

    def vector(self, uri: str) -> np.ndarray:
        """Return the raw (unnormalized) vector for ``uri``."""
        try:
            return self._matrix[self._row_of[uri]]
        except KeyError:
            raise EmbeddingError(f"no embedding for {uri!r}") from None

    def unit_vector(self, uri: str) -> np.ndarray:
        """Return the L2-normalized vector for ``uri``."""
        try:
            return self._unit[self._row_of[uri]]
        except KeyError:
            raise EmbeddingError(f"no embedding for {uri!r}") from None

    def matrix(self) -> np.ndarray:
        """Return a read-only view of the raw embedding matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    def cosine(self, a: str, b: str) -> float:
        """Cosine similarity between two stored entities."""
        return float(self.unit_vector(a) @ self.unit_vector(b))

    def cosine_to_all(self, uri: str) -> np.ndarray:
        """Cosine similarity of ``uri`` against every stored entity."""
        return self._unit @ self.unit_vector(uri)

    def nearest(self, uri: str, top_k: int = 10) -> List[Tuple[str, float]]:
        """Return the ``top_k`` most cosine-similar entities (excl. self).

        Selects the ``top_k + 1`` candidates with ``np.argpartition``
        (O(n) instead of the full O(n log n) argsort over every stored
        entity) and only sorts that bucket.  Ties break by ascending
        URI-insertion index, deterministically.
        """
        if top_k <= 0:
            return []
        sims = self.cosine_to_all(uri)
        total = len(self._uris)
        take = min(top_k + 1, total)  # +1 absorbs dropping ``uri`` itself
        if take < total:
            candidates = np.argpartition(-sims, take - 1)[:take]
        else:
            candidates = np.arange(total)
        order = candidates[np.lexsort((candidates, -sims[candidates]))]
        results: List[Tuple[str, float]] = []
        for index in order:
            candidate = self._uris[int(index)]
            if candidate == uri:
                continue
            results.append((candidate, float(sims[int(index)])))
            if len(results) == top_k:
                break
        return results

    def mean_vector(self, uris: Iterable[str]) -> Optional[np.ndarray]:
        """Average the raw vectors of ``uris`` (skipping unknown URIs).

        Used for the column-aggregation LSH variant of Section 6.2 and
        the TURL-like baseline's table pooling.  Returns ``None`` when no
        URI is known.
        """
        rows = [self._row_of[uri] for uri in uris if uri in self._row_of]
        if not rows:
            return None
        return self._matrix[rows].mean(axis=0)

    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Persist to a JSON file (URIs + vector lists)."""
        payload = {
            "dimensions": self.dimensions,
            "vectors": {uri: self.vector(uri).tolist() for uri in self._uris},
        }
        Path(path).write_text(json.dumps(payload), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "EmbeddingStore":
        """Load a store previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls(
            {uri: np.asarray(vec) for uri, vec in payload["vectors"].items()}
        )

"""RDF2Vec: knowledge-graph embeddings from random walks + skip-gram.

Following Ristoski & Paulheim (2016), the trainer extracts a corpus of
random walks from the KG (each walk a sequence of entity/predicate
tokens) and learns token vectors with skip-gram negative sampling.  Only
entity vectors are kept in the resulting
:class:`~repro.embeddings.store.EmbeddingStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings.store import EmbeddingStore
from repro.embeddings.word2vec import SkipGramModel
from repro.kg.graph import KnowledgeGraph
from repro.kg.walks import RandomWalker


@dataclass
class RDF2VecConfig:
    """Hyperparameters for RDF2Vec training.

    Defaults are sized for the synthetic KGs of this reproduction
    (thousands of entities); the original paper trains 200-dimensional
    vectors on walk depth 8 over all of DBpedia.
    """

    dimensions: int = 32
    walk_length: int = 4
    walks_per_entity: int = 12
    window: int = 3
    negative: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    include_predicates: bool = False
    subsample: float = 0.0
    seed: int = 0


class RDF2VecTrainer:
    """Trains entity embeddings for every node of a knowledge graph."""

    def __init__(self, graph: KnowledgeGraph, config: RDF2VecConfig = None):
        self.graph = graph
        self.config = config if config is not None else RDF2VecConfig()

    def train(self) -> EmbeddingStore:
        """Run walk extraction + skip-gram and return the entity store.

        Entities never visited by any walk (isolated nodes in a graph
        with no edges at all) still receive a vector because every entity
        seeds at least one walk containing itself.
        """
        cfg = self.config
        walker = RandomWalker(
            self.graph,
            walk_length=cfg.walk_length,
            walks_per_entity=cfg.walks_per_entity,
            include_predicates=cfg.include_predicates,
            seed=cfg.seed,
        )
        corpus = walker.walks()
        model = SkipGramModel(
            dimensions=cfg.dimensions,
            window=cfg.window,
            negative=cfg.negative,
            learning_rate=cfg.learning_rate,
            epochs=cfg.epochs,
            subsample=cfg.subsample,
            seed=cfg.seed,
        )
        model.train(corpus, min_count=1)
        all_vectors = model.vectors()
        entity_vectors = {
            uri: vec for uri, vec in all_vectors.items() if uri in self.graph
        }
        return EmbeddingStore(entity_vectors)


def train_rdf2vec(graph: KnowledgeGraph, **overrides) -> EmbeddingStore:
    """Convenience wrapper: train RDF2Vec with keyword overrides.

    Example
    -------
    >>> store = train_rdf2vec(graph, dimensions=16, epochs=1)  # doctest: +SKIP
    """
    config = RDF2VecConfig(**overrides)
    return RDF2VecTrainer(graph, config).train()

"""Thetis: semantic table search in semantic data lakes.

Reproduction of "Fantastic Tables and Where to Find Them: Table Search
in Semantic Data Lakes" (EDBT 2025).  The package exposes:

* :class:`~repro.system.Thetis` -- the one-stop search facade;
* ``repro.kg`` / ``repro.datalake`` / ``repro.linking`` -- the semantic
  data lake substrates (Definition 2.1);
* ``repro.core`` -- the SemRel score and exact search (Sections 4-5);
* ``repro.lsh`` -- LSEI prefiltering (Section 6);
* ``repro.embeddings`` / ``repro.similarity`` -- RDF2Vec and the entity
  similarities sigma;
* ``repro.baselines`` -- BM25, TURL-like, union- and join-search;
* ``repro.benchgen`` / ``repro.eval`` -- benchmark generation and
  evaluation (Section 7).
"""

from repro.core.query import Query
from repro.core.result import ResultSet, ScoredTable
from repro.core.search import TableSearchEngine
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.kg.entity import Entity
from repro.kg.graph import KnowledgeGraph
from repro.linking.mapping import EntityMapping
from repro.system import Thetis

__version__ = "1.0.0"

__all__ = [
    "Thetis",
    "Query",
    "ResultSet",
    "ScoredTable",
    "TableSearchEngine",
    "DataLake",
    "Table",
    "KnowledgeGraph",
    "Entity",
    "EntityMapping",
    "__version__",
]

"""Entity, type, and predicate value objects for the knowledge graph.

The knowledge graph of Section 2.2 is a labeled directed graph
``G = (N, E, lambda)``.  Nodes are entities or concepts, edges carry a
predicate, and a labeling function maps nodes and edges to human readable
literals.  These small immutable records are the vocabulary shared by the
rest of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


@dataclass(frozen=True, order=True)
class EntityType:
    """A node type (class) in the KG taxonomy, e.g. ``BaseballTeam``.

    Types are compared and hashed by :attr:`name` alone; ``parent`` is the
    immediate super-type name (``None`` for taxonomy roots).
    """

    name: str
    parent: str = field(default=None, compare=False)  # type: ignore[assignment]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Predicate:
    """An edge label in the KG, e.g. ``playsFor`` or ``locatedIn``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Entity:
    """An entity node in the KG.

    Parameters
    ----------
    uri:
        Globally unique identifier (compared/hashed on this alone).
    label:
        Human readable literal produced by the labeling function
        ``lambda``; used by entity linkers to match table mentions.
    types:
        The full set of type names annotating the entity, including all
        taxonomy ancestors (as DBpedia annotates ``Milwaukee Brewers``
        with both ``SportsTeam`` and ``Organisation``).
    aliases:
        Alternative surface forms for the label (used to simulate noisy
        mentions in the data lake).
    """

    uri: str
    label: str = ""
    types: FrozenSet[str] = frozenset()
    aliases: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.uri:
            raise ValueError("entity uri must be a non-empty string")
        if not isinstance(self.types, frozenset):
            object.__setattr__(self, "types", frozenset(self.types))

    def __hash__(self) -> int:
        return hash(self.uri)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Entity):
            return self.uri == other.uri
        return NotImplemented

    def has_type(self, type_name: str) -> bool:
        """Return whether the entity is annotated with ``type_name``."""
        return type_name in self.types

    def __str__(self) -> str:
        return self.label or self.uri

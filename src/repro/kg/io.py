"""Serialization of knowledge graphs to and from JSON.

The on-disk format is a single JSON document with three sections
(``taxonomy``, ``entities``, ``edges``), chosen over N-Triples for
round-trip fidelity of the type taxonomy and entity aliases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.kg.entity import Entity
from repro.kg.graph import KnowledgeGraph
from repro.kg.taxonomy import TypeTaxonomy

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def graph_to_dict(graph: KnowledgeGraph) -> dict:
    """Return a JSON-serializable dictionary for ``graph``."""
    taxonomy = [
        {"name": name, "parent": graph.taxonomy.parent(name)}
        for name in graph.taxonomy
    ]
    entities = [
        {
            "uri": e.uri,
            "label": e.label,
            "types": sorted(e.types),
            "aliases": list(e.aliases),
        }
        for e in graph.entities()
    ]
    edges = [list(edge) for edge in graph.edges()]
    return {
        "version": _FORMAT_VERSION,
        "taxonomy": taxonomy,
        "entities": entities,
        "edges": edges,
    }


def graph_from_dict(payload: dict) -> KnowledgeGraph:
    """Rebuild a :class:`KnowledgeGraph` from :func:`graph_to_dict` output."""
    taxonomy = TypeTaxonomy()
    # Two passes: roots first so parents always exist before children.
    entries = payload.get("taxonomy", [])
    for entry in entries:
        if entry["parent"] is None:
            taxonomy.add_type(entry["name"])
    for entry in entries:
        if entry["parent"] is not None:
            taxonomy.add_type(entry["name"], entry["parent"])
    graph = KnowledgeGraph(taxonomy)
    for record in payload.get("entities", []):
        graph.add_entity(
            Entity(
                uri=record["uri"],
                label=record.get("label", ""),
                types=frozenset(record.get("types", [])),
                aliases=tuple(record.get("aliases", [])),
            )
        )
    for subject, predicate, obj in payload.get("edges", []):
        graph.add_edge(subject, predicate, obj)
    return graph


def save_graph(graph: KnowledgeGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph)), encoding="utf-8")


def load_graph(path: PathLike) -> KnowledgeGraph:
    """Load a knowledge graph previously written by :func:`save_graph`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return graph_from_dict(payload)

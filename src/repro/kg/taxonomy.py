"""Type taxonomy (class hierarchy) for the knowledge graph.

Rich KGs annotate entities with types at several granularities: in
DBpedia, ``Milwaukee Brewers`` is both a ``BaseballTeam``, a
``SportsTeam``, and an ``Organisation``.  The taxonomy records the
``subClassOf`` edges between type names and answers ancestor/descendant
queries, which the KG generator uses to expand an entity's most specific
type into its full type set.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.exceptions import KnowledgeGraphError, UnknownTypeError


class TypeTaxonomy:
    """A forest of type names connected by ``subClassOf`` edges.

    The structure is intentionally simple: each type has at most one
    parent (a tree per root), which matches the dominant shape of the
    DBpedia ontology used in the paper.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[str]:
        return iter(self._parent)

    def add_type(self, name: str, parent: Optional[str] = None) -> None:
        """Register ``name`` with an optional parent type.

        The parent is registered implicitly (as a root) if it has not
        been seen before.  Re-adding an existing type with a conflicting
        parent raises :class:`KnowledgeGraphError`.
        """
        if not name:
            raise KnowledgeGraphError("type name must be non-empty")
        if parent is not None and parent not in self._parent:
            self.add_type(parent)
        if name in self._parent:
            existing = self._parent[name]
            if existing != parent and parent is not None and existing is not None:
                raise KnowledgeGraphError(
                    f"type {name!r} already has parent {existing!r}, "
                    f"cannot reassign to {parent!r}"
                )
            if parent is not None and existing is None:
                self._reparent(name, parent)
            return
        self._parent[name] = parent
        self._children.setdefault(name, [])
        if parent is not None:
            self._children.setdefault(parent, []).append(name)
            self._check_acyclic(name)

    def _reparent(self, name: str, parent: str) -> None:
        self._parent[name] = parent
        self._children.setdefault(parent, []).append(name)
        self._check_acyclic(name)

    def _check_acyclic(self, start: str) -> None:
        seen: Set[str] = set()
        node: Optional[str] = start
        while node is not None:
            if node in seen:
                raise KnowledgeGraphError(f"cycle in taxonomy through {start!r}")
            seen.add(node)
            node = self._parent[node]

    def parent(self, name: str) -> Optional[str]:
        """Return the immediate super-type of ``name`` (``None`` at roots)."""
        try:
            return self._parent[name]
        except KeyError:
            raise UnknownTypeError(name) from None

    def children(self, name: str) -> List[str]:
        """Return the immediate sub-types of ``name``."""
        if name not in self._parent:
            raise UnknownTypeError(name)
        return list(self._children.get(name, []))

    def ancestors(self, name: str, include_self: bool = True) -> List[str]:
        """Return the chain of super-types from ``name`` up to its root."""
        if name not in self._parent:
            raise UnknownTypeError(name)
        chain: List[str] = [name] if include_self else []
        node = self._parent[name]
        while node is not None:
            chain.append(node)
            node = self._parent[node]
        return chain

    def descendants(self, name: str, include_self: bool = False) -> Set[str]:
        """Return all transitive sub-types of ``name``."""
        if name not in self._parent:
            raise UnknownTypeError(name)
        result: Set[str] = {name} if include_self else set()
        frontier = list(self._children.get(name, []))
        while frontier:
            node = frontier.pop()
            if node in result:
                continue
            result.add(node)
            frontier.extend(self._children.get(node, []))
        return result

    def roots(self) -> List[str]:
        """Return all types without a parent."""
        return [name for name, parent in self._parent.items() if parent is None]

    def depth(self, name: str) -> int:
        """Return the distance from ``name`` to its root (root depth is 0)."""
        return len(self.ancestors(name)) - 1

    def expand(self, names: Iterable[str]) -> Set[str]:
        """Return ``names`` plus every taxonomy ancestor of each name.

        Unknown names pass through unchanged so that entities can carry
        ad-hoc types not present in the curated taxonomy (common in real
        KGs and tolerated throughout the library).
        """
        expanded: Set[str] = set()
        for name in names:
            if name in self._parent:
                expanded.update(self.ancestors(name))
            else:
                expanded.add(name)
        return expanded

    def lowest_common_ancestor(self, a: str, b: str) -> Optional[str]:
        """Return the deepest type that is an ancestor of both ``a`` and ``b``."""
        ancestors_a = set(self.ancestors(a))
        for candidate in self.ancestors(b):
            if candidate in ancestors_a:
                return candidate
        return None

"""Knowledge-graph substrate: entities, taxonomy, graph, walks, IO."""

from repro.kg.analytics import (
    GraphProfile,
    connected_components,
    degree_histogram,
    profile_graph,
    top_types,
    type_frequencies,
)
from repro.kg.entity import Entity, EntityType, Predicate
from repro.kg.graph import KnowledgeGraph
from repro.kg.io import graph_from_dict, graph_to_dict, load_graph, save_graph
from repro.kg.taxonomy import TypeTaxonomy
from repro.kg.walks import RandomWalker

__all__ = [
    "Entity",
    "EntityType",
    "Predicate",
    "KnowledgeGraph",
    "TypeTaxonomy",
    "RandomWalker",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "GraphProfile",
    "profile_graph",
    "degree_histogram",
    "type_frequencies",
    "connected_components",
    "top_types",
]

"""Random-walk extraction over the knowledge graph.

RDF2Vec (Ristoski & Paulheim, 2016) learns entity embeddings by running
word2vec over sequences of graph walks.  This module produces those
walk corpora: uniform random walks of bounded depth starting from every
(or a sampled subset of) entity, optionally interleaving predicate names
into the sequence as RDF2Vec does for its "walk with predicates" variant.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kg.graph import KnowledgeGraph


class RandomWalker:
    """Generates uniform random walks over a :class:`KnowledgeGraph`.

    Parameters
    ----------
    graph:
        The knowledge graph to walk.
    walk_length:
        Number of *hops* per walk; a walk visits ``walk_length + 1`` nodes.
    walks_per_entity:
        How many independent walks to start from each seed entity.
    include_predicates:
        When true, the emitted token sequence interleaves predicate names
        between node URIs, matching the original RDF2Vec formulation.
    undirected:
        Whether walks may traverse edges against their direction.  Real
        RDF2Vec walks follow edge direction; undirected walks mix entity
        contexts more aggressively, which helps on the small synthetic
        graphs used in this reproduction.
    seed:
        Seed for the internal PRNG (deterministic corpora for tests).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        walk_length: int = 4,
        walks_per_entity: int = 10,
        include_predicates: bool = False,
        undirected: bool = True,
        seed: int = 0,
    ):
        if walk_length < 1:
            raise ConfigurationError("walk_length must be >= 1")
        if walks_per_entity < 1:
            raise ConfigurationError("walks_per_entity must be >= 1")
        self.graph = graph
        self.walk_length = walk_length
        self.walks_per_entity = walks_per_entity
        self.include_predicates = include_predicates
        self.undirected = undirected
        self._rng = np.random.default_rng(seed)

    def walk_from(self, start: str) -> List[str]:
        """Return a single token sequence for one walk from ``start``.

        The walk stops early at sink nodes (no usable out-edges).
        """
        tokens: List[str] = [start]
        current = start
        for _ in range(self.walk_length):
            step = self._step(current)
            if step is None:
                break
            predicate, nxt = step
            if self.include_predicates:
                tokens.append(predicate)
            tokens.append(nxt)
            current = nxt
        return tokens

    def _step(self, uri: str) -> Optional[tuple]:
        out = self.graph.out_edges(uri)
        if self.undirected:
            out = out + self.graph.in_edges(uri)
        if not out:
            return None
        index = int(self._rng.integers(len(out)))
        return out[index]

    def walks(self, seeds: Optional[Iterable[str]] = None) -> List[List[str]]:
        """Return the full walk corpus.

        Parameters
        ----------
        seeds:
            Entities to start from.  Defaults to every entity in the
            graph, in insertion order (deterministic given the seed).
        """
        seed_list: Sequence[str]
        if seeds is None:
            seed_list = list(self.graph.uris())
        else:
            seed_list = list(seeds)
        corpus: List[List[str]] = []
        for uri in seed_list:
            for _ in range(self.walks_per_entity):
                corpus.append(self.walk_from(uri))
        return corpus

"""Knowledge-graph analytics: the numbers behind "~31M nodes, 763 types".

The paper characterizes its reference KG by node/edge counts, distinct
types, and distinct predicates (Section 7.1).  This module computes
those plus the structural statistics that matter for the search
algorithms: degree distribution (walk quality), type-frequency
histogram (the >50 % filter), and connected components (embedding
trainability — walks never cross components).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.kg.graph import KnowledgeGraph


@dataclass(frozen=True)
class GraphProfile:
    """Structural summary of a knowledge graph."""

    nodes: int
    edges: int
    distinct_types: int
    distinct_predicates: int
    mean_degree: float
    max_degree: int
    isolated_nodes: int
    connected_components: int
    largest_component: int

    def format_report(self) -> str:
        """Multi-line text report (paper Section 7.1 style)."""
        return "\n".join(
            [
                f"nodes:                {self.nodes:,}",
                f"edges:                {self.edges:,}",
                f"distinct types:       {self.distinct_types}",
                f"distinct predicates:  {self.distinct_predicates}",
                f"mean degree:          {self.mean_degree:.2f}",
                f"max degree:           {self.max_degree}",
                f"isolated nodes:       {self.isolated_nodes}",
                f"connected components: {self.connected_components} "
                f"(largest {self.largest_component:,})",
            ]
        )


def degree_histogram(graph: KnowledgeGraph) -> Dict[int, int]:
    """Return ``degree -> node count`` over undirected degrees."""
    histogram: Counter = Counter()
    for uri in graph.uris():
        histogram[graph.degree(uri)] += 1
    return dict(histogram)


def type_frequencies(graph: KnowledgeGraph) -> Dict[str, int]:
    """Return ``type name -> number of entities annotated with it``."""
    counts: Counter = Counter()
    for entity in graph.entities():
        counts.update(entity.types)
    return dict(counts)


def connected_components(graph: KnowledgeGraph) -> List[Set[str]]:
    """Undirected connected components, largest first."""
    seen: Set[str] = set()
    components: List[Set[str]] = []
    for start in graph.uris():
        if start in seen:
            continue
        component: Set[str] = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return sorted(components, key=len, reverse=True)


def profile_graph(graph: KnowledgeGraph) -> GraphProfile:
    """Compute the full :class:`GraphProfile` for ``graph``."""
    nodes = len(graph)
    degrees = [graph.degree(uri) for uri in graph.uris()]
    components = connected_components(graph)
    return GraphProfile(
        nodes=nodes,
        edges=graph.num_edges,
        distinct_types=len(graph.all_type_names()),
        distinct_predicates=len(graph.predicates),
        mean_degree=(sum(degrees) / nodes) if nodes else 0.0,
        max_degree=max(degrees, default=0),
        isolated_nodes=sum(1 for d in degrees if d == 0),
        connected_components=len(components),
        largest_component=len(components[0]) if components else 0,
    )


def top_types(graph: KnowledgeGraph, k: int = 10) -> List[Tuple[str, int]]:
    """The ``k`` most frequent types — candidates for the 50 % filter."""
    counts = type_frequencies(graph)
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

"""The knowledge-graph substrate: ``G = (N, E, lambda)`` of Section 2.2.

A :class:`KnowledgeGraph` stores entities (nodes), labeled directed edges
(predicates), the taxonomy of entity types, and a label index used by
entity linkers.  It is an in-memory structure tuned for the access
patterns of semantic table search: type-set lookup, neighborhood
expansion for random walks, and label-based entity resolution.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.exceptions import KnowledgeGraphError, UnknownEntityError
from repro.kg.entity import Entity
from repro.kg.taxonomy import TypeTaxonomy

Edge = Tuple[str, str, str]  # (subject uri, predicate, object uri)


class KnowledgeGraph:
    """A labeled directed multigraph of entities.

    Nodes are :class:`~repro.kg.entity.Entity` records keyed by URI.
    Edges carry a predicate name.  The graph also owns the
    :class:`~repro.kg.taxonomy.TypeTaxonomy` describing its type system.
    """

    def __init__(self, taxonomy: Optional[TypeTaxonomy] = None):
        self.taxonomy = taxonomy if taxonomy is not None else TypeTaxonomy()
        self._entities: Dict[str, Entity] = {}
        self._out: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        self._in: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
        self._predicates: Set[str] = set()
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_entity(self, entity: Entity) -> Entity:
        """Insert or replace an entity node, returning the stored record."""
        self._entities[entity.uri] = entity
        return entity

    def get(self, uri: str) -> Entity:
        """Return the entity for ``uri`` or raise :class:`UnknownEntityError`."""
        try:
            return self._entities[uri]
        except KeyError:
            raise UnknownEntityError(uri) from None

    def find(self, uri: str) -> Optional[Entity]:
        """Return the entity for ``uri`` or ``None`` if absent."""
        return self._entities.get(uri)

    def __contains__(self, uri: str) -> bool:
        return uri in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    def entities(self) -> Iterator[Entity]:
        """Iterate over all entity records."""
        return iter(self._entities.values())

    def uris(self) -> Iterator[str]:
        """Iterate over all entity URIs."""
        return iter(self._entities.keys())

    # ------------------------------------------------------------------
    # Edge management
    # ------------------------------------------------------------------
    def add_edge(self, subject: str, predicate: str, obj: str) -> None:
        """Add the directed edge ``subject --predicate--> obj``.

        Both endpoints must already be present in the graph.
        """
        if subject not in self._entities:
            raise UnknownEntityError(subject)
        if obj not in self._entities:
            raise UnknownEntityError(obj)
        if not predicate:
            raise KnowledgeGraphError("predicate must be non-empty")
        self._out[subject].append((predicate, obj))
        self._in[obj].append((predicate, subject))
        self._predicates.add(predicate)
        self._edge_count += 1

    @property
    def num_edges(self) -> int:
        """Total number of directed edges."""
        return self._edge_count

    @property
    def predicates(self) -> FrozenSet[str]:
        """All predicate names used by at least one edge."""
        return frozenset(self._predicates)

    def out_edges(self, uri: str) -> List[Tuple[str, str]]:
        """Return ``(predicate, object)`` pairs leaving ``uri``."""
        if uri not in self._entities:
            raise UnknownEntityError(uri)
        return list(self._out.get(uri, []))

    def in_edges(self, uri: str) -> List[Tuple[str, str]]:
        """Return ``(predicate, subject)`` pairs entering ``uri``."""
        if uri not in self._entities:
            raise UnknownEntityError(uri)
        return list(self._in.get(uri, []))

    def neighbors(self, uri: str, undirected: bool = True) -> List[str]:
        """Return neighbor URIs of ``uri``.

        With ``undirected=True`` (the default, as used by RDF2Vec walks)
        both out- and in-neighbors are returned, in insertion order and
        with duplicates preserved so that parallel edges weight the walk
        distribution naturally.
        """
        if uri not in self._entities:
            raise UnknownEntityError(uri)
        result = [obj for _, obj in self._out.get(uri, [])]
        if undirected:
            result.extend(subj for _, subj in self._in.get(uri, []))
        return result

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges as ``(subject, predicate, object)``."""
        for subject, pairs in self._out.items():
            for predicate, obj in pairs:
                yield (subject, predicate, obj)

    def degree(self, uri: str) -> int:
        """Return the undirected degree of ``uri``."""
        if uri not in self._entities:
            raise UnknownEntityError(uri)
        return len(self._out.get(uri, ())) + len(self._in.get(uri, ()))

    # ------------------------------------------------------------------
    # Semantics helpers
    # ------------------------------------------------------------------
    def types_of(self, uri: str) -> FrozenSet[str]:
        """Return the full type set of an entity (empty if untyped)."""
        return self.get(uri).types

    def entities_of_type(self, type_name: str) -> List[Entity]:
        """Return all entities annotated with ``type_name``."""
        return [e for e in self._entities.values() if type_name in e.types]

    def label_of(self, uri: str) -> str:
        """The labeling function ``lambda`` restricted to nodes."""
        return self.get(uri).label

    def all_type_names(self) -> Set[str]:
        """Return the union of type names used by at least one entity."""
        names: Set[str] = set()
        for entity in self._entities.values():
            names.update(entity.types)
        return names

    def stats(self) -> Dict[str, int]:
        """Return basic size statistics (nodes, edges, types, predicates)."""
        return {
            "nodes": len(self._entities),
            "edges": self._edge_count,
            "types": len(self.all_type_names()),
            "predicates": len(self._predicates),
        }

"""Benchmark generation: synthetic world, corpora, queries, expansion."""

from repro.benchgen.domains import (
    DEFAULT_DOMAINS,
    DomainSpec,
    RelationSpec,
    RoleSpec,
    TopicSpec,
    all_topics,
    topic_id,
)
from repro.benchgen.io import (
    load_queries,
    queries_from_dict,
    queries_to_dict,
    save_queries,
)
from repro.benchgen.kg_builder import World, WorldBuilder, build_taxonomy
from repro.benchgen.names import NameFactory
from repro.benchgen.queries import BenchmarkQuerySet, QueryGenerator
from repro.benchgen.synthetic import expand_lake
from repro.benchgen.tables import (
    GITTABLES_PROFILE,
    PROFILES,
    SYNTHETIC_PROFILE,
    WT2015_PROFILE,
    WT2019_PROFILE,
    CorpusProfile,
    GeneratedCorpus,
    TableGenerator,
)
from repro.benchgen.workload import SemanticBenchmark, build_benchmark

__all__ = [
    "DomainSpec",
    "RoleSpec",
    "RelationSpec",
    "TopicSpec",
    "DEFAULT_DOMAINS",
    "all_topics",
    "topic_id",
    "World",
    "WorldBuilder",
    "build_taxonomy",
    "NameFactory",
    "CorpusProfile",
    "TableGenerator",
    "GeneratedCorpus",
    "WT2015_PROFILE",
    "WT2019_PROFILE",
    "GITTABLES_PROFILE",
    "SYNTHETIC_PROFILE",
    "PROFILES",
    "QueryGenerator",
    "BenchmarkQuerySet",
    "queries_to_dict",
    "queries_from_dict",
    "save_queries",
    "load_queries",
    "expand_lake",
    "SemanticBenchmark",
    "build_benchmark",
]

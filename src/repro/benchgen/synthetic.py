"""Synthetic corpus expansion by row resampling (Section 7.4).

The paper scales WT2015 up to 1.7M tables by creating new tables from
randomly selected rows of existing tables, inserted in random order, and
including the originals in each corpus.  :func:`expand_lake` reproduces
that construction, carrying the gold entity links of each sampled row
into the synthetic table.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.exceptions import ConfigurationError
from repro.linking.mapping import EntityMapping


def expand_lake(
    base: DataLake,
    mapping: Optional[EntityMapping],
    num_new_tables: int,
    mean_rows: float = 9.6,
    seed: int = 0,
    include_base: bool = True,
    id_prefix: str = "syn",
) -> Tuple[DataLake, Optional[EntityMapping]]:
    """Generate ``num_new_tables`` synthetic tables by row resampling.

    Parameters
    ----------
    base:
        Source lake; each synthetic table resamples rows of *one*
        source table (keeping its schema and topical metadata).
    mapping:
        Gold links of the source lake; sampled rows keep their links,
        re-indexed to the synthetic row positions.  Pass ``None`` for
        unlinked corpora.
    num_new_tables:
        How many synthetic tables to create.
    mean_rows:
        Target mean rows of synthetic tables (paper: 9.6).
    include_base:
        Include the original tables in the output corpus, as the paper
        does for each synthetic corpus size.

    Returns
    -------
    (lake, mapping):
        The expanded lake and its entity mapping (``None`` in ==
        ``None`` out).
    """
    if num_new_tables < 0:
        raise ConfigurationError("num_new_tables must be >= 0")
    if len(base) == 0:
        raise ConfigurationError("cannot expand an empty lake")
    rng = np.random.default_rng(seed)
    source_tables = list(base)
    expanded = DataLake()
    new_mapping = mapping.copy() if mapping is not None else None
    if include_base:
        expanded.add_all(source_tables)
    for i in range(num_new_tables):
        source = source_tables[int(rng.integers(len(source_tables)))]
        take = max(1, min(source.num_rows, int(round(rng.gamma(1.6, mean_rows / 1.6)))))
        picked = rng.choice(source.num_rows, size=take, replace=False)
        order = rng.permutation(take)
        row_indices = [int(picked[int(j)]) for j in order]
        table_id = f"{id_prefix}-{i:07d}"
        rows = [list(source.rows[r]) for r in row_indices]
        expanded.add(
            Table(table_id, source.attributes, rows, metadata=dict(source.metadata))
        )
        if new_mapping is not None and mapping is not None:
            for new_row, old_row in enumerate(row_indices):
                for column in range(source.num_columns):
                    uri = mapping.entity_at(source.table_id, old_row, column)
                    if uri is not None:
                        new_mapping.link(table_id, new_row, column, uri)
    return expanded, new_mapping

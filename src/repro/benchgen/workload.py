"""Benchmark bundles: a ready-to-search semantic data lake.

:func:`build_benchmark` assembles the full experimental substrate for
one corpus profile — world KG, generated lake, entity links (gold for
pre-linked corpora, label-linked for the GitTables profile), paired
queries, and graded ground truth — behind one seed for full
reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.benchgen.kg_builder import World, WorldBuilder
from repro.benchgen.queries import BenchmarkQuerySet, QueryGenerator
from repro.benchgen.tables import (
    CorpusProfile,
    GeneratedCorpus,
    TableGenerator,
    WT2015_PROFILE,
)
from repro.datalake.lake import DataLake
from repro.datalake.stats import CorpusStatistics, corpus_statistics
from repro.eval.ground_truth import GroundTruth, build_ground_truth
from repro.linking.linker import LabelLinker
from repro.linking.mapping import EntityMapping


@dataclass
class SemanticBenchmark:
    """Everything one experiment needs: KG, lake, links, queries, GT."""

    name: str
    profile: CorpusProfile
    world: World
    lake: DataLake
    mapping: EntityMapping
    queries: BenchmarkQuerySet
    topics: Dict[str, str]

    @property
    def graph(self):
        """The reference knowledge graph."""
        return self.world.graph

    def ground_truth(self, query_id: str) -> GroundTruth:
        """Graded ground truth for one query id."""
        query = self.queries.all_queries()[query_id]
        return build_ground_truth(
            self.lake,
            self.mapping,
            query,
            query_category=self.queries.categories.get(query_id),
            query_domain=self.queries.domains.get(query_id),
        )

    def ground_truths(self) -> Dict[str, GroundTruth]:
        """Graded ground truth for every query."""
        return {
            query_id: self.ground_truth(query_id)
            for query_id in self.queries.all_queries()
        }

    def statistics(self) -> CorpusStatistics:
        """Table-2 style corpus statistics."""
        return corpus_statistics(self.lake, self.mapping)


def build_benchmark(
    profile: CorpusProfile = WT2015_PROFILE,
    num_tables: int = 500,
    num_query_pairs: int = 20,
    kg_scale: float = 1.0,
    seed: int = 0,
    world: Optional[World] = None,
) -> SemanticBenchmark:
    """Build a complete benchmark for ``profile``.

    Parameters
    ----------
    profile:
        Corpus shape (rows/cols/coverage/linking mode).
    num_tables:
        Corpus size (the paper's corpora are 238k-1.7M tables; scale to
        the machine at hand — shapes are size-stable, Section 7.4).
    num_query_pairs:
        Number of paired 1-/5-tuple queries (paper: 50).
    kg_scale:
        Multiplier on the world's entity counts.
    seed:
        Master seed; sub-seeds are derived deterministically.
    world:
        Optionally reuse an already built world (so several corpora can
        share one KG, as the paper's corpora share DBpedia).
    """
    if world is None:
        world = WorldBuilder(scale=kg_scale, seed=seed).build()
    generator = TableGenerator(world, profile, seed=seed + 1)
    corpus: GeneratedCorpus = generator.generate(num_tables)
    if corpus.mapping is not None:
        mapping = corpus.mapping
    else:
        # GitTables path: no shipped links; resolve mentions through the
        # label index as the paper does with Lucene (Section 7.4).
        linker = LabelLinker(world.graph, fuzzy=False)
        mapping = linker.link_lake(corpus.lake)
    queries = QueryGenerator(world, seed=seed + 2).generate(num_query_pairs)
    return SemanticBenchmark(
        name=profile.name,
        profile=profile,
        world=world,
        lake=corpus.lake,
        mapping=mapping,
        queries=queries,
        topics=corpus.topics,
    )

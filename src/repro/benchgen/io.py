"""Persistence for benchmark query sets.

The WT benchmarks distribute their query workloads as standalone files;
this module round-trips :class:`~repro.benchgen.queries.BenchmarkQuerySet`
through JSON so corpora generated once (e.g. by ``thetis generate``)
can be re-evaluated reproducibly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.benchgen.queries import BenchmarkQuerySet
from repro.core.query import Query

PathLike = Union[str, Path]


def queries_to_dict(queries: BenchmarkQuerySet) -> dict:
    """Return a JSON-serializable snapshot of a query set."""
    return {
        "version": 1,
        "queries": {
            query_id: [list(t) for t in query.tuples]
            for query_id, query in queries.all_queries().items()
        },
        "categories": dict(queries.categories),
        "domains": dict(queries.domains),
    }


def queries_from_dict(payload: dict) -> BenchmarkQuerySet:
    """Rebuild a query set from :func:`queries_to_dict` output.

    The 1-tuple / N-tuple split is recovered from the id suffix written
    by the generator (``-1t`` vs ``-<n>t``).
    """
    result = BenchmarkQuerySet()
    for query_id, tuples in payload.get("queries", {}).items():
        query = Query([tuple(t) for t in tuples])
        if query_id.endswith("-1t"):
            result.one_tuple[query_id] = query
        else:
            result.five_tuple[query_id] = query
    result.categories.update(payload.get("categories", {}))
    result.domains.update(payload.get("domains", {}))
    return result


def save_queries(queries: BenchmarkQuerySet, path: PathLike) -> None:
    """Write ``queries`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(queries_to_dict(queries)),
                          encoding="utf-8")


def load_queries(path: PathLike) -> BenchmarkQuerySet:
    """Load a query set previously written by :func:`save_queries`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return queries_from_dict(payload)

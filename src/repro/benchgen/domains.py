"""Declarative world specification for the synthetic semantic data lake.

The evaluation corpora of the paper (Wikipedia tables linked to DBpedia)
are heterogeneous: sports rosters, film credits, company listings, and
so on, all sharing geographic entities.  This module describes an
equivalent multi-domain world — a type taxonomy, per-domain entity
roles, the relations connecting them, and the *topics* (table shapes)
each domain produces.  The KG builder instantiates the spec at any
scale; the crucial semantic property is preserved by construction:
entities of the same fine type share type paths and graph
neighborhoods, different domains are only weakly connected (through
shared cities), and cross-domain confusion (two teams from the same
city, different sports) exists exactly as in the paper's motivating
example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Taxonomy edges as (type, parent); parents appear before children.
TAXONOMY_EDGES: Tuple[Tuple[str, Optional[str]], ...] = (
    ("Thing", None),
    ("Agent", "Thing"),
    ("Person", "Agent"),
    ("Athlete", "Person"),
    ("BaseballPlayer", "Athlete"),
    ("BasketballPlayer", "Athlete"),
    ("SoccerPlayer", "Athlete"),
    ("Artist", "Person"),
    ("Actor", "Artist"),
    ("Musician", "Artist"),
    ("Director", "Artist"),
    ("Politician", "Person"),
    ("Executive", "Person"),
    ("Organisation", "Agent"),
    ("SportsTeam", "Organisation"),
    ("BaseballTeam", "SportsTeam"),
    ("BasketballTeam", "SportsTeam"),
    ("SoccerTeam", "SportsTeam"),
    ("Company", "Organisation"),
    ("Place", "Thing"),
    ("City", "Place"),
    ("Country", "Place"),
    ("Venue", "Place"),
    ("Stadium", "Venue"),
    ("Work", "Thing"),
    ("Film", "Work"),
    ("MusicalWork", "Work"),
    ("Album", "MusicalWork"),
)


@dataclass(frozen=True)
class RoleSpec:
    """One entity role within a domain.

    ``count`` is the number of entities at scale 1.0; ``global_role``
    marks roles resolved against the shared world pool (cities,
    countries) rather than domain-private entities.
    """

    name: str
    type_name: str
    count: int = 0
    label_kind: str = "person"  # person | org | place | work
    global_role: bool = False


@dataclass(frozen=True)
class RelationSpec:
    """A predicate connecting two roles of the domain.

    Every subject entity receives ``fanout`` edges to randomly chosen
    object-role entities.
    """

    predicate: str
    subject_role: str
    object_role: str
    fanout: int = 1


@dataclass(frozen=True)
class TopicSpec:
    """A table shape: which roles appear as entity columns of one row.

    Each generated row is a *connected* tuple — the sampler walks the
    domain's relations from the first role outward, so a roster row
    holds a player, *their* team, and that team's city.
    """

    name: str
    roles: Tuple[str, ...]
    numeric_columns: Tuple[str, ...] = ()
    weight: float = 1.0


@dataclass(frozen=True)
class DomainSpec:
    """A thematic domain: roles, relations among them, table topics."""

    name: str
    roles: Tuple[RoleSpec, ...]
    relations: Tuple[RelationSpec, ...]
    topics: Tuple[TopicSpec, ...]

    def role(self, name: str) -> RoleSpec:
        """Look up a role by name."""
        for role in self.roles:
            if role.name == name:
                return role
        raise KeyError(f"domain {self.name!r} has no role {name!r}")


def _sports_domain(sport: str, player_type: str, team_type: str,
                   players: int, teams: int) -> DomainSpec:
    return DomainSpec(
        name=sport,
        roles=(
            RoleSpec("player", player_type, players, "person"),
            RoleSpec("team", team_type, teams, "org"),
            RoleSpec("stadium", "Stadium", max(4, teams), "place"),
            RoleSpec("city", "City", global_role=True),
        ),
        relations=(
            RelationSpec("playsFor", "player", "team"),
            RelationSpec("homeGround", "team", "stadium"),
            RelationSpec("basedIn", "team", "city"),
            RelationSpec("bornIn", "player", "city"),
            # Anchors every stadium to the shared geography, so no
            # entity is isolated (isolated nodes cannot be embedded).
            RelationSpec("locatedIn", "stadium", "city"),
        ),
        topics=(
            TopicSpec("roster", ("player", "team", "city"),
                      ("Season", "Games", "Score"), weight=2.0),
            TopicSpec("results", ("team", "stadium", "city"),
                      ("Year", "Wins", "Losses")),
            TopicSpec("transfers", ("player", "team"),
                      ("Year", "Fee")),
        ),
    )


#: The standard world: six domains plus the shared geography pool.
DEFAULT_DOMAINS: Tuple[DomainSpec, ...] = (
    _sports_domain("baseball", "BaseballPlayer", "BaseballTeam", 220, 16),
    _sports_domain("basketball", "BasketballPlayer", "BasketballTeam", 180, 14),
    _sports_domain("soccer", "SoccerPlayer", "SoccerTeam", 260, 20),
    DomainSpec(
        name="film",
        roles=(
            RoleSpec("actor", "Actor", 200, "person"),
            RoleSpec("director", "Director", 60, "person"),
            RoleSpec("film", "Film", 160, "work"),
            RoleSpec("city", "City", global_role=True),
        ),
        relations=(
            RelationSpec("starring", "film", "actor", fanout=3),
            RelationSpec("directedBy", "film", "director"),
            RelationSpec("bornIn", "actor", "city"),
            RelationSpec("bornIn", "director", "city"),
        ),
        topics=(
            TopicSpec("credits", ("film", "actor", "director"),
                      ("Year", "Runtime"), weight=2.0),
            TopicSpec("filmography", ("actor", "film"),
                      ("Year", "Rating")),
        ),
    ),
    DomainSpec(
        name="music",
        roles=(
            RoleSpec("musician", "Musician", 150, "person"),
            RoleSpec("album", "Album", 180, "work"),
            RoleSpec("city", "City", global_role=True),
        ),
        relations=(
            RelationSpec("byArtist", "album", "musician"),
            RelationSpec("bornIn", "musician", "city"),
        ),
        topics=(
            TopicSpec("discography", ("musician", "album"),
                      ("Year", "Tracks", "Sales"), weight=2.0),
            TopicSpec("charts", ("album", "musician"),
                      ("Week", "Position")),
        ),
    ),
    DomainSpec(
        name="business",
        roles=(
            RoleSpec("company", "Company", 140, "company"),
            RoleSpec("ceo", "Executive", 140, "person"),
            RoleSpec("city", "City", global_role=True),
            RoleSpec("country", "Country", global_role=True),
        ),
        relations=(
            RelationSpec("leadBy", "company", "ceo"),
            RelationSpec("headquarteredIn", "company", "city"),
            RelationSpec("operatesIn", "company", "country", fanout=2),
            RelationSpec("bornIn", "ceo", "city"),
        ),
        topics=(
            TopicSpec("listings", ("company", "ceo", "city"),
                      ("Founded", "Revenue", "Employees"), weight=2.0),
            TopicSpec("markets", ("company", "country"),
                      ("Year", "Share")),
        ),
    ),
    DomainSpec(
        name="politics",
        roles=(
            RoleSpec("politician", "Politician", 120, "person"),
            RoleSpec("city", "City", global_role=True),
            RoleSpec("country", "Country", global_role=True),
        ),
        relations=(
            RelationSpec("mayorOf", "politician", "city"),
            RelationSpec("citizenOf", "politician", "country"),
        ),
        topics=(
            TopicSpec("officials", ("politician", "city", "country"),
                      ("Term", "Votes"), weight=1.5),
        ),
    ),
)


#: Shared geography pool at scale 1.0.
DEFAULT_NUM_COUNTRIES = 12
DEFAULT_NUM_CITIES = 70


def all_topics(domains: Tuple[DomainSpec, ...] = DEFAULT_DOMAINS) -> List[Tuple[str, TopicSpec]]:
    """Flatten domains to ``(domain name, topic)`` pairs."""
    return [(d.name, topic) for d in domains for topic in d.topics]


def topic_id(domain_name: str, topic: TopicSpec) -> str:
    """Canonical category identifier stamped on tables and queries."""
    return f"{domain_name}/{topic.name}"

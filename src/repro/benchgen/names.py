"""Deterministic label generation for synthetic entities.

Labels must look like real table mentions (the entity linker matches on
them) and be globally unique so gold links are unambiguous.  The
factory composes labels from word lists and guarantees uniqueness by
appending a roman-numeral style disambiguator on collision.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

_FIRST = (
    "James Mary Robert Linda Michael Susan David Karen Carlos Elena Hiro "
    "Yuki Omar Fatima Ivan Nadia Pedro Lucia Samuel Ruth Victor Alma Dmitri "
    "Ingrid Kofi Amara Liang Mei Raj Priya Sean Aoife Lars Astrid Mateo "
    "Camila Tomas Hana Felix Iris"
).split()

# Surnames are generated combinatorially from syllables (~1600 forms)
# so that distinct entities rarely share a surname token - real-world
# name diversity, which keeps keyword baselines honest.
_SURNAME_HEADS = (
    "Ram Tol Ves Kar Lin Mor Hal Ben Sor Gal Fen Dur Pel Ras Vin Col Mar "
    "Tan Bor Hel Kes Lom Nar Per Quin Rol Sal Tor Ul Var Wen Yor Zan Bran "
    "Cros Dal Er Fos Gri Hol"
).split()

_SURNAME_TAILS = (
    "vik sen dahl berg strom quist holm gard lund mark son etti ano elli "
    "osa ira eda uchi moto kawa oka awa ez es ano"
).split()

_CITY_HEADS = (
    "Brook River Oak Maple Stone Clear Fair Green Silver North South East "
    "West Lake Hill Spring Ash Cedar Elm Iron Gold Mill Bay Fox Pine Wolf"
).split()

_CITY_TAILS = (
    "dale ton ville field ford haven port view crest wood burg mont shore "
    "bridge gate brook stead march ham ley"
).split()

_MASCOTS = (
    "Hawks Tigers Bears Wolves Eagles Falcons Sharks Comets Giants Royals "
    "Raptors Storm Thunder Blaze Knights Pirates Rangers Chiefs Stars Bulls "
    "Lynx Cougars Vipers Stallions Herons Badgers Otters Ravens Bisons "
    "Panthers Drakes Foxes Owls Cranes Hornets Jackals Lions Mustangs "
    "Ospreys Pumas Rhinos Seals Terriers Vultures Wasps Whalers Yaks "
    "Condors Dingoes Elks Gulls Ibises Jaguars Kites Llamas Moose Narwhals"
).split()

_COMPANY_HEADS = (
    "Vex Nor Alt Quan Zen Hex Lum Opt Syn Ver Ax Cor Del Flux Gen Hel Ion "
    "Kin Lex Mon"
).split()

_COMPANY_TAILS = ("um Corp", "ia Labs", "on Systems", "ix Group", "eo Inc",
                  "ara Holdings", "ent Partners", "ova Industries")

_WORK_ADJ = (
    "Silent Crimson Golden Hidden Broken Distant Endless Fallen Frozen "
    "Gentle Hollow Iron Lost Midnight Pale Quiet Restless Scarlet Velvet Wild"
).split()

_WORK_NOUN = (
    "River Sky Garden Mirror Harbor Crown Ember Echo Voyage Horizon Letter "
    "Season Shadow Signal Summer Tide Tower Window Winter Orchard"
).split()


class NameFactory:
    """Generates unique, human-plausible labels per label kind."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._used: Set[str] = set()

    def _pick(self, words: List[str]) -> str:
        return words[int(self._rng.integers(len(words)))]

    def _unique(self, base: str) -> str:
        label = base
        suffix = 2
        while label in self._used:
            label = f"{base} {suffix}"
            suffix += 1
        self._used.add(label)
        return label

    def person(self) -> str:
        """A first-last person name, e.g. ``Elena Ramvik``."""
        surname = (
            f"{self._pick(_SURNAME_HEADS)}{self._pick(_SURNAME_TAILS)}"
        )
        return self._unique(f"{self._pick(_FIRST)} {surname}")

    def city(self) -> str:
        """A compound city name, e.g. ``Brookdale``."""
        return self._unique(f"{self._pick(_CITY_HEADS)}{self._pick(_CITY_TAILS)}")

    def country(self) -> str:
        """A country-like name, e.g. ``Northam Republic``."""
        head = f"{self._pick(_CITY_HEADS)}{self._pick(_CITY_TAILS)}".capitalize()
        form = self._pick(["Republic", "Kingdom", "Union", "Federation", "States"])
        return self._unique(f"{head} {form}")

    def team(self, city_label: str) -> str:
        """A team name anchored to its city, e.g. ``Brookdale Hawks``."""
        return self._unique(f"{city_label} {self._pick(_MASCOTS)}")

    def stadium(self, city_label: str) -> str:
        """A venue name, e.g. ``Brookdale Stadium``."""
        kind = self._pick(["Stadium", "Arena", "Park", "Field", "Dome"])
        return self._unique(f"{city_label} {kind}")

    def company(self) -> str:
        """A company name, e.g. ``Vexum Corp``."""
        return self._unique(
            f"{self._pick(_COMPANY_HEADS)}{self._pick(list(_COMPANY_TAILS))}"
        )

    def work(self) -> str:
        """A film/album title, e.g. ``The Silent River``."""
        return self._unique(
            f"The {self._pick(_WORK_ADJ)} {self._pick(_WORK_NOUN)}"
        )

"""World construction: instantiate the domain spec as a knowledge graph.

The builder creates the shared geography pool, every domain's role
entities with full taxonomy-expanded type sets, and the relation edges
connecting them.  The resulting :class:`World` keeps role/relation
indexes so the table generator can sample *connected* entity tuples —
a roster row holds a player, their actual team, and that team's city.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.benchgen.domains import (
    DEFAULT_DOMAINS,
    DEFAULT_NUM_CITIES,
    DEFAULT_NUM_COUNTRIES,
    TAXONOMY_EDGES,
    DomainSpec,
    TopicSpec,
)
from repro.benchgen.names import NameFactory
from repro.exceptions import ConfigurationError
from repro.kg.entity import Entity
from repro.kg.graph import KnowledgeGraph
from repro.kg.taxonomy import TypeTaxonomy

RoleKey = Tuple[str, str]  # (domain name, role name); domain "" = global


def build_taxonomy() -> TypeTaxonomy:
    """Instantiate the fixed world taxonomy."""
    taxonomy = TypeTaxonomy()
    for name, parent in TAXONOMY_EDGES:
        taxonomy.add_type(name, parent)
    return taxonomy


@dataclass
class World:
    """A built world: the KG plus the sampling indexes over it."""

    graph: KnowledgeGraph
    domains: Tuple[DomainSpec, ...]
    role_entities: Dict[RoleKey, List[str]] = field(default_factory=dict)
    #: (domain, subject role, object role) -> subject uri -> object uris
    forward: Dict[Tuple[str, str, str], Dict[str, List[str]]] = field(
        default_factory=dict
    )

    def domain(self, name: str) -> DomainSpec:
        """Look up a domain spec by name."""
        for spec in self.domains:
            if spec.name == name:
                return spec
        raise KeyError(f"unknown domain {name!r}")

    def entities_for_role(self, domain_name: str, role_name: str) -> List[str]:
        """Entities filling a role (global roles resolve to the shared pool)."""
        spec = self.domain(domain_name)
        role = spec.role(role_name)
        key = ("", role_name) if role.global_role else (domain_name, role_name)
        return self.role_entities.get(key, [])

    # ------------------------------------------------------------------
    def sample_topic_row(
        self,
        domain_name: str,
        topic: TopicSpec,
        rng: np.random.Generator,
        anchor: Optional[str] = None,
    ) -> List[str]:
        """Sample one connected entity tuple for ``topic``.

        The first role is drawn uniformly (or set to ``anchor``); every
        later role is resolved by following a relation from an
        already-chosen entity when one exists, falling back to a uniform
        draw from the role pool (still topically coherent).
        """
        chosen: Dict[str, str] = {}
        row: List[str] = []
        for role_name in topic.roles:
            uri = anchor if (anchor is not None and not chosen) else None
            if uri is None:
                uri = self._resolve_role(domain_name, role_name, chosen, rng)
            chosen[role_name] = uri
            row.append(uri)
        return row

    def _resolve_role(
        self,
        domain_name: str,
        role_name: str,
        chosen: Dict[str, str],
        rng: np.random.Generator,
    ) -> str:
        # Try to walk an existing relation from an already chosen entity.
        for prior_role, prior_uri in chosen.items():
            targets = self.forward.get(
                (domain_name, prior_role, role_name), {}
            ).get(prior_uri)
            if targets:
                return targets[int(rng.integers(len(targets)))]
        pool = self.entities_for_role(domain_name, role_name)
        if not pool:
            raise ConfigurationError(
                f"role {role_name!r} of domain {domain_name!r} has no entities"
            )
        return pool[int(rng.integers(len(pool)))]


class WorldBuilder:
    """Builds a :class:`World` from a domain spec at a given scale."""

    def __init__(
        self,
        domains: Tuple[DomainSpec, ...] = DEFAULT_DOMAINS,
        scale: float = 1.0,
        seed: int = 0,
    ):
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        self.domains = domains
        self.scale = scale
        self.seed = seed

    def _count(self, base: int) -> int:
        return max(2, int(round(base * self.scale)))

    def build(self) -> World:
        """Construct the knowledge graph and sampling indexes."""
        rng = np.random.default_rng(self.seed)
        names = NameFactory(rng)
        graph = KnowledgeGraph(build_taxonomy())
        world = World(graph=graph, domains=self.domains)
        city_labels: Dict[str, str] = {}

        # Shared geography pool.
        countries: List[str] = []
        for i in range(self._count(DEFAULT_NUM_COUNTRIES)):
            uri = f"kg:country/{i}"
            graph.add_entity(
                Entity(uri, names.country(),
                       frozenset(graph.taxonomy.ancestors("Country")))
            )
            countries.append(uri)
        cities: List[str] = []
        for i in range(self._count(DEFAULT_NUM_CITIES)):
            uri = f"kg:city/{i}"
            label = names.city()
            graph.add_entity(
                Entity(uri, label,
                       frozenset(graph.taxonomy.ancestors("City")))
            )
            city_labels[uri] = label
            cities.append(uri)
        for uri in cities:
            graph.add_edge(uri, "locatedIn",
                           countries[int(rng.integers(len(countries)))])
        world.role_entities[("", "city")] = cities
        world.role_entities[("", "country")] = countries

        # Domain entities.
        for spec in self.domains:
            for role in spec.roles:
                if role.global_role:
                    continue
                uris: List[str] = []
                type_set = frozenset(graph.taxonomy.ancestors(role.type_name))
                for i in range(self._count(role.count)):
                    uri = f"kg:{spec.name}/{role.name}/{i}"
                    label = self._label_for(role.label_kind, names, rng,
                                            cities, city_labels)
                    graph.add_entity(Entity(uri, label, type_set))
                    uris.append(uri)
                world.role_entities[(spec.name, role.name)] = uris

        # Relations (and their role-level forward index).
        for spec in self.domains:
            for relation in spec.relations:
                subjects = world.entities_for_role(spec.name, relation.subject_role)
                objects = world.entities_for_role(spec.name, relation.object_role)
                if not subjects or not objects:
                    continue
                index: Dict[str, List[str]] = defaultdict(list)
                for subject in subjects:
                    picks = rng.choice(
                        len(objects),
                        size=min(relation.fanout, len(objects)),
                        replace=False,
                    )
                    for pick in np.atleast_1d(picks):
                        obj = objects[int(pick)]
                        graph.add_edge(subject, relation.predicate, obj)
                        index[subject].append(obj)
                world.forward[
                    (spec.name, relation.subject_role, relation.object_role)
                ] = dict(index)
        return world

    @staticmethod
    def _label_for(
        kind: str,
        names: NameFactory,
        rng: np.random.Generator,
        cities: List[str],
        city_labels: Dict[str, str],
    ) -> str:
        if kind == "person":
            return names.person()
        if kind == "work":
            return names.work()
        if kind == "company":
            return names.company()
        if kind == "place":
            city = city_labels[cities[int(rng.integers(len(cities)))]]
            return names.stadium(city)
        # "org": sports teams anchor their name to a city, which creates
        # the paper's cross-domain confusion (same city, different sport).
        city = city_labels[cities[int(rng.integers(len(cities)))]]
        return names.team(city)

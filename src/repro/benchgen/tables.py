"""Table generation: corpora with the shape profiles of Table 2.

Each profile pins the mean rows, mean columns, and entity-link coverage
of one evaluation corpus (WT2015, WT2019, GitTables, Synthetic).  Tables
are generated per topic: entity columns hold labels of connected KG
entities, numeric filler columns pad the schema to the target width,
and a gold :class:`~repro.linking.mapping.EntityMapping` records the
links for pre-linked corpora (the WT benchmarks ship links; GitTables
does not and is linked at load time via the label index instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.benchgen.domains import DomainSpec, TopicSpec, topic_id
from repro.benchgen.kg_builder import World
from repro.datalake.lake import DataLake
from repro.datalake.table import Table
from repro.exceptions import ConfigurationError
from repro.linking.mapping import EntityMapping


@dataclass(frozen=True)
class CorpusProfile:
    """Shape parameters of one evaluation corpus (paper Table 2)."""

    name: str
    mean_rows: float
    mean_columns: float
    coverage: float
    prelinked: bool = True

    def __post_init__(self) -> None:
        if self.mean_rows < 2:
            raise ConfigurationError("mean_rows must be >= 2")
        if not 0.0 <= self.coverage <= 1.0:
            raise ConfigurationError("coverage must be within [0, 1]")


#: Profiles mirroring the paper's Table 2 (rows/cols/coverage).
WT2015_PROFILE = CorpusProfile("wt2015", 35.1, 5.8, 0.277)
WT2019_PROFILE = CorpusProfile("wt2019", 23.9, 6.3, 0.182)
GITTABLES_PROFILE = CorpusProfile("gittables", 142.0, 12.0, 0.296, prelinked=False)
SYNTHETIC_PROFILE = CorpusProfile("synthetic", 9.6, 5.8, 0.348)

PROFILES: Dict[str, CorpusProfile] = {
    p.name: p
    for p in (WT2015_PROFILE, WT2019_PROFILE, GITTABLES_PROFILE, SYNTHETIC_PROFILE)
}


@dataclass
class GeneratedCorpus:
    """Output of the generator: lake, gold links, per-table topics."""

    lake: DataLake
    mapping: Optional[EntityMapping]
    topics: Dict[str, str]  # table id -> topic id


class TableGenerator:
    """Generates a data lake from a built world under a corpus profile.

    Parameters
    ----------
    world:
        The built KG world to sample entities from.
    profile:
        Corpus shape targets (rows/cols/coverage/linking mode).
    seed:
        Determinism seed.
    drop_role_prob:
        Probability of dropping each non-leading entity role from a
        table's schema (schema variation within a topic).
    noise_row_prob:
        Fraction of rows mentioning entities from a different domain
        (topical noise, as in real web tables).
    """

    def __init__(
        self,
        world: World,
        profile: CorpusProfile,
        seed: int = 0,
        drop_role_prob: float = 0.2,
        noise_row_prob: float = 0.15,
    ):
        self.world = world
        self.profile = profile
        self.drop_role_prob = drop_role_prob
        self.noise_row_prob = noise_row_prob
        self._rng = np.random.default_rng(seed)
        self._topic_pool: List[Tuple[DomainSpec, TopicSpec]] = [
            (domain, topic)
            for domain in world.domains
            for topic in domain.topics
        ]
        weights = np.asarray(
            [topic.weight for _, topic in self._topic_pool], dtype=np.float64
        )
        self._topic_weights = weights / weights.sum()

    # ------------------------------------------------------------------
    def _num_rows(self) -> int:
        # Gamma draw: right-skewed like real web-table size distributions.
        mean = self.profile.mean_rows
        value = self._rng.gamma(shape=1.6, scale=mean / 1.6)
        return max(2, int(round(value)))

    def _numeric_value(self, column_name: str) -> float:
        name = column_name.lower()
        if name in ("year", "season", "founded", "term"):
            return int(self._rng.integers(1950, 2025))
        if name in ("week", "position", "games", "wins", "losses", "tracks"):
            return int(self._rng.integers(0, 101))
        return float(np.round(self._rng.uniform(0.0, 1000.0), 2))

    def _mangle(self, label: str, row: int) -> str:
        """Make a mention the exact label linker cannot resolve.

        Emulates GitTables cells whose text does not match any KG label
        (abbreviations, codes, typos).
        """
        head = label.split()[0][:4]
        return f"{head}-{row}{int(self._rng.integers(10, 100))}"

    def _surface_variant(self, label: str) -> str:
        """A realistic alternate surface form of an entity mention.

        Unlinked cells in real web tables are frequently mentions the
        linker could not resolve - initials, partial names, truncations.
        Writing such variants (instead of the clean label) keeps keyword
        search honest: exact matching only sees the mentions that would
        genuinely match.
        """
        tokens = label.split()
        if len(tokens) == 1:
            return tokens[0][:3] + "."
        choice = self._rng.random()
        if choice < 0.4:
            return f"{tokens[0][0]}. {' '.join(tokens[1:])}"  # E. Ramirez
        if choice < 0.7:
            return tokens[-1]  # Ramirez
        return f"{tokens[0]} {tokens[1][0]}."  # Elena R.

    def _table_link_probability(self, num_attrs: int, num_entity_cols: int) -> float:
        """Per-cell link probability for one table.

        Real corpora have *heterogeneous* per-table coverage (some
        tables are fully linked, others barely), which the Figure 6
        experiment depends on.  The probability is drawn from a Beta
        distribution whose mean hits the profile's table-wide coverage
        target after accounting for unlinkable numeric columns.
        """
        target = min(
            0.97, self.profile.coverage * num_attrs / max(1, num_entity_cols)
        )
        alpha = 1.5
        beta = alpha * (1.0 - target) / target
        return float(min(1.0, self._rng.beta(alpha, beta)))

    def _noise_row_entities(self, domain: DomainSpec, width: int) -> List[str]:
        """Entities for an off-topic noise row.

        Real web tables are not topically pure: footers, cross-listings,
        and mixed content inject rows about other subjects.  These rows
        are what separates max- from avg-row aggregation (Section 7.2).
        """
        others = [d for d in self.world.domains if d.name != domain.name]
        other = others[int(self._rng.integers(len(others)))]
        pools = [
            self.world.entities_for_role(other.name, role.name)
            for role in other.roles
        ]
        pools = [p for p in pools if p]
        row = []
        for i in range(width):
            pool = pools[i % len(pools)]
            row.append(pool[int(self._rng.integers(len(pool)))])
        return row

    # ------------------------------------------------------------------
    def generate_table(
        self,
        table_id: str,
        domain: DomainSpec,
        topic: TopicSpec,
        mapping: Optional[EntityMapping],
        num_rows: Optional[int] = None,
    ) -> Table:
        """Generate one table for ``topic`` and record its gold links.

        Web-table realism knobs (all deterministic under the seed):

        * *schema variation* — beyond the topic's first role, each role
          is independently dropped with probability ``drop_role_prob``
          and the final column order is shuffled, so same-topic tables
          are related but rarely perfectly unionable;
        * *noise rows* — a fraction of rows mention entities from a
          different domain (mixed content);
        * *heterogeneous coverage* — the linked fraction varies per
          table around the profile's target.
        """
        entity_roles = [topic.roles[0]] + [
            role for role in topic.roles[1:]
            if self._rng.random() >= self.drop_role_prob
        ]
        target_cols = self.profile.mean_columns + self._rng.normal(0.0, 1.0)
        extra = max(0, int(round(target_cols)) - len(entity_roles))
        numeric_names = list(topic.numeric_columns)
        index = 1
        while len(numeric_names) < extra:
            numeric_names.append(f"Value{index}")
            index += 1
        numeric_names = numeric_names[:extra] if extra else []
        base_attributes = (
            [role.capitalize() for role in entity_roles] + numeric_names
        )
        # Shuffled column order: entity columns can appear anywhere.
        order = list(self._rng.permutation(len(base_attributes)))
        attributes = [base_attributes[i] for i in order]
        entity_positions = {
            order.index(i): entity_roles[i] for i in range(len(entity_roles))
        }
        rows: List[List[object]] = []
        n_rows = num_rows if num_rows is not None else self._num_rows()
        link_probability = self._table_link_probability(
            len(attributes), len(entity_roles)
        )
        reduced_topic = TopicSpec(topic.name, tuple(entity_roles))
        first_topic_row: List[str] = []
        for row_index in range(n_rows):
            if self._rng.random() < self.noise_row_prob:
                uris = self._noise_row_entities(domain, len(entity_roles))
            else:
                uris = self.world.sample_topic_row(
                    domain.name, reduced_topic, self._rng
                )
                if not first_topic_row:
                    first_topic_row = list(uris)
            entity_cells: Dict[int, object] = {}
            base_index = 0
            cells: List[object] = [None] * len(attributes)
            for col_index in range(len(attributes)):
                if col_index in entity_positions:
                    uri = uris[base_index]
                    base_index += 1
                    label = self.world.graph.get(uri).label
                    linked = self._rng.random() < link_probability
                    if self.profile.prelinked:
                        if linked:
                            cells[col_index] = label
                            if mapping is not None:
                                mapping.link(table_id, row_index,
                                             col_index, uri)
                        else:
                            # Unlinked mentions carry noisy surface forms
                            # - that is usually why they are unlinked.
                            cells[col_index] = self._surface_variant(label)
                    else:
                        # GitTables-style: unlinkable mentions are mangled
                        # so downstream label linking reaches ~coverage.
                        cells[col_index] = (
                            label if linked
                            else self._mangle(label, row_index)
                        )
                else:
                    cells[col_index] = self._numeric_value(
                        attributes[col_index]
                    )
            rows.append(cells)
        # Real web-table captions usually name a central entity ("List
        # of Chicago Cubs players"), which is what makes metadata an
        # informative third signal (paper conclusion).
        if first_topic_row:
            anchor_label = self.world.graph.get(first_topic_row[-1]).label
            caption = (
                f"{domain.name.capitalize()} {topic.name}: {anchor_label}"
            )
        else:
            caption = f"{domain.name.capitalize()} {topic.name} table"
        return Table(
            table_id,
            attributes,
            rows,
            metadata={
                "caption": caption,
                "domain": domain.name,
                "category": topic_id(domain.name, topic),
            },
        )

    def generate(self, num_tables: int) -> GeneratedCorpus:
        """Generate a full corpus of ``num_tables`` tables."""
        lake = DataLake()
        mapping: Optional[EntityMapping] = (
            EntityMapping() if self.profile.prelinked else None
        )
        topics: Dict[str, str] = {}
        for i in range(num_tables):
            pick = int(
                self._rng.choice(len(self._topic_pool), p=self._topic_weights)
            )
            domain, topic = self._topic_pool[pick]
            table_id = f"{self.profile.name}-{i:06d}"
            table = self.generate_table(table_id, domain, topic, mapping)
            lake.add(table)
            topics[table_id] = topic_id(domain.name, topic)
        return GeneratedCorpus(lake=lake, mapping=mapping, topics=topics)

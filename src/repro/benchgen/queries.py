"""Query sampling for the benchmark (Section 7.1).

The paper extracts 50 paired queries per corpus: 1-tuple and 5-tuple
queries of width >= 3 where each 1-tuple query is contained in its
5-tuple counterpart.  The generator mirrors that: it samples a topic,
draws five connected entity tuples for it, and uses the first tuple as
the 1-tuple query.  Queries carry their topic so graded ground truth
can be derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.benchgen.domains import DomainSpec, TopicSpec, topic_id
from repro.benchgen.kg_builder import World
from repro.core.query import Query
from repro.exceptions import ConfigurationError


@dataclass
class BenchmarkQuerySet:
    """Paired 1-tuple / 5-tuple queries with their topical provenance."""

    one_tuple: Dict[str, Query] = field(default_factory=dict)
    five_tuple: Dict[str, Query] = field(default_factory=dict)
    categories: Dict[str, str] = field(default_factory=dict)
    domains: Dict[str, str] = field(default_factory=dict)

    def all_queries(self) -> Dict[str, Query]:
        """Both variants merged (ids stay distinct: ``-1t`` / ``-5t``)."""
        merged: Dict[str, Query] = {}
        merged.update(self.one_tuple)
        merged.update(self.five_tuple)
        return merged

    def __len__(self) -> int:
        return len(self.one_tuple) + len(self.five_tuple)


class QueryGenerator:
    """Samples paired benchmark queries from a built world."""

    def __init__(self, world: World, seed: int = 0, min_width: int = 2):
        self.world = world
        self.min_width = min_width
        self._rng = np.random.default_rng(seed)
        self._topics: List[Tuple[DomainSpec, TopicSpec]] = [
            (domain, topic)
            for domain in world.domains
            for topic in domain.topics
            if len(topic.roles) >= min_width
        ]
        if not self._topics:
            raise ConfigurationError(
                f"no topics with width >= {min_width} available"
            )

    def generate(self, num_query_pairs: int, tuples_per_query: int = 5) -> BenchmarkQuerySet:
        """Sample ``num_query_pairs`` paired 1-/N-tuple queries."""
        if num_query_pairs < 1:
            raise ConfigurationError("num_query_pairs must be >= 1")
        result = BenchmarkQuerySet()
        for i in range(num_query_pairs):
            pick = int(self._rng.integers(len(self._topics)))
            domain, topic = self._topics[pick]
            tuples = [
                tuple(self.world.sample_topic_row(domain.name, topic, self._rng))
                for _ in range(tuples_per_query)
            ]
            category = topic_id(domain.name, topic)
            one_id = f"q{i:03d}-1t"
            five_id = f"q{i:03d}-{tuples_per_query}t"
            result.one_tuple[one_id] = Query([tuples[0]])
            result.five_tuple[five_id] = Query(tuples)
            for query_id in (one_id, five_id):
                result.categories[query_id] = category
                result.domains[query_id] = domain.name
        return result

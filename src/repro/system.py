"""The Thetis facade: one object wiring the whole search stack together.

The lower-level packages stay independently usable; this class is the
convenience layer a downstream user starts with — construct it over a
semantic data lake, optionally train embeddings, and search by entity
tuples with or without LSH prefiltering.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.aggregation import QueryAggregation, RowAggregation
from repro.core.cache import DEFAULT_SIMILARITY_CACHE_SIZE, CacheStats
from repro.core.kernel import (
    ENGINE_KINDS,
    BatchStats,
    PrefilterStats,
    engine_class,
)
from repro.core.parallel import ParallelSearchEngine
from repro.core.query import Query
from repro.core.result import ResultSet
from repro.core.search import TableSearchEngine
from repro.datalake.lake import DataLake
from repro.embeddings.rdf2vec import RDF2VecConfig, RDF2VecTrainer
from repro.embeddings.store import EmbeddingStore
from repro.exceptions import ConfigurationError, ThetisClosedError
from repro.kg.graph import KnowledgeGraph
from repro.linking.mapping import EntityMapping
from repro.lsh.config import LSHConfig, RECOMMENDED_CONFIG
from repro.lsh.index import TablePrefilter
from repro.lsh.schemes import (
    EmbeddingSignatureScheme,
    TypeSignatureScheme,
    frequent_types,
)
from repro.similarity.embedding import EmbeddingCosineSimilarity
from repro.similarity.informativeness import Informativeness
from repro.similarity.types import TypeJaccardSimilarity

#: Retrieval modes accepted by :meth:`Thetis.search`: ``"exact"`` scores
#: the whole lake (bit-compatible with the historical default), while
#: ``"prefilter"`` generates an LSH candidate set first and rescores
#: only the shortlist (Section 6 + the fused kernel path).
SEARCH_MODES = ("exact", "prefilter")

#: Search workloads accepted by :meth:`Thetis.search`: ``"entity"`` is
#: the paper's entity-tuple SemRel ranking, ``"union"`` the SANTOS-like
#: / Starmie-like table-union ranking, ``"join"`` the D3L/JOSIE-like
#: joinability ranking.  Union and join run on the vectorized kernels
#: of :mod:`repro.core.kernel.union` / :mod:`repro.core.kernel.join`
#: (scalar-baseline parity <= 1e-9) and are served through the same
#: micro-batch, snapshot, and cluster scatter paths as ``"entity"``.
SEARCH_TASKS = ("entity", "union", "join")


class Thetis:
    """Semantic table search over a semantic data lake.

    Parameters
    ----------
    lake:
        The table repository.
    graph:
        The reference knowledge graph.
    mapping:
        Entity links between lake cells and KG entities.
    embeddings:
        Optional pre-trained entity embeddings; required for the
        ``"embeddings"`` method (train with :meth:`train_embeddings`).
    workers:
        When > 1, :meth:`search` shards candidate tables across this
        many workers (see :class:`~repro.core.parallel.ParallelSearchEngine`);
        rankings are identical to the sequential engine.
    search_backend:
        Worker-pool backend, ``"thread"`` (default) or ``"process"``.
    cache_size:
        Entry bound of each engine's persistent pairwise-similarity
        cache.
    engine_kind:
        Scoring engine implementation: ``"scalar"`` (the per-cell
        Algorithm 1 loop) or ``"vectorized"`` (the batched kernel of
        :mod:`repro.core.kernel` over a compiled corpus index;
        score-parity to <= 1e-9, substantially faster on every
        built-in similarity).  Also reachable as ``--engine`` on the
        CLI.
    index_dir:
        Optional directory holding a persisted segmented index (built
        with ``thetis index build``).  Vectorized engines memmap it on
        first use instead of compiling the corpus from scratch — a
        zero-copy cold start.  If the snapshot does not mirror the
        lake (or is unreadable), the engine silently falls back to
        compiling.  Requires ``engine_kind="vectorized"``.

    Example
    -------
    >>> thetis = Thetis(lake, graph, mapping)          # doctest: +SKIP
    >>> results = thetis.search(Query.single("kg:x"))  # doctest: +SKIP

    Notes
    -----
    *Thread safety.*  :meth:`search`, :meth:`search_many`,
    :meth:`search_topk`, and :meth:`explain` are safe for concurrent
    reader threads: lazy engine/prefilter construction is serialized on
    an internal lock and the engines' shared caches are internally
    synchronized (see :class:`~repro.core.search.TableSearchEngine`).
    The mutating calls (:meth:`add_table`, :meth:`remove_table`,
    :meth:`train_embeddings`) are *not* safe to interleave with
    readers — an online service should mutate a fresh copy and swap it
    in atomically, which is exactly what
    :class:`repro.serve.SnapshotManager` does.

    *Lifecycle.*  :meth:`close` is idempotent and terminal: it releases
    every worker pool and marks the instance closed; any subsequent
    search or mutation raises
    :class:`~repro.exceptions.ThetisClosedError` instead of crashing on
    a dead pool.
    """

    def __init__(
        self,
        lake: DataLake,
        graph: KnowledgeGraph,
        mapping: EntityMapping,
        embeddings: Optional[EmbeddingStore] = None,
        row_aggregation: RowAggregation = RowAggregation.MAX,
        query_aggregation: QueryAggregation = QueryAggregation.MEAN,
        workers: int = 1,
        search_backend: str = "thread",
        cache_size: int = DEFAULT_SIMILARITY_CACHE_SIZE,
        engine_kind: str = "scalar",
        index_dir: Optional[str] = None,
    ):
        if engine_kind not in ENGINE_KINDS:
            raise ConfigurationError(
                f"unknown engine kind {engine_kind!r}: "
                f"use one of {ENGINE_KINDS}"
            )
        if index_dir is not None and engine_kind != "vectorized":
            raise ConfigurationError(
                "index_dir requires engine_kind='vectorized': only the "
                "vectorized kernel has a persistent corpus index"
            )
        self.lake = lake
        self.graph = graph
        self.mapping = mapping
        self.embeddings = embeddings
        self.row_aggregation = row_aggregation
        self.query_aggregation = query_aggregation
        self.workers = workers
        self.search_backend = search_backend
        self.cache_size = cache_size
        self.engine_kind = engine_kind
        self.index_dir = index_dir
        self.informativeness = Informativeness.from_mapping(mapping, len(lake))
        # Serializes lazy engine/prefilter construction and lifecycle
        # transitions so concurrent reader threads are safe.
        self._lock = threading.RLock()
        self._engines: Dict[str, TableSearchEngine] = {}  # guarded-by: _lock
        self._parallel: Dict[str, ParallelSearchEngine] = {}  # guarded-by: _lock
        # Union/join task engines, keyed by ("union", encoder) or
        # ("join",); built lazily like _engines.
        self._task_engines: Dict[Tuple[str, ...], object] = {}  # guarded-by: _lock
        self._prefilters: Dict[
            Tuple[str, LSHConfig, bool], TablePrefilter
        ] = {}  # guarded-by: _lock
        self._linker = None
        self._closed = False  # guarded-by: _lock
        # Serving counters for the prefilter path; internally
        # synchronized, and shared across snapshot generations by
        # seed_engines_from so /metrics survives copy-and-swap.
        self.prefilter_stats = PrefilterStats()
        # Batched-vs-looped dispatch counters for search_many; same
        # sharing discipline as prefilter_stats.
        self.batch_stats = BatchStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        # Intentionally racy read: the flag is terminal (False -> True
        # once), so a stale read only delays the ThetisClosedError by
        # one call; taking the lock here would serialize every reader.
        return self._closed  # lint: disable=guarded-attr-outside-lock

    def _check_open(self, operation: str) -> None:
        # Intentionally racy read (see `closed`).
        if self._closed:  # lint: disable=guarded-attr-outside-lock
            raise ThetisClosedError(operation)

    # ------------------------------------------------------------------
    def train_embeddings(self, **overrides) -> EmbeddingStore:
        """Train RDF2Vec embeddings on the KG and attach them.

        Keyword overrides go to :class:`RDF2VecConfig` (``dimensions``,
        ``epochs``, ...).
        """
        self._check_open("train_embeddings")
        config = RDF2VecConfig(**overrides)
        self.embeddings = RDF2VecTrainer(self.graph, config).train()
        with self._lock:
            self._engines.pop("embeddings", None)
            parallel = self._parallel.pop("embeddings", None)
        if parallel is not None:
            parallel.close()
        return self.embeddings

    # ------------------------------------------------------------------
    def engine(self, method: str = "types") -> TableSearchEngine:
        """Return (and cache) the exact search engine for ``method``."""
        # Intentionally racy read (double-checked locking): dict reads
        # are GIL-atomic and the locked path below re-checks.
        engine = self._engines.get(method)  # lint: disable=guarded-attr-outside-lock
        if engine is not None:
            return engine
        with self._lock:
            self._check_open("engine")
            engine = self._engines.get(method)
            if engine is not None:
                return engine
            if method == "types":
                sigma = TypeJaccardSimilarity(self.graph)
            elif method == "embeddings":
                if self.embeddings is None:
                    raise ConfigurationError(
                        "no embeddings attached; call train_embeddings() or "
                        "pass an EmbeddingStore"
                    )
                sigma = EmbeddingCosineSimilarity(self.embeddings)
            else:
                raise ConfigurationError(
                    f"unknown method {method!r}: use 'types' or 'embeddings'"
                )
            extra = {}
            if self.index_dir is not None:
                # Constructor validation pinned index_dir to the
                # vectorized kind, whose engines accept the keyword.
                extra["index_dir"] = self.index_dir
            engine = engine_class(self.engine_kind)(
                self.lake,
                self.mapping,
                sigma,
                informativeness=self.informativeness,
                row_aggregation=self.row_aggregation,
                query_aggregation=self.query_aggregation,
                cache_size=self.cache_size,
                **extra,
            )
            self._engines[method] = engine
            return engine

    def parallel_engine(self, method: str = "types") -> ParallelSearchEngine:
        """Return (and cache) the sharded parallel engine for ``method``.

        Wraps :meth:`engine`'s exact engine with the configured
        ``workers`` / ``search_backend``; rankings are identical.
        """
        # Intentionally racy read (double-checked locking, see engine()).
        parallel = self._parallel.get(method)  # lint: disable=guarded-attr-outside-lock
        if parallel is not None:
            return parallel
        with self._lock:
            self._check_open("parallel_engine")
            parallel = self._parallel.get(method)
            if parallel is None:
                parallel = ParallelSearchEngine(
                    self.engine(method),
                    workers=max(1, self.workers),
                    backend=self.search_backend,
                )
                self._parallel[method] = parallel
            return parallel

    def union_engine(self, method: str = "types"):
        """Return (and cache) the vectorized union engine for ``method``.

        ``method`` selects the column encoder: ``"types"`` is the
        SANTOS-like dominant-type encoding (requires the graph),
        ``"embeddings"`` the Starmie-like mean column embedding
        (requires an attached :class:`EmbeddingStore`).
        """
        from repro.core.kernel.union import VectorizedUnionSearchEngine

        key = ("union", method)
        # Intentionally racy read (double-checked locking, see engine()).
        cached = self._task_engines.get(key)  # lint: disable=guarded-attr-outside-lock
        if cached is not None:
            return cached
        with self._lock:
            self._check_open("union_engine")
            cached = self._task_engines.get(key)
            if cached is not None:
                return cached
            if method == "embeddings":
                if self.embeddings is None:
                    raise ConfigurationError(
                        "no embeddings attached; call train_embeddings() "
                        "or pass an EmbeddingStore"
                    )
                engine = VectorizedUnionSearchEngine(
                    self.lake, self.mapping,
                    store=self.embeddings, column_encoder="embeddings",
                )
            elif method == "types":
                engine = VectorizedUnionSearchEngine(
                    self.lake, self.mapping,
                    graph=self.graph, column_encoder="types",
                )
            else:
                raise ConfigurationError(
                    f"unknown method {method!r}: use 'types' or 'embeddings'"
                )
            self._task_engines[key] = engine
            return engine

    def join_engine(self):
        """Return (and cache) the vectorized join engine.

        Joinability is a syntactic value-overlap signal; the ``method``
        dimension of the entity/union tasks does not apply.
        """
        from repro.core.kernel.join import VectorizedJoinSearchEngine

        key = ("join",)
        # Intentionally racy read (double-checked locking, see engine()).
        cached = self._task_engines.get(key)  # lint: disable=guarded-attr-outside-lock
        if cached is not None:
            return cached
        with self._lock:
            self._check_open("join_engine")
            cached = self._task_engines.get(key)
            if cached is not None:
                return cached
            engine = VectorizedJoinSearchEngine(self.lake, self.graph)
            self._task_engines[key] = engine
            return engine

    def _task_engine(self, task: str, method: str):
        """The engine serving a non-entity ``task``."""
        if task == "union":
            return self.union_engine(method)
        return self.join_engine()

    def _check_task(self, task: str, mode: str, use_lsh: bool = False) -> None:
        if task not in SEARCH_TASKS:
            raise ConfigurationError(
                f"unknown search task {task!r}: use one of {SEARCH_TASKS}"
            )
        if task != "entity" and (mode == "prefilter" or use_lsh):
            raise ConfigurationError(
                "LSH prefiltering applies to the entity task only: "
                f"task {task!r} cannot combine with mode='prefilter' "
                "or use_lsh"
            )

    def cache_stats(self, method: str = "types") -> Dict[str, CacheStats]:
        """Cache statistics of the engine serving ``method``."""
        return self.engine(method).cache_stats()

    def warm(self, method: str = "types") -> int:
        """Build ``method``'s engine and all per-table views eagerly.

        A serving layer calls this during start-up so its readiness
        probe only flips once the first query would hit warm caches.
        Also recompiles any already-constructed union/join task
        engines, so a snapshot swap rebuilds their indexes off the
        request path.  Returns the number of tables warmed.
        """
        self._check_open("warm")
        warmed = self.engine(method).warm()
        with self._lock:
            task_engines = list(self._task_engines.values())
        for task_engine in task_engines:
            task_engine.prepare()
        return warmed

    def seed_engines_from(self, other: "Thetis") -> int:
        """Seed this instance's engines from another's warm state.

        For every method ``other`` has a built engine for, build the
        matching engine here and hand it the source's materialized
        views, shared similarity cache, and — on vectorized engines —
        the compiled segmented index itself (immutable segments are
        shared by reference, so the hand-off is O(1) per segment).
        The serving layer's copy-and-swap update calls this on each
        fresh clone so applying a mutation costs O(delta), not a
        recompile of the whole corpus.  Returns the number of engines
        seeded.
        """
        self._check_open("seed_engines_from")
        with other._lock:
            sources = dict(other._engines)
        seeded = 0
        for method, source in sources.items():
            try:
                engine = self.engine(method)
            except ConfigurationError:
                # e.g. the clone has no embeddings attached (yet).
                continue
            engine.seed_views_from(source)
            seeded += 1
        # Union/join task engines have no incremental index yet: the
        # clone constructs matching (cold) engines so the warm() before
        # the swap recompiles their indexes off the request path.
        with other._lock:
            task_keys = list(other._task_engines)
        for key in task_keys:
            try:
                if key[0] == "union":
                    self.union_engine(key[1])
                else:
                    self.join_engine()
            except ConfigurationError:
                continue
        # Serving counters continue across the swap: both generations
        # record into the same (thread-safe) stats objects.
        self.prefilter_stats = other.prefilter_stats
        self.batch_stats = other.batch_stats
        return seeded

    def index_stats(self, method: str = "types"):
        """Segment/tombstone/compaction counters for ``method``.

        Peeks at the already-built engine without forcing construction
        (metrics endpoints must not trigger a corpus compile); returns
        ``None`` for scalar engines, unbuilt engines, or a cold index.
        """
        with self._lock:
            engine = self._engines.get(method)
        if engine is None:
            return None
        stats = getattr(engine, "index_stats", None)
        return stats() if stats is not None else None

    def close(self) -> None:
        """Release every worker pool and mark the instance closed.

        Idempotent.  Call when done searching — a lingering process
        pool otherwise trips ``concurrent.futures``' atexit hook at
        interpreter shutdown, after the pool's pipes are already
        closed.  After ``close()`` any search or mutation raises
        :class:`~repro.exceptions.ThetisClosedError`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pools = list(self._parallel.values())
            self._parallel.clear()
        for parallel in pools:
            parallel.close()

    def __enter__(self) -> "Thetis":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def prefilter(
        self,
        method: str = "types",
        config: LSHConfig = RECOMMENDED_CONFIG,
        column_aggregation: bool = False,
    ) -> TablePrefilter:
        """Return (and cache) the LSEI prefilter for ``method``."""
        key = (method, config, column_aggregation)
        # Intentionally racy read (double-checked locking, see engine()).
        cached = self._prefilters.get(key)  # lint: disable=guarded-attr-outside-lock
        if cached is not None:
            return cached
        with self._lock:
            self._check_open("prefilter")
            cached = self._prefilters.get(key)
            if cached is not None:
                return cached
            return self._build_prefilter(key)

    # Only called from prefilter(), which already holds _lock — the
    # flow-sensitive lock pass proves that, so no pragma is needed.
    def _build_prefilter(
        self, key: Tuple[str, LSHConfig, bool]
    ) -> TablePrefilter:
        method, config, column_aggregation = key
        if method == "types":
            excluded = frequent_types(
                self.mapping, self.graph, self.lake.table_ids()
            )
            scheme = TypeSignatureScheme(
                self.graph, config.num_vectors, excluded_types=excluded
            )
        elif method == "embeddings":
            if self.embeddings is None:
                raise ConfigurationError(
                    "no embeddings attached; call train_embeddings() first"
                )
            scheme = EmbeddingSignatureScheme(self.embeddings, config.num_vectors)
        else:
            raise ConfigurationError(
                f"unknown method {method!r}: use 'types' or 'embeddings'"
            )
        prefilter = TablePrefilter(
            scheme, config, self.mapping, column_aggregation=column_aggregation
        )
        self._prefilters[key] = prefilter
        return prefilter

    # ------------------------------------------------------------------
    def snapshot_inputs(self) -> Tuple[DataLake, EntityMapping]:
        """Deep-enough copies of the mutable inputs for a new instance.

        Tables are immutable-by-convention and shared; the lake and
        mapping containers are copied, so mutating the copy never
        disturbs searches running against this instance.  This is the
        building block of the serving layer's copy-and-swap updates.
        """
        return DataLake(iter(self.lake)), self.mapping.copy()

    # ------------------------------------------------------------------
    # Dynamic data lake support
    # ------------------------------------------------------------------
    def add_table(self, table, link: bool = True) -> int:
        """Add a table to the lake at runtime; returns links created.

        Matching the data-lake principle that new datasets should be
        ingestible without manual curation (Section 3.2): the table is
        entity-linked automatically, every cached engine and LSEI picks
        it up incrementally, and the informativeness weights are
        refreshed.
        """
        from repro.datalake.table import Table
        from repro.linking.linker import LabelLinker

        self._check_open("add_table")
        if not isinstance(table, Table):
            raise ConfigurationError("add_table expects a Table")
        self.lake.add(table)
        created = 0
        if link:
            if self._linker is None:
                self._linker = LabelLinker(self.graph, fuzzy=False)
            before = len(self.mapping)
            self._linker.link_table(table, self.mapping)
            created = len(self.mapping) - before
        # The lock keeps the invalidation sweep consistent with lazy
        # engine construction racing in from reader threads (the lock
        # is reentrant, so the nested refresh below is fine).
        with self._lock:
            for engine in self._engines.values():
                engine.invalidate_table(table.table_id)
            for task_engine in self._task_engines.values():
                task_engine.invalidate_table(table.table_id)
            for parallel in self._parallel.values():
                parallel.reset_workers()
            for prefilter in self._prefilters.values():
                prefilter.add_table(table.table_id)
            self._refresh_informativeness()
        return created

    def remove_table(self, table_id: str) -> None:
        """Remove a table and every trace of it from the search stack."""
        self._check_open("remove_table")
        self.lake.remove(table_id)
        self.mapping.unlink_table(table_id)
        with self._lock:
            for engine in self._engines.values():
                engine.invalidate_table(table_id)
            for task_engine in self._task_engines.values():
                task_engine.invalidate_table(table_id)
            for parallel in self._parallel.values():
                parallel.reset_workers()
            for prefilter in self._prefilters.values():
                prefilter.remove_table(table_id)
            self._refresh_informativeness()

    def _refresh_informativeness(self) -> None:
        self.informativeness = Informativeness.from_mapping(
            self.mapping, max(1, len(self.lake))
        )
        with self._lock:
            for engine in self._engines.values():
                engine.informativeness = self.informativeness

    # ------------------------------------------------------------------
    def _check_mode(self, mode: str) -> None:
        if mode not in SEARCH_MODES:
            raise ConfigurationError(
                f"unknown search mode {mode!r}: use one of {SEARCH_MODES}"
            )

    def _prefilter_candidates(
        self,
        query: Query,
        method: str,
        lsh_config: LSHConfig,
        votes: int,
    ):
        """Candidate generation + reduction accounting for one query."""
        prefilter = self.prefilter(method, lsh_config)
        candidates = prefilter.candidate_tables(query, votes=votes)
        self.prefilter_stats.record_query(len(self.lake), len(candidates))
        return candidates

    def _search_prefiltered(
        self,
        query: Query,
        k: int,
        method: str,
        lsh_config: LSHConfig,
        votes: int,
    ) -> ResultSet:
        """The Section 6 pipeline: LSH shortlist, then fused rescoring.

        Vectorized engines score the candidate set through
        :meth:`~repro.core.kernel.engine.VectorizedTableSearchEngine.
        search_candidates` (restricted batched passes + bound-ordered
        early termination); scalar engines fall back to the
        :func:`~repro.core.topk.topk_search` threshold algorithm over
        the same candidate set.  Both record into
        :attr:`prefilter_stats`.
        """
        from repro.core.topk import topk_search

        candidates = self._prefilter_candidates(
            query, method, lsh_config, votes
        )
        engine = self.engine(method)
        fused = getattr(engine, "search_candidates", None)
        if fused is not None:
            return fused(query, candidates, k=k,
                         stats=self.prefilter_stats)
        return topk_search(engine, query, k, candidates=candidates,
                           stats=self.prefilter_stats)

    def search(
        self,
        query: Query,
        k: int = 10,
        method: str = "types",
        use_lsh: bool = False,
        lsh_config: LSHConfig = RECOMMENDED_CONFIG,
        votes: int = 1,
        mode: str = "exact",
        task: str = "entity",
    ) -> ResultSet:
        """Rank the lake's tables by SemRel against ``query``.

        ``mode="exact"`` (default) keeps the historical behavior:
        every table is scored, optionally restricted by ``use_lsh``
        through the plain candidate loop.  ``mode="prefilter"`` runs
        the full Section 6 serving pipeline — LSH candidate
        generation, fused kernel rescoring restricted to the
        shortlist, and score-bound early termination — and records
        reduction/shortlist counters into :attr:`prefilter_stats`
        (``use_lsh`` is implied and ignored).  With ``workers > 1``
        (constructor) exact scoring is sharded across the worker
        pool — the ranking is identical either way.

        ``task`` selects the workload (:data:`SEARCH_TASKS`):
        ``"union"`` ranks by structural unionability, ``"join"`` by
        value-overlap joinability; both run on the vectorized task
        kernels at scalar-baseline parity.  Non-entity tasks are
        exact-mode only.
        """
        self._check_open("search")
        self._check_mode(mode)
        self._check_task(task, mode, use_lsh)
        if task != "entity":
            return self._task_engine(task, method).search(query, k=k)
        if mode == "prefilter":
            return self._search_prefiltered(
                query, k, method, lsh_config, votes
            )
        candidates = None
        if use_lsh:
            prefilter = self.prefilter(method, lsh_config)
            candidates = prefilter.candidate_tables(query, votes=votes)
        if self.workers > 1:
            return self.parallel_engine(method).search(
                query, k=k, candidates=candidates
            )
        return self.engine(method).search(query, k=k, candidates=candidates)

    def search_many(
        self,
        queries: Dict[str, Query],
        k: int = 10,
        method: str = "types",
        use_lsh: bool = False,
        lsh_config: LSHConfig = RECOMMENDED_CONFIG,
        votes: int = 1,
        mode: str = "exact",
        task: str = "entity",
    ) -> Dict[str, ResultSet]:
        """Run a batch of queries; identical to per-query :meth:`search`.

        This is the entry point the serving layer's micro-batcher uses:
        the whole micro-batch rides one fused multi-query kernel pass
        (:meth:`~repro.core.kernel.engine.VectorizedTableSearchEngine.
        search_batch`) instead of looping query by query, while every
        ranking stays bit-identical to a sequential :meth:`search`.
        ``mode="prefilter"`` generates each query's LSH shortlist,
        then scores all shortlists in the same fused pass (selections
        are unioned for the shared gather and masked per query).
        Scalar engines keep the per-query loop; both outcomes are
        tallied in :attr:`batch_stats`.  Non-entity ``task`` batches
        ride the task engines' lane-stacked ``search_batch``.
        """
        self._check_open("search_many")
        self._check_mode(mode)
        self._check_task(task, mode, use_lsh)
        query_ids = list(queries.keys())
        if task != "entity":
            rankings = self._task_engine(task, method).search_batch(
                [queries[query_id] for query_id in query_ids],
                k=k,
                batch_stats=self.batch_stats,
            )
            return dict(zip(query_ids, rankings))
        if mode == "prefilter":
            candidate_lists = [
                self._prefilter_candidates(
                    queries[query_id], method, lsh_config, votes
                )
                for query_id in query_ids
            ]
            engine = self.engine(method)
            batch = getattr(engine, "search_batch", None)
            if batch is not None:
                rankings = batch(
                    [queries[query_id] for query_id in query_ids],
                    k=k,
                    candidates=candidate_lists,
                    stats=self.prefilter_stats,
                    batch_stats=self.batch_stats,
                )
                return dict(zip(query_ids, rankings))
            from repro.core.topk import topk_search

            self.batch_stats.record_looped(len(query_ids))
            return {
                query_id: topk_search(
                    engine, queries[query_id], k,
                    candidates=shortlist, stats=self.prefilter_stats,
                )
                for query_id, shortlist in zip(query_ids, candidate_lists)
            }
        candidates: Optional[Dict[str, Iterable[str]]] = None
        if use_lsh:
            prefilter = self.prefilter(method, lsh_config)
            candidates = {
                query_id: prefilter.candidate_tables(query, votes=votes)
                for query_id, query in queries.items()
            }
        if self.workers > 1:
            return self.parallel_engine(method).search_many(
                queries, k=k, candidates=candidates,
                batch_stats=self.batch_stats,
            )
        engine = self.engine(method)
        batch = getattr(engine, "search_batch", None)
        if batch is not None:
            restrictions = None
            if candidates is not None:
                restrictions = [
                    candidates.get(query_id) for query_id in query_ids
                ]
            rankings = batch(
                [queries[query_id] for query_id in query_ids],
                k=k,
                candidates=restrictions,
                batch_stats=self.batch_stats,
            )
            return dict(zip(query_ids, rankings))
        self.batch_stats.record_looped(len(query_ids))
        return engine.search_many(queries, k=k, candidates=candidates)

    def search_shard(
        self,
        query: Query,
        shard: Iterable[str],
        k: int = 10,
        method: str = "types",
        lsh_config: LSHConfig = RECOMMENDED_CONFIG,
        votes: int = 1,
        mode: str = "exact",
        task: str = "entity",
    ) -> ResultSet:
        """Score only the tables in ``shard``: one scatter-gather partial.

        The primitive behind :mod:`repro.cluster` workers.  Each cluster
        worker owns a deterministic subset of table ids; scoring that
        subset here and merging per-shard partials with
        :func:`~repro.core.parallel.merge_topk` reproduces the
        single-process :meth:`search` ranking bit for bit, because
        per-table scores do not depend on which other tables are scored
        alongside them.

        ``mode="exact"`` scores every shard table.  ``mode="prefilter"``
        runs LSH candidate generation exactly as :meth:`search` would,
        then intersects the shortlist with ``shard`` (preserving the
        shortlist's order) before rescoring — the global candidate set
        is the disjoint union of the per-shard intersections, so the
        merged top-k equals the single-process prefiltered top-k.
        """
        self._check_open("search_shard")
        self._check_mode(mode)
        self._check_task(task, mode)
        shard_ids = list(shard)
        if task != "entity":
            return self._task_engine(task, method).search(
                query, k=k, candidates=shard_ids
            )
        if mode == "prefilter":
            from repro.core.topk import topk_search

            candidates = self._prefilter_candidates(
                query, method, lsh_config, votes
            )
            members = set(shard_ids)
            candidates = [tid for tid in candidates if tid in members]
            engine = self.engine(method)
            fused = getattr(engine, "search_candidates", None)
            if fused is not None:
                return fused(query, candidates, k=k,
                             stats=self.prefilter_stats)
            return topk_search(engine, query, k, candidates=candidates,
                               stats=self.prefilter_stats)
        if self.workers > 1:
            return self.parallel_engine(method).search(
                query, k=k, candidates=shard_ids
            )
        return self.engine(method).search(query, k=k, candidates=shard_ids)

    def search_shard_batch(
        self,
        queries: Sequence[Query],
        shard: Iterable[str],
        k: int = 10,
        method: str = "types",
        lsh_config: LSHConfig = RECOMMENDED_CONFIG,
        votes: int = 1,
        mode: str = "exact",
        task: str = "entity",
    ) -> List[ResultSet]:
        """Score a scattered micro-batch against one shard in one pass.

        The batched analogue of :meth:`search_shard`, used by cluster
        workers when the coordinator scatters a whole micro-batch:
        every query's shard partial comes out of a single fused kernel
        pass (:meth:`~repro.core.kernel.engine.
        VectorizedTableSearchEngine.search_batch` with the shard as
        each query's candidate set), bit-identical per query to
        :meth:`search_shard`.  ``mode="prefilter"`` generates each
        query's LSH shortlist, intersects it with ``shard`` preserving
        shortlist order, and scores all intersections in the same
        shared pass.  Scalar engines fall back to the per-query loop;
        both outcomes are tallied in :attr:`batch_stats`.
        """
        self._check_open("search_shard_batch")
        self._check_mode(mode)
        self._check_task(task, mode)
        shard_ids = list(shard)
        batch_queries = list(queries)
        if not batch_queries:
            return []
        if task != "entity":
            return self._task_engine(task, method).search_batch(
                batch_queries,
                k=k,
                candidates=[shard_ids] * len(batch_queries),
                batch_stats=self.batch_stats,
            )
        engine = self.engine(method)
        batch = getattr(engine, "search_batch", None)
        if mode == "prefilter":
            members = set(shard_ids)
            candidate_lists = []
            for query in batch_queries:
                candidates = self._prefilter_candidates(
                    query, method, lsh_config, votes
                )
                candidate_lists.append(
                    [tid for tid in candidates if tid in members]
                )
            if batch is not None:
                return batch(
                    batch_queries, k=k, candidates=candidate_lists,
                    stats=self.prefilter_stats,
                    batch_stats=self.batch_stats,
                )
            from repro.core.topk import topk_search

            self.batch_stats.record_looped(len(batch_queries))
            return [
                topk_search(engine, query, k, candidates=shortlist,
                            stats=self.prefilter_stats)
                for query, shortlist in zip(batch_queries, candidate_lists)
            ]
        if batch is not None:
            return batch(
                batch_queries, k=k,
                candidates=[shard_ids] * len(batch_queries),
                batch_stats=self.batch_stats,
            )
        self.batch_stats.record_looped(len(batch_queries))
        return [
            self.engine(method).search(query, k=k, candidates=shard_ids)
            for query in batch_queries
        ]

    def search_topk(self, query: Query, k: int = 10,
                    method: str = "types") -> ResultSet:
        """Exact top-k search with early termination (upper bounds).

        Produces the same ranking as :meth:`search` while skipping the
        full scoring of tables whose score bound cannot reach the
        top-k.
        """
        from repro.core.topk import topk_search

        self._check_open("search_topk")
        return topk_search(self.engine(method), query, k)

    def prefilter_recall(
        self,
        query: Query,
        k: int = 10,
        method: str = "types",
        lsh_config: LSHConfig = RECOMMENDED_CONFIG,
        votes: int = 1,
    ) -> float:
        """Recall@k of the prefiltered ranking against the exact one.

        The serving layer's recall guardrail: every Nth prefiltered
        request is cross-checked here — both rankings run, recall@k is
        computed with the exact scores as gains, and the observation
        lands in :attr:`prefilter_stats` (surfaced by ``/metrics`` as
        ``guardrail.mean_recall`` / ``guardrail.min_recall``).
        """
        from repro.eval.metrics import recall_at_k

        self._check_open("prefilter_recall")
        approx = self.search(
            query, k=k, method=method, mode="prefilter",
            lsh_config=lsh_config, votes=votes,
        )
        exact = self.search(query, k=k, method=method)
        gains = {
            table_id: exact.score_of(table_id)
            for table_id in exact.table_ids()
        }
        recall = recall_at_k(approx.table_ids(), gains, k)
        self.prefilter_stats.record_guardrail(recall)
        return recall

    def explain(self, query: Query, table_id: str, method: str = "types"):
        """Explain a table's score: column mapping, rows, weights.

        Returns a :class:`~repro.core.explain.TableExplanation`; call
        its ``render(self.graph)`` for a text report.
        """
        from repro.core.explain import explain_table

        self._check_open("explain")
        return explain_table(
            self.engine(method), query, self.lake.get(table_id)
        )
